"""Run the doctest examples embedded in module docstrings.

The examples in docstrings are part of the documentation contract;
these tests keep them honest.
"""

import doctest

import pytest

import repro.des
import repro.analytic.mva
import repro.stats.quantile
import repro.stats.timeweighted
import repro.stats.welford

MODULES = [
    repro.des,
    repro.stats.welford,
    repro.stats.timeweighted,
    repro.stats.quantile,
    repro.analytic.mva,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its examples"
    assert results.failed == 0
