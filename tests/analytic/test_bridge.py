"""Cross-validation: MVA predictions vs. the simulator.

The strongest whole-system test in the suite: two entirely independent
implementations of the same model — the discrete-event simulator and
the analytical MVA solver — must agree on the contention-free baseline
(within the deterministic-vs-exponential service-time gap), and MVA
must upper-bound every real algorithm.
"""

import pytest

from repro.analytic import (
    mva_prediction,
    network_for_params,
    predicted_curve,
)
from repro.core import RunConfig, SimulationParameters, run_simulation

RUN = RunConfig(batches=5, batch_time=20.0, warmup_batches=1, seed=33)


class TestPopulationSentinels:
    """population/populations use `is None` sentinels: an explicit
    zero or empty sweep is caller error, never a silent fallback to
    `num_terms` (the bug this class regresses against).
    """

    def test_population_zero_raises(self):
        with pytest.raises(ValueError, match="population"):
            mva_prediction(SimulationParameters.table2(), population=0)

    def test_population_negative_raises(self):
        with pytest.raises(ValueError, match="population"):
            mva_prediction(SimulationParameters.table2(), population=-3)

    def test_population_none_defaults_to_terminals(self):
        params = SimulationParameters.table2(num_terms=7)
        assert mva_prediction(params).population == 7

    def test_explicit_population_honored(self):
        params = SimulationParameters.table2(num_terms=200)
        assert mva_prediction(params, population=3).population == 3

    def test_empty_populations_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            predicted_curve(SimulationParameters.table2(), populations=[])

    def test_nonpositive_population_in_sweep_raises(self):
        with pytest.raises(ValueError, match=">= 1"):
            predicted_curve(
                SimulationParameters.table2(), populations=[5, 0]
            )

    def test_curve_none_sweeps_to_terminals(self):
        params = SimulationParameters.table2(num_terms=9)
        curve = predicted_curve(params)
        assert [pop for pop, _ in curve] == list(range(1, 10))

    def test_curve_explicit_subset(self):
        params = SimulationParameters.table2(num_terms=200)
        curve = predicted_curve(params, populations=[2, 5])
        assert [pop for pop, _ in curve] == [2, 5]


class TestNetworkConstruction:
    def test_table2_network(self):
        centers = {
            center.name: center
            for center in network_for_params(SimulationParameters.table2())
        }
        assert centers["terminals"].kind == "delay"
        assert centers["terminals"].demand == 1.0
        assert centers["cpu"].kind == "queueing"  # one CPU
        assert centers["cpu"].demand == pytest.approx(0.150)
        assert centers["disk0"].demand == pytest.approx(0.175)
        assert centers["disk1"].demand == pytest.approx(0.175)
        assert "disk2" not in centers

    def test_multi_cpu_becomes_multi_server(self):
        params = SimulationParameters.table2(num_cpus=5, num_disks=10)
        centers = {
            center.name: center for center in network_for_params(params)
        }
        assert centers["cpu"].kind == "multi_server"
        assert centers["cpu"].servers == 5
        assert len([n for n in centers if n.startswith("disk")]) == 10

    def test_infinite_resources_become_delays(self):
        params = SimulationParameters.table2(
            num_cpus=None, num_disks=None
        )
        centers = {
            center.name: center for center in network_for_params(params)
        }
        assert centers["cpu"].kind == "delay"
        assert centers["disks"].kind == "delay"

    def test_internal_think_becomes_delay(self):
        params = SimulationParameters.table2(int_think_time=5.0)
        names = [c.name for c in network_for_params(params)]
        assert "internal_think" in names


class TestSimulatorAgreement:
    @pytest.mark.parametrize(
        "num_cpus,num_disks", [(1, 2), (5, 10), (None, None)]
    )
    def test_noop_matches_mva(self, num_cpus, num_disks):
        params = SimulationParameters.table2(
            num_cpus=num_cpus,
            num_disks=num_disks,
            num_terms=50,
            mpl=50,  # mpl not binding: MVA's assumption
            write_prob=0.0,
        )
        predicted = mva_prediction(params).throughput
        simulated = run_simulation(params, "noop", RUN).throughput
        # Deterministic service in the simulator vs. exponential in
        # MVA: deterministic queues are (weakly) faster, so allow a
        # modest one-sided band.
        assert simulated == pytest.approx(predicted, rel=0.12)

    def test_interactive_noop_matches_mva(self):
        params = SimulationParameters.table2(
            num_terms=50, mpl=50, write_prob=0.0,
            int_think_time=2.0, ext_think_time=3.0,
        )
        predicted = mva_prediction(params).throughput
        simulated = run_simulation(params, "noop", RUN).throughput
        assert simulated == pytest.approx(predicted, rel=0.12)

    @pytest.mark.parametrize(
        "algorithm", ["blocking", "immediate_restart", "optimistic"]
    )
    def test_mva_upper_bounds_real_algorithms(self, algorithm):
        params = SimulationParameters.table2(num_terms=50, mpl=50)
        predicted = mva_prediction(params).throughput
        simulated = run_simulation(params, algorithm, RUN).throughput
        assert simulated <= predicted * 1.08

    def test_response_time_agreement(self):
        params = SimulationParameters.table2(
            num_terms=30, mpl=30, write_prob=0.0
        )
        predicted = mva_prediction(params)
        result = run_simulation(params, "noop", RUN)
        assert result.mean("response_time") == pytest.approx(
            predicted.response_time, rel=0.15
        )

    def test_bottleneck_is_a_disk(self):
        prediction = mva_prediction(SimulationParameters.table2())
        assert prediction.bottleneck().startswith("disk")
