"""Exploration driver: space mechanics, flagging, spot-check logic.

Spot-check dispatch is tested against a stubbed ``run_sweep`` so the
triggering logic (threshold -> flagged -> budget -> simulation) is
exercised without paying for real simulations; one smoke-sized real
run lives in the CI surrogate-smoke step instead.
"""

from types import SimpleNamespace

import pytest

import repro.analytic.explore as explore_module
from repro.analytic.explore import (
    ExplorationReport,
    ExplorationSpace,
    MAX_FLAGGED_RETAINED,
    _crossovers,
    default_space,
    explore,
    smoke_space,
)

TINY = ExplorationSpace(
    db_sizes=(200, 2000),
    max_sizes=(12,),
    num_disks=(2,),
    num_cpus=(1,),
    write_probs=(0.5,),
    ext_think_times=(1.0,),
    mpls=(5, 50),
    algorithms=("blocking", "optimistic"),
)


class TestSpace:
    def test_counts(self):
        assert TINY.config_count() == 2
        assert TINY.size() == 8

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="db_sizes"):
            ExplorationSpace(
                db_sizes=(), max_sizes=(8,), num_disks=(1,),
                num_cpus=(1,), write_probs=(0.25,),
                ext_think_times=(1.0,), mpls=(5,),
                algorithms=("blocking",),
            )

    def test_configurations_shrink_min_size(self):
        space = ExplorationSpace(
            db_sizes=(1000,), max_sizes=(2,), num_disks=(1,),
            num_cpus=(1,), write_probs=(0.25,),
            ext_think_times=(1.0,), mpls=(5,),
            algorithms=("blocking",),
        )
        (axes, params), = space.configurations()
        assert params.max_size == 2
        assert params.min_size <= 2
        assert axes["db_size"] == 1000

    def test_default_space_is_large(self):
        assert default_space().size() >= 100_000

    def test_smoke_space_is_tiny(self):
        assert smoke_space().size() <= 100

    def test_as_dict_roundtrip_keys(self):
        data = TINY.as_dict()
        assert ExplorationSpace(**{
            key: tuple(value) for key, value in data.items()
        }) == TINY


class TestExplore:
    def test_optimal_surface_covers_every_configuration(self):
        report = explore(space=TINY)
        assert report.evaluations == TINY.size()
        assert len(report.optimal) == TINY.config_count()
        for record in report.optimal:
            for algorithm in TINY.algorithms:
                best = record["best"][algorithm]
                assert best["mpl"] in TINY.mpls
                assert best["throughput"] > 0.0
            assert record["winner"] in TINY.algorithms
            assert record["bo_winner"] in ("blocking", "optimistic")

    def test_high_threshold_flags_nothing(self):
        report = explore(space=TINY, threshold=1e9)
        assert report.flagged_count == 0
        assert report.flagged == []
        assert report.spot_checks == []

    def test_low_threshold_flags_and_ranks(self):
        report = explore(space=TINY, threshold=1e-9)
        assert report.flagged_count > 0
        assert len(report.flagged) <= MAX_FLAGGED_RETAINED
        uncertainties = [f["uncertainty"] for f in report.flagged]
        assert uncertainties == sorted(uncertainties, reverse=True)

    def test_deterministic(self):
        first = explore(space=TINY, threshold=0.5)
        second = explore(space=TINY, threshold=0.5)
        assert first.optimal == second.optimal
        assert first.flagged == second.flagged
        assert first.flagged_count == second.flagged_count


class TestSpotCheckTriggering:
    def stub_run_sweep(self, calls, throughput=1.0):
        def fake_run_sweep(config, run=None, progress=None, workers=1):
            calls.append(config)
            key = (config.algorithms[0], config.mpls[0])
            return SimpleNamespace(
                results={key: SimpleNamespace(throughput=throughput)}
            )
        return fake_run_sweep

    def test_budget_zero_never_simulates(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            explore_module, "run_sweep", self.stub_run_sweep(calls)
        )
        report = explore(
            space=TINY, threshold=1e-9, spot_check_budget=0
        )
        assert report.flagged_count > 0
        assert calls == []
        assert report.spot_checks == []

    def test_budget_caps_dispatches(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            explore_module, "run_sweep", self.stub_run_sweep(calls)
        )
        report = explore(
            space=TINY, threshold=1e-9, spot_check_budget=2
        )
        assert len(calls) == 2
        assert len(report.spot_checks) == 2
        # The most uncertain flagged points go first.
        assert [c["uncertainty"] for c in report.spot_checks] == [
            f["uncertainty"] for f in report.flagged[:2]
        ]

    def test_spot_check_records_divergence(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            explore_module, "run_sweep",
            self.stub_run_sweep(calls, throughput=2.0),
        )
        report = explore(
            space=TINY, threshold=1e-9, spot_check_budget=1
        )
        check, = report.spot_checks
        assert check["status"] == "ok"
        assert check["simulated"] == 2.0
        assert check["abs_rel_error"] == pytest.approx(
            abs(check["predicted"] - 2.0) / 2.0
        )

    def test_failed_point_degrades_not_raises(self, monkeypatch):
        def empty_run_sweep(config, run=None, progress=None, workers=1):
            return SimpleNamespace(results={})
        monkeypatch.setattr(
            explore_module, "run_sweep", empty_run_sweep
        )
        report = explore(
            space=TINY, threshold=1e-9, spot_check_budget=1
        )
        check, = report.spot_checks
        assert check["status"] == "failed"
        assert check["simulated"] is None

    def test_no_flags_means_no_spot_checks(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            explore_module, "run_sweep", self.stub_run_sweep(calls)
        )
        report = explore(
            space=TINY, threshold=1e9, spot_check_budget=5
        )
        assert calls == []
        assert report.spot_checks == []


class TestCrossovers:
    def record(self, db_size, bo_winner):
        return {
            "db_size": db_size, "max_size": 8, "num_disks": 1,
            "num_cpus": 1, "write_prob": 0.25, "ext_think_time": 1.0,
            "best": {}, "winner": bo_winner, "bo_winner": bo_winner,
        }

    def test_flip_detected(self):
        crossings = _crossovers([
            self.record(250, "optimistic"),
            self.record(1000, "blocking"),
        ])
        assert len(crossings) == 1
        assert crossings[0]["db_low"] == 250
        assert crossings[0]["winner_low"] == "optimistic"
        assert crossings[0]["db_high"] == 1000
        assert crossings[0]["winner_high"] == "blocking"

    def test_no_flip_no_crossover(self):
        crossings = _crossovers([
            self.record(250, "blocking"),
            self.record(1000, "blocking"),
        ])
        assert crossings == []

    def test_groups_do_not_mix_other_axes(self):
        records = [
            self.record(250, "optimistic"),
            self.record(1000, "blocking"),
        ]
        records[1]["max_size"] = 24  # different group: no adjacency
        assert _crossovers(records) == []


class TestReportPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        report = explore(space=TINY, threshold=0.5)
        path = tmp_path / "exploration.json"
        report.save(str(path))
        restored = ExplorationReport.load(str(path))
        assert restored.evaluations == report.evaluations
        assert restored.optimal == report.optimal
        assert restored.flagged == report.flagged
        assert restored.threshold == report.threshold

    def test_summary_mentions_key_numbers(self):
        report = explore(space=TINY, threshold=0.5)
        summary = report.summary()
        assert str(report.evaluations) in summary
        assert "flagged" in summary
