"""Tests for the exact MVA solver against closed-form results."""

import pytest

from repro.analytic import (
    Center,
    DELAY,
    MULTI_SERVER,
    QUEUEING,
    solve_closed_network,
)
from repro.analytic.mva import solve_curve


def machine_repairman_throughput(n, think, service, servers=1):
    """Closed-form M/M/m//N machine-repairman throughput.

    Birth-death steady state: state k = broken machines; failure rate
    (n-k)/think; repair rate min(k, m)/service.
    """
    probs = [1.0]
    for k in range(1, n + 1):
        rate_up = (n - k + 1) / think
        rate_down = min(k, servers) / service
        probs.append(probs[-1] * rate_up / rate_down)
    total = sum(probs)
    probs = [p / total for p in probs]
    # Throughput = repair completion rate.
    return sum(
        probs[k] * min(k, servers) / service for k in range(n + 1)
    )


class TestValidation:
    def test_bad_center_kind(self):
        with pytest.raises(ValueError):
            Center("x", "magic", 1.0)

    def test_negative_demand(self):
        with pytest.raises(ValueError):
            Center("x", DELAY, -1.0)

    def test_multi_server_count(self):
        with pytest.raises(ValueError):
            Center("x", MULTI_SERVER, 1.0, servers=0)

    def test_population_positive(self):
        with pytest.raises(ValueError):
            solve_closed_network([Center("x", DELAY, 1.0)], 0)

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            solve_closed_network(
                [Center("x", DELAY, 1.0), Center("x", DELAY, 2.0)], 2
            )


class TestClosedForms:
    def test_delay_only_network(self):
        result = solve_closed_network(
            [Center("think", DELAY, 4.0)], population=10
        )
        assert result.throughput == pytest.approx(10 / 4.0)
        assert result.response_time == pytest.approx(0.0)

    def test_single_customer_sees_raw_demands(self):
        centers = [
            Center("think", DELAY, 2.0),
            Center("server", QUEUEING, 1.0),
        ]
        result = solve_closed_network(centers, population=1)
        assert result.throughput == pytest.approx(1 / 3.0)
        assert result.response_time == pytest.approx(1.0)

    @pytest.mark.parametrize("n", [1, 2, 5, 10, 25])
    def test_machine_repairman_single_server(self, n):
        think, service = 10.0, 1.0
        result = solve_closed_network(
            [
                Center("think", DELAY, think),
                Center("repair", QUEUEING, service),
            ],
            population=n,
        )
        expected = machine_repairman_throughput(n, think, service)
        assert result.throughput == pytest.approx(expected, rel=1e-9)

    @pytest.mark.parametrize("servers", [2, 3, 5])
    @pytest.mark.parametrize("n", [1, 4, 12])
    def test_machine_repairman_multi_server(self, n, servers):
        think, service = 5.0, 2.0
        result = solve_closed_network(
            [
                Center("think", DELAY, think),
                Center(
                    "repair", MULTI_SERVER, service, servers=servers
                ),
            ],
            population=n,
        )
        expected = machine_repairman_throughput(
            n, think, service, servers
        )
        assert result.throughput == pytest.approx(expected, rel=1e-6)

    def test_multi_server_with_one_server_matches_queueing(self):
        think = 3.0
        for n in (1, 5, 15):
            single = solve_closed_network(
                [
                    Center("think", DELAY, think),
                    Center("s", QUEUEING, 1.0),
                ],
                n,
            )
            multi = solve_closed_network(
                [
                    Center("think", DELAY, think),
                    Center("s", MULTI_SERVER, 1.0, servers=1),
                ],
                n,
            )
            assert multi.throughput == pytest.approx(
                single.throughput, rel=1e-9
            )


class TestMultiServerExactness:
    """Audit `_update_marginals`/`_multi_server_residence` (the
    load-dependent marginal recursion) against the exact finite-source
    M/M/c birth-death solution — the closed-form the Erlang-C family
    reduces to in a closed network.
    """

    @pytest.mark.parametrize(
        "servers,demand,n",
        [
            (2, 1.0, 5),
            (2, 0.2, 3),
            (3, 0.5, 10),
            (4, 1.0, 4),
            (5, 2.0, 20),
            (8, 3.0, 30),
        ],
    )
    def test_matches_exact_birth_death(self, servers, demand, n):
        think = 2.0
        result = solve_closed_network(
            [
                Center("think", DELAY, think),
                Center("pool", MULTI_SERVER, demand, servers=servers),
            ],
            population=n,
        )
        exact = machine_repairman_throughput(n, think, demand, servers)
        assert result.throughput == pytest.approx(exact, rel=1e-8)

    def test_marginals_little_law_consistency(self):
        # The marginal recursion's queue length must agree with the
        # residence-time route to the same quantity at every population.
        centers = [
            Center("think", DELAY, 4.0),
            Center("pool", MULTI_SERVER, 1.5, servers=3),
        ]
        for result in solve_curve(centers, 25):
            assert result.queue_lengths["pool"] == pytest.approx(
                result.throughput * result.residence_times["pool"],
                rel=1e-9,
            )


class TestBottleneckDeterminism:
    def test_tie_breaks_by_center_name(self):
        # Two identical disks: equally utilized by symmetry. The
        # bottleneck must be the lexicographically first name whatever
        # order the centers were listed in.
        for order in (("disk0", "disk1"), ("disk1", "disk0")):
            centers = [Center("think", DELAY, 1.0)] + [
                Center(name, QUEUEING, 0.35) for name in order
            ]
            result = solve_closed_network(centers, 20)
            assert (
                result.utilizations["disk0"]
                == result.utilizations["disk1"]
            )
            assert result.bottleneck() == "disk0"

    def test_empty_utilizations(self):
        from repro.analytic.mva import MvaResult

        assert MvaResult(1, 0.0, 0.0).bottleneck() is None


class TestProperties:
    def centers(self):
        return [
            Center("think", DELAY, 2.0),
            Center("cpu", MULTI_SERVER, 0.3, servers=2),
            Center("disk0", QUEUEING, 0.35),
            Center("disk1", QUEUEING, 0.35),
        ]

    def test_throughput_monotone_in_population(self):
        curve = solve_curve(self.centers(), 30)
        throughputs = [result.throughput for result in curve]
        assert all(
            b >= a - 1e-12 for a, b in zip(throughputs, throughputs[1:])
        )

    def test_throughput_bounded_by_bottleneck(self):
        curve = solve_curve(self.centers(), 60)
        # Bottleneck: a 0.35 s demand single-server disk.
        for result in curve:
            assert result.throughput <= 1 / 0.35 + 1e-9

    def test_little_law_holds_at_every_center(self):
        for result in solve_curve(self.centers(), 20):
            for name, queue_length in result.queue_lengths.items():
                expected = (
                    result.throughput * result.residence_times[name]
                )
                assert queue_length == pytest.approx(expected, rel=1e-9)

    def test_populations_sum_to_n(self):
        for result in solve_curve(self.centers(), 20):
            assert sum(result.queue_lengths.values()) == pytest.approx(
                result.population, rel=1e-9
            )

    def test_utilizations_bounded(self):
        for result in solve_curve(self.centers(), 40):
            for value in result.utilizations.values():
                assert 0.0 <= value <= 1.0 + 1e-12

    def test_bottleneck_identified(self):
        result = solve_closed_network(self.centers(), 40)
        assert result.bottleneck() in ("disk0", "disk1")
