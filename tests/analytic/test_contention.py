"""The contention-corrected surrogate: solver properties and physics.

Three layers of evidence: structural invariants (convergence, regime
selection, determinism), limiting cases that must agree with the
contention-free MVA exactly (read-only workloads, zero coefficients),
and the qualitative physics the paper demands (thrashing, algorithm
ordering under contention) — plus one real cross-validation of the
noop baseline against the discrete-event simulator.
"""

import pytest

from repro.analytic.contention import (
    DEFAULT_COEFFS,
    DEFAULT_MAX_INDEX,
    SUPPORTED_ALGORITHMS,
    CorrectionCoefficients,
    compact_network,
    optimal_mpl,
    surrogate_curve,
    surrogate_prediction,
)
from repro.core import RunConfig, SimulationParameters, run_simulation

BASE = SimulationParameters.table2()
HOT = BASE.with_changes(db_size=300)


class TestValidation:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="no contention terms"):
            surrogate_prediction(BASE.with_changes(mpl=5), "certified")

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            CorrectionCoefficients(-0.1, 1.0)

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            CorrectionCoefficients(1.0, -2.0)

    def test_default_coefficients_cover_all_algorithms(self):
        assert set(DEFAULT_COEFFS) == set(SUPPORTED_ALGORITHMS)

    def test_noop_default_coefficients_are_zero(self):
        assert DEFAULT_COEFFS["noop"] == CorrectionCoefficients(0.0, 0.0)


class TestSolverInvariants:
    @pytest.mark.parametrize("algorithm", SUPPORTED_ALGORITHMS)
    @pytest.mark.parametrize("mpl", [1, 5, 25, 100, 200])
    def test_converges_everywhere(self, algorithm, mpl):
        prediction = surrogate_prediction(
            HOT.with_changes(mpl=mpl), algorithm
        )
        assert prediction.converged
        assert prediction.throughput > 0.0

    @pytest.mark.parametrize("algorithm", SUPPORTED_ALGORITHMS)
    def test_deterministic(self, algorithm):
        params = HOT.with_changes(mpl=25)
        assert surrogate_prediction(
            params, algorithm
        ) == surrogate_prediction(params, algorithm)

    def test_mpl_at_population_binds_population(self):
        prediction = surrogate_prediction(
            BASE.with_changes(mpl=BASE.num_terms), "blocking"
        )
        assert prediction.binding == "population"

    def test_small_mpl_binds_admission(self):
        prediction = surrogate_prediction(
            BASE.with_changes(mpl=2), "noop"
        )
        assert prediction.binding == "admission"

    def test_m_eff_never_exceeds_mpl(self):
        for mpl in (2, 10, 50, 200):
            prediction = surrogate_prediction(
                HOT.with_changes(mpl=mpl), "blocking"
            )
            assert prediction.m_eff <= mpl + 1e-6

    def test_disk_collapse_matches_disk_count(self):
        _, few = compact_network(BASE.with_changes(num_disks=2))
        _, many = compact_network(BASE.with_changes(num_disks=8))
        # Same group structure regardless of disk count: the disks
        # fold into one counted group, so solver cost is flat.
        assert len(few) == len(many)


class TestContentionFreeLimits:
    @pytest.mark.parametrize(
        "algorithm", ["blocking", "immediate_restart"]
    )
    def test_read_only_equals_noop(self, algorithm):
        """Shared read locks never conflict: a read-only workload must
        reduce to the contention-free baseline exactly."""
        params = BASE.with_changes(write_prob=0.0, mpl=25)
        noop = surrogate_prediction(params, "noop")
        corrected = surrogate_prediction(params, algorithm)
        assert corrected.throughput == pytest.approx(
            noop.throughput, rel=1e-9
        )
        assert corrected.contention_index == 0.0

    def test_zero_coefficients_equal_noop(self):
        params = HOT.with_changes(mpl=50)
        noop = surrogate_prediction(params, "noop")
        zeroed = surrogate_prediction(
            params, "blocking", CorrectionCoefficients(0.0, 0.0)
        )
        assert zeroed.throughput == pytest.approx(
            noop.throughput, rel=1e-9
        )

    def test_noop_monotone_in_mpl(self):
        curve = surrogate_curve(BASE, "noop", (1, 2, 5, 10, 25, 50))
        throughputs = [p.throughput for _, p in curve]
        assert throughputs == sorted(throughputs)


class TestContentionPhysics:
    def test_blocking_thrashes(self):
        """The wait-chain cascade must make throughput *decline* past
        the thrashing point, not merely saturate."""
        peak = surrogate_prediction(
            HOT.with_changes(mpl=10), "blocking"
        )
        thrashed = surrogate_prediction(
            HOT.with_changes(mpl=100), "blocking"
        )
        assert thrashed.throughput < 0.9 * peak.throughput

    def test_restart_algorithms_decline_under_contention(self):
        for algorithm in ("immediate_restart", "optimistic"):
            low = surrogate_prediction(
                HOT.with_changes(mpl=10), algorithm
            )
            high = surrogate_prediction(
                HOT.with_changes(mpl=50), algorithm
            )
            assert high.throughput < low.throughput

    def test_contention_hurts(self):
        for algorithm in ("blocking", "immediate_restart", "optimistic"):
            cool = surrogate_prediction(
                BASE.with_changes(db_size=5000, mpl=25), algorithm
            )
            hot = surrogate_prediction(
                BASE.with_changes(db_size=300, mpl=25), algorithm
            )
            assert hot.throughput < cool.throughput

    def test_blocking_blocked_time_grows_with_mpl(self):
        low = surrogate_prediction(HOT.with_changes(mpl=5), "blocking")
        high = surrogate_prediction(HOT.with_changes(mpl=50), "blocking")
        assert high.blocked_time > low.blocked_time > 0.0

    def test_optimal_mpl_interior_under_contention(self):
        mpl, prediction = optimal_mpl(
            HOT, "immediate_restart", (5, 10, 25, 50, 100, 200)
        )
        assert mpl < 200
        assert prediction.throughput > 0.0


class TestUncertainty:
    def test_read_only_never_uncertain(self):
        prediction = surrogate_prediction(
            BASE.with_changes(write_prob=0.0, mpl=200), "blocking"
        )
        assert prediction.uncertainty() == 0.0
        assert not prediction.uncertain()

    def test_extreme_contention_flagged(self):
        prediction = surrogate_prediction(
            BASE.with_changes(
                db_size=50, max_size=24, write_prob=1.0, mpl=200
            ),
            "blocking",
        )
        assert prediction.clamped
        assert prediction.uncertainty() >= 2.0
        assert prediction.uncertain()

    def test_uncertainty_scales_with_boundary(self):
        # A mild, unclamped point: the score is index/boundary, so
        # halving the boundary doubles it.
        prediction = surrogate_prediction(
            BASE.with_changes(mpl=25), "blocking"
        )
        assert not prediction.clamped
        assert prediction.uncertainty() > 0.0
        assert prediction.uncertainty(
            max_index=DEFAULT_MAX_INDEX / 2
        ) == pytest.approx(2 * prediction.uncertainty())

    def test_mild_contention_not_flagged(self):
        prediction = surrogate_prediction(
            BASE.with_changes(db_size=5000, mpl=5), "blocking"
        )
        assert not prediction.uncertain()


class TestNoopSimulatorAgreement:
    """The satellite cross-check: on the contention-free baseline the
    surrogate *is* the MVA substrate, and it must track the
    discrete-event simulator within CI-friendly tolerance."""

    RUN = RunConfig(batches=5, batch_time=20.0, warmup_batches=1, seed=33)

    @pytest.mark.parametrize("mpl", [2, 10, 50])
    def test_noop_throughput_within_tolerance(self, mpl):
        params = BASE.with_changes(mpl=mpl)
        simulated = run_simulation(
            params, algorithm="noop", run=self.RUN
        ).throughput
        predicted = surrogate_prediction(params, "noop").throughput
        assert predicted == pytest.approx(simulated, rel=0.10)
