"""Tests for the Schweitzer approximate MVA against the exact solver."""

import pytest

from repro.analytic import (
    Center,
    DELAY,
    MULTI_SERVER,
    QUEUEING,
    network_for_params,
    solve_closed_network,
    solve_closed_network_approx,
)
from repro.core import SimulationParameters


def table2_network():
    return network_for_params(SimulationParameters.table2())


class TestValidation:
    def test_population_positive(self):
        with pytest.raises(ValueError):
            solve_closed_network_approx(table2_network(), 0)

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            solve_closed_network_approx(
                [Center("x", DELAY, 1.0), Center("x", DELAY, 2.0)], 5
            )


class TestAccuracy:
    @pytest.mark.parametrize("population", [1, 5, 25, 100, 200])
    def test_close_to_exact_on_table2(self, population):
        centers = table2_network()
        exact = solve_closed_network(centers, population)
        approx = solve_closed_network_approx(centers, population)
        assert approx.throughput == pytest.approx(
            exact.throughput, rel=0.08
        )
        assert approx.response_time == pytest.approx(
            exact.response_time, rel=0.20, abs=0.05
        )

    def test_exact_at_population_one(self):
        # With one customer Schweitzer's (N-1)/N factor vanishes: the
        # approximation is exact.
        centers = [
            Center("think", DELAY, 2.0),
            Center("server", QUEUEING, 0.5),
        ]
        exact = solve_closed_network(centers, 1)
        approx = solve_closed_network_approx(centers, 1)
        assert approx.throughput == pytest.approx(
            exact.throughput, rel=1e-9
        )

    @pytest.mark.parametrize("servers", [2, 5])
    def test_multi_server_reasonable(self, servers):
        # Seidmann's split is known to be pessimistic for wide pools at
        # mid load (it serializes the queueing part); we pin that the
        # error stays one-sided and bounded (~25% worst case here) —
        # use the exact solver when multi-server precision matters.
        centers = [
            Center("think", DELAY, 3.0),
            Center("pool", MULTI_SERVER, 1.0, servers=servers),
        ]
        for population in (4, 20):
            exact = solve_closed_network(centers, population)
            approx = solve_closed_network_approx(centers, population)
            assert approx.throughput <= exact.throughput * 1.02
            assert approx.throughput == pytest.approx(
                exact.throughput, rel=0.30
            )

    def test_zero_load_residence_is_full_demand(self):
        # A lone customer at a multi-server center still takes its full
        # service demand (the Seidmann split must preserve this).
        centers = [
            Center("think", DELAY, 10.0),
            Center("pool", MULTI_SERVER, 2.0, servers=4),
        ]
        result = solve_closed_network_approx(centers, 1)
        assert result.residence_times["pool"] == pytest.approx(
            2.0, rel=1e-6
        )

    def test_bottleneck_agrees_with_exact(self):
        centers = table2_network()
        exact = solve_closed_network(centers, 100)
        approx = solve_closed_network_approx(centers, 100)
        assert approx.bottleneck().startswith("disk")
        assert exact.bottleneck().startswith("disk")

    def test_large_population_is_cheap_and_sane(self):
        centers = table2_network()
        result = solve_closed_network_approx(centers, 100_000)
        # Saturated: throughput pinned at the disk bottleneck.
        assert result.throughput == pytest.approx(1 / 0.175, rel=0.01)
        assert result.utilizations["disk0"] == pytest.approx(1.0, abs=0.01)
