"""Calibration: reproducibility, fit determinism, report round-trips.

Simulation-backed tests use a deliberately tiny one-scenario grid so
the whole module stays CI-cheap; the fit itself is exercised both on
real simulation output and on synthetic samples generated *from the
surrogate* (where the ground-truth coefficients are known and the
descent must drive the residual to ~zero).
"""

import pytest

from repro.analytic.calibrate import (
    CALIBRATED_ALGORITHMS,
    CalibrationPoint,
    CalibrationReport,
    calibration_grid,
    fit_coefficients,
    run_calibration,
    simulate_grid,
    _objective,
)
from repro.analytic.contention import (
    CorrectionCoefficients,
    surrogate_prediction,
)
from repro.core import SimulationParameters
from repro.experiments.runner import QUICK_RUN

TINY_GRID = [
    ("tiny", SimulationParameters.table2(db_size=400), (5, 10)),
]


def synthetic_samples(algorithm, coeffs):
    """Grid samples whose 'simulated' truth is the surrogate itself."""
    samples = []
    for scenario, params, mpls in TINY_GRID:
        for mpl in mpls:
            truth = surrogate_prediction(
                params.with_changes(mpl=mpl), algorithm, coeffs
            ).throughput
            samples.append((scenario, params, algorithm, mpl, truth))
    return samples


class TestGrid:
    def test_default_grid_shape(self):
        grid = calibration_grid()
        scenarios = [scenario for scenario, _, _ in grid]
        assert scenarios == ["table2", "hot", "cool", "write_heavy"]
        for _, params, mpls in grid:
            assert mpls
            assert params.db_size > 0

    def test_simulate_grid_orders_points(self):
        samples = simulate_grid(run=QUICK_RUN, grid=TINY_GRID)
        assert len(samples) == len(CALIBRATED_ALGORITHMS) * 2
        assert [s[2] for s in samples] == [
            algorithm
            for algorithm in CALIBRATED_ALGORITHMS
            for _ in (5, 10)
        ]
        assert all(s[4] > 0.0 for s in samples)


class TestFitDeterminism:
    def test_same_samples_same_fit(self):
        samples = synthetic_samples(
            "blocking", CorrectionCoefficients(0.3, 2.0)
        )
        assert fit_coefficients(samples) == fit_coefficients(samples)

    def test_fit_recovers_synthetic_truth(self):
        truth = CorrectionCoefficients(0.3, 2.0)
        samples = synthetic_samples("blocking", truth)
        fitted = fit_coefficients(samples)
        assert _objective(samples, fitted) < 1e-3

    def test_fit_improves_on_start(self):
        samples = synthetic_samples(
            "optimistic", CorrectionCoefficients(0.1, 3.0)
        )
        start = CorrectionCoefficients(1.0, 1.0)
        fitted = fit_coefficients(samples, start=start)
        assert _objective(samples, fitted) <= _objective(samples, start)


class TestReproducibility:
    def test_fixed_seed_reproduces_report(self):
        first = run_calibration(run=QUICK_RUN, grid=TINY_GRID)
        second = run_calibration(run=QUICK_RUN, grid=TINY_GRID)
        assert first.coefficients == second.coefficients
        assert first.points == second.points
        assert first.max_index == second.max_index
        assert first.seed == QUICK_RUN.seed

    def test_no_fit_validates_defaults(self):
        from repro.analytic.contention import DEFAULT_COEFFS

        report = run_calibration(
            run=QUICK_RUN, grid=TINY_GRID, fit=False
        )
        assert report.coefficients == DEFAULT_COEFFS


class TestReport:
    def make_report(self):
        return CalibrationReport(
            coefficients={
                "noop": CorrectionCoefficients(0.0, 0.0),
                "blocking": CorrectionCoefficients(0.25, 5.0),
            },
            points=[
                CalibrationPoint(
                    scenario="tiny", algorithm="blocking", mpl=5,
                    simulated=5.0, predicted=5.5, abs_rel_error=0.1,
                    contention_index=1.0,
                ),
                CalibrationPoint(
                    scenario="tiny", algorithm="blocking", mpl=10,
                    simulated=4.0, predicted=3.2, abs_rel_error=0.2,
                    contention_index=2.0,
                ),
                CalibrationPoint(
                    scenario="tiny", algorithm="optimistic", mpl=5,
                    simulated=5.0, predicted=2.5, abs_rel_error=0.5,
                    contention_index=1.0,
                ),
            ],
            max_index=2.0,
            seed=42,
        )

    def test_divergence_math(self):
        report = self.make_report()
        blocking = report.divergence("blocking")
        assert blocking.count == 2
        assert blocking.median == pytest.approx(0.15)
        assert blocking.max == pytest.approx(0.2)
        overall = report.divergence()
        assert overall.count == 3
        assert overall.median == pytest.approx(0.2)
        assert overall.mean == pytest.approx((0.1 + 0.2 + 0.5) / 3)

    def test_points_for_filters_by_algorithm(self):
        report = self.make_report()
        assert [p.mpl for p in report.points_for("blocking")] == [5, 10]
        assert report.points_for("noop") == []

    def test_json_roundtrip(self):
        report = self.make_report()
        restored = CalibrationReport.from_json(report.to_json())
        assert restored.coefficients == report.coefficients
        assert restored.points == report.points
        assert restored.max_index == report.max_index
        assert restored.seed == report.seed

    def test_save_load(self, tmp_path):
        report = self.make_report()
        path = tmp_path / "calibration.json"
        report.save(str(path))
        restored = CalibrationReport.load(str(path))
        assert restored.points == report.points
        assert restored.coefficients == report.coefficients
