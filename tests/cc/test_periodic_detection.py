"""Tests for periodic (scan-based) deadlock detection in BlockingCC."""

import pytest

from repro.cc import RestartTransaction
from repro.cc.blocking import (
    DETECT_ON_BLOCK,
    DETECT_PERIODIC,
    BlockingCC,
)
from repro.core import SimulationParameters, SystemModel
from repro.des import Environment


class TestConstruction:
    def test_defaults_to_on_block(self):
        assert BlockingCC().detection_mode == DETECT_ON_BLOCK

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            BlockingCC(detection_mode="sometimes")

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            BlockingCC(detection_mode=DETECT_PERIODIC,
                       detection_interval=0.0)


class TestPeriodicScan:
    def test_deadlock_broken_at_next_scan(self, make_tx):
        env = Environment()
        cc = BlockingCC(
            detection_mode=DETECT_PERIODIC, detection_interval=1.0
        ).attach(env)
        old = make_tx(first_submit_time=1.0)
        young = make_tx(first_submit_time=9.0)
        cc.write_request(old, 1)
        cc.write_request(young, 2)
        w1 = cc.write_request(old, 2)
        w2 = cc.write_request(young, 1)  # deadlock; NOT detected yet
        assert w1 is not None and w2 is not None
        assert not w1.triggered and not w2.triggered
        assert cc.deadlocks_found == 0
        young.lock_wait_event = w2
        old.lock_wait_event = w1
        outcomes = {}

        def waiter(env, tag, event):
            try:
                yield event
                outcomes[tag] = "granted"
            except RestartTransaction:
                outcomes[tag] = "victimized"
                cc.abort(young if tag == "young" else old)

        env.process(waiter(env, "old", w1))
        env.process(waiter(env, "young", w2))
        env.run(until=1.5)  # the scan at t=1.0 breaks the cycle
        assert cc.deadlocks_found == 1
        assert outcomes["young"] == "victimized"
        assert outcomes["old"] == "granted"

    def test_no_cycle_no_victims(self, make_tx):
        env = Environment()
        cc = BlockingCC(
            detection_mode=DETECT_PERIODIC, detection_interval=0.5
        ).attach(env)
        holder = make_tx()
        waiter = make_tx()
        cc.write_request(holder, 1)
        event = cc.write_request(waiter, 1)
        waiter.lock_wait_event = event
        env.run(until=3.0)
        assert cc.deadlocks_found == 0
        assert not event.triggered


class TestInModel:
    def hot_params(self):
        return SimulationParameters(
            db_size=30, min_size=2, max_size=6, write_prob=0.6,
            num_terms=15, mpl=12, ext_think_time=0.1,
            obj_io=0.01, obj_cpu=0.005, num_cpus=None, num_disks=None,
        )

    def test_periodic_detection_keeps_system_live_but_slower(self):
        cc = BlockingCC(
            detection_mode=DETECT_PERIODIC, detection_interval=0.5
        )
        model = SystemModel(self.hot_params(), cc, seed=3)
        model.run_until(40.0)
        assert model.metrics.commits.total > 20  # live, no stall
        assert cc.deadlocks_found > 0
        # On-block detection dominates at this contention level:
        # deadlocked transactions hold the mpl hostage between scans.
        on_block = SystemModel(self.hot_params(), "blocking", seed=3)
        on_block.run_until(40.0)
        assert on_block.metrics.commits.total > (
            3 * model.metrics.commits.total
        )

    def test_histories_stay_serializable(self):
        from repro.analysis import check_serializability

        cc = BlockingCC(
            detection_mode=DETECT_PERIODIC, detection_interval=0.5
        )
        model = SystemModel(
            self.hot_params(), cc, seed=4, record_history=True
        )
        model.run_until(40.0)
        report = check_serializability(
            model.committed_history, model.store.final_state()
        )
        assert report.ok, str(report)

    def test_slower_scans_lose_throughput(self):
        # Deadlocked transactions sit blocked until the next scan, so a
        # sluggish detector costs throughput at high contention.
        def run(interval):
            cc = BlockingCC(
                detection_mode=DETECT_PERIODIC,
                detection_interval=interval,
            )
            model = SystemModel(self.hot_params(), cc, seed=5)
            model.run_until(60.0)
            return model.metrics.commits.total

        fast, slow = run(0.1), run(5.0)
        assert fast > 1.3 * slow