"""Unit tests for static (predeclared) locking."""

import pytest

from repro.cc import LockMode, StaticLockingCC
from repro.des import Environment


@pytest.fixture
def cc():
    return StaticLockingCC().attach(Environment())


def declared(make_tx, reads, writes=()):
    tx = make_tx()
    tx.read_set = tuple(reads)
    tx.write_set = frozenset(writes)
    return tx


class TestAcquisitionPlan:
    def test_plan_sorted_with_modes(self, cc, make_tx):
        tx = declared(make_tx, reads=(5, 1, 3), writes=(3,))
        cc.begin(tx)
        assert tx.static_lock_plan == [
            (1, LockMode.SHARED),
            (3, LockMode.EXCLUSIVE),
            (5, LockMode.SHARED),
        ]

    def test_unconflicted_first_request_takes_all_locks(self, cc, make_tx):
        tx = declared(make_tx, reads=(1, 2, 3), writes=(2,))
        cc.begin(tx)
        assert cc.read_request(tx, 1) is None
        assert cc.locks.mode_held(tx, 1) is LockMode.SHARED
        assert cc.locks.mode_held(tx, 2) is LockMode.EXCLUSIVE
        assert cc.locks.mode_held(tx, 3) is LockMode.SHARED

    def test_later_requests_are_noops(self, cc, make_tx):
        tx = declared(make_tx, reads=(1, 2))
        cc.begin(tx)
        cc.read_request(tx, 1)
        assert cc.read_request(tx, 2) is None
        assert cc.write_request(tx, 2) is None

    def test_blocks_on_conflicting_lock_and_resumes(self, cc, make_tx):
        holder = declared(make_tx, reads=(2,), writes=(2,))
        cc.begin(holder)
        cc.read_request(holder, 2)

        tx = declared(make_tx, reads=(1, 2, 3))
        cc.begin(tx)
        event = cc.read_request(tx, 1)
        assert event is not None  # stuck on object 2
        assert cc.locks.mode_held(tx, 1) is LockMode.SHARED
        assert cc.locks.mode_held(tx, 3) is None  # not yet reached
        cc.finalize_commit(holder)
        assert event.triggered
        # Re-issue (as the engine does): plan completes.
        assert cc.read_request(tx, 1) is None
        assert cc.locks.mode_held(tx, 3) is LockMode.SHARED

    def test_no_deadlock_in_opposite_order(self, cc, make_tx):
        # Dynamic 2PL would deadlock here; ordered static acquisition
        # cannot.
        t1 = declared(make_tx, reads=(1, 2), writes=(1, 2))
        t2 = declared(make_tx, reads=(1, 2), writes=(2, 1))
        cc.begin(t1)
        cc.begin(t2)
        assert cc.read_request(t1, 2) is None      # t1 holds 1 and 2
        event = cc.read_request(t2, 1)
        assert event is not None                   # t2 waits on object 1
        cc.finalize_commit(t1)
        assert event.triggered
        assert cc.read_request(t2, 1) is None

    def test_commit_releases_everything(self, cc, make_tx):
        tx = declared(make_tx, reads=(1, 2), writes=(1,))
        cc.begin(tx)
        cc.read_request(tx, 1)
        cc.finalize_commit(tx)
        assert cc.locks.locks_held_by(tx) == []


class TestInModel:
    def test_never_restarts(self):
        from repro.core import SimulationParameters, SystemModel

        params = SimulationParameters(
            db_size=50, min_size=2, max_size=6, write_prob=0.5,
            num_terms=15, mpl=12, ext_think_time=0.1,
            obj_io=0.01, obj_cpu=0.005, num_cpus=None, num_disks=None,
        )
        model = SystemModel(params, "static_locking", seed=4)
        model.run_until(40.0)
        assert model.metrics.commits.total > 100
        assert model.metrics.restarts.total == 0  # deadlock-free
        assert model.metrics.blocks.total > 0

    def test_comparable_to_dynamic_without_any_deadlocks(self):
        # Static locking trades lock-holding time (locks from before
        # the first read) for deadlock freedom and no upgrade
        # conflicts. At a hot operating point it must stay in the same
        # throughput band as dynamic 2PL while never restarting.
        from repro.core import SimulationParameters, SystemModel

        params = SimulationParameters(
            db_size=100, min_size=4, max_size=8, write_prob=0.4,
            num_terms=20, mpl=15, ext_think_time=0.1,
            obj_io=0.01, obj_cpu=0.005, num_cpus=None, num_disks=None,
        )
        static = SystemModel(params, "static_locking", seed=5)
        static.run_until(40.0)
        dynamic = SystemModel(params, "blocking", seed=5)
        dynamic.run_until(40.0)
        assert static.metrics.restarts.total == 0
        assert dynamic.metrics.restarts.total > 0  # deadlocks happen
        assert static.metrics.commits.total > (
            0.4 * dynamic.metrics.commits.total
        )
        assert static.metrics.commits.total < (
            2.5 * dynamic.metrics.commits.total
        )
