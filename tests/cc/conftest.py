"""Shared fixtures for concurrency-control unit tests."""

from itertools import count

import pytest

from repro.des import Environment


class FakeTx:
    """Minimal stand-in for repro.core.Transaction in lock-level tests."""

    _ids = count(1)

    def __init__(self, first_submit_time=0.0, tx_id=None, committing=False):
        self.id = tx_id if tx_id is not None else next(self._ids)
        self.first_submit_time = first_submit_time
        self.priority_ts = (first_submit_time, self.id)
        self.cc_timestamp = (first_submit_time, self.id)
        self.attempt_start_time = first_submit_time
        self.lock_wait_event = None
        self.read_set = ()
        self.write_set = frozenset()
        self.install_write_set = frozenset()
        self.is_committing = committing
        self.process = None
        self.to_skipped_writes = set()
        self.mv_reads_from = {}

    def __repr__(self):
        return f"FakeTx({self.id})"


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def make_tx():
    return FakeTx
