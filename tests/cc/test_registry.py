"""Tests for the algorithm registry."""

import pytest

from repro.cc import (
    PAPER_ALGORITHMS,
    BasicTimestampOrderingCC,
    ConcurrencyControl,
    algorithm_names,
    create_algorithm,
    register_algorithm,
)


class TestRegistry:
    def test_paper_algorithms_present(self):
        names = algorithm_names()
        for name in PAPER_ALGORITHMS:
            assert name in names

    def test_extensions_present(self):
        names = algorithm_names()
        for name in ("basic_to", "mvto", "wound_wait", "wait_die", "noop"):
            assert name in names

    def test_create_by_name(self):
        cc = create_algorithm("blocking")
        assert cc.name == "blocking"

    def test_create_with_kwargs(self):
        cc = create_algorithm("basic_to", thomas_write_rule=True)
        assert isinstance(cc, BasicTimestampOrderingCC)
        assert cc.thomas_write_rule

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="blocking"):
            create_algorithm("two_phase_lockingg")

    def test_register_custom_algorithm(self):
        class MyCC(ConcurrencyControl):
            name = "my_custom_cc_for_test"

        try:
            register_algorithm(MyCC)
            assert isinstance(
                create_algorithm("my_custom_cc_for_test"), MyCC
            )
        finally:
            from repro.cc import registry

            registry._ALGORITHMS.pop("my_custom_cc_for_test", None)

    def test_register_requires_name(self):
        class Nameless(ConcurrencyControl):
            name = None

        with pytest.raises(ValueError):
            register_algorithm(Nameless)

    def test_instances_are_independent(self):
        a = create_algorithm("optimistic")
        b = create_algorithm("optimistic")
        assert a is not b
        assert a._write_stamp is not b._write_stamp
