"""Unit tests for the Immediate-Restart algorithm."""

import pytest

from repro.cc import (
    DELAY_ADAPTIVE,
    REASON_LOCK_CONFLICT,
    ImmediateRestartCC,
    LockMode,
    RestartTransaction,
)
from repro.des import Environment


@pytest.fixture
def cc():
    return ImmediateRestartCC().attach(Environment())


class TestImmediateRestart:
    def test_declares_adaptive_delay(self, cc):
        assert cc.default_restart_delay == DELAY_ADAPTIVE

    def test_grant_without_conflict(self, cc, make_tx):
        assert cc.read_request(make_tx(), 1) is None

    def test_shared_locks_compatible(self, cc, make_tx):
        assert cc.read_request(make_tx(), 1) is None
        assert cc.read_request(make_tx(), 1) is None

    def test_conflict_restarts_requester(self, cc, make_tx):
        t1, t2 = make_tx(), make_tx()
        assert cc.write_request(t1, 1) is None
        with pytest.raises(RestartTransaction) as exc:
            cc.read_request(t2, 1)
        assert exc.value.reason == REASON_LOCK_CONFLICT

    def test_upgrade_conflict_restarts(self, cc, make_tx):
        t1, t2 = make_tx(), make_tx()
        assert cc.read_request(t1, 1) is None
        assert cc.read_request(t2, 1) is None
        with pytest.raises(RestartTransaction):
            cc.write_request(t1, 1)  # t2 also holds shared

    def test_sole_holder_upgrade_succeeds(self, cc, make_tx):
        t1 = make_tx()
        cc.read_request(t1, 1)
        assert cc.write_request(t1, 1) is None
        assert cc.locks.mode_held(t1, 1) is LockMode.EXCLUSIVE

    def test_denied_request_queues_nothing(self, cc, make_tx):
        t1, t2 = make_tx(), make_tx()
        cc.write_request(t1, 1)
        with pytest.raises(RestartTransaction):
            cc.write_request(t2, 1)
        assert cc.locks.queued_requests(1) == []

    def test_commit_releases_locks(self, cc, make_tx):
        t1, t2 = make_tx(), make_tx()
        cc.write_request(t1, 1)
        cc.finalize_commit(t1)
        assert cc.write_request(t2, 1) is None

    def test_abort_releases_locks(self, cc, make_tx):
        t1, t2 = make_tx(), make_tx()
        cc.write_request(t1, 1)
        cc.abort(t1)
        assert cc.write_request(t2, 1) is None

    def test_retry_after_conflict_clears(self, cc, make_tx):
        t1, t2 = make_tx(), make_tx()
        cc.write_request(t1, 1)
        with pytest.raises(RestartTransaction):
            cc.write_request(t2, 1)
        cc.abort(t2)
        cc.finalize_commit(t1)
        assert cc.write_request(t2, 1) is None
