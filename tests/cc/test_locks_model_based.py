"""Model-based property test: the lock manager vs. a naive reference.

hypothesis drives random operation sequences (acquire shared/exclusive,
release-all) against both the production LockManager and a deliberately
simple reference implementation that recomputes everything from the
operation log. Divergence in *who holds what* or *who gets granted when*
is a bug in one of them — and the reference is simple enough to trust.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import LockManager, LockMode, compatible
from repro.des import Environment

from tests.cc.conftest import FakeTx


class ReferenceLockTable:
    """Obviously-correct (and obviously slow) lock semantics.

    State per object: list of (tx, mode) holders and a FIFO wait list of
    (tx, mode, is_upgrade). Re-derives grants after every change by the
    same rules the production manager promises:

    * re-request covered by held mode: no-op grant;
    * sole-holder upgrade grants immediately;
    * otherwise a request is granted iff compatible with all holders and
      nothing waits ahead of it (upgrades wait only for other holders);
    * on release, the wait list grants from the front: upgrades first
      (they sit at the head), batches of compatible shared requests,
      stopping at the first non-grantable entry.
    """

    def __init__(self):
        self.holders = {}  # obj -> {tx: mode}
        self.waiting = {}  # obj -> list of [tx, mode, is_upgrade]

    def acquire(self, tx, obj, mode):
        holders = self.holders.setdefault(obj, {})
        waiting = self.waiting.setdefault(obj, [])
        held = holders.get(tx)
        if held is not None and held >= mode:
            return "held"
        is_upgrade = (
            held is LockMode.SHARED and mode is LockMode.EXCLUSIVE
        )
        if is_upgrade:
            if set(holders) == {tx}:
                holders[tx] = mode
                return "granted"
            position = 0
            while position < len(waiting) and waiting[position][2]:
                position += 1
            waiting.insert(position, [tx, mode, True])
            return "waiting"
        if not waiting and all(
            compatible(mode, other) for other in holders.values()
        ):
            holders[tx] = mode
            return "granted"
        waiting.append([tx, mode, False])
        return "waiting"

    def release_all(self, tx):
        for obj in list(self.holders):
            self.holders[obj].pop(tx, None)
            self.waiting[obj] = [
                entry for entry in self.waiting[obj] if entry[0] is not tx
            ]
            self._grant(obj)

    def _grant(self, obj):
        holders = self.holders[obj]
        waiting = self.waiting[obj]
        while waiting:
            tx, mode, is_upgrade = waiting[0]
            if is_upgrade:
                if set(holders) != {tx}:
                    break
            elif holders and not all(
                compatible(mode, other) for other in holders.values()
            ):
                break
            holders[tx] = mode
            waiting.pop(0)

    def state(self):
        return {
            obj: dict(holders)
            for obj, holders in self.holders.items()
            if holders
        }


operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),   # tx index
        st.integers(min_value=0, max_value=3),   # object
        st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
        st.booleans(),                            # release instead
    ),
    max_size=80,
)


@settings(max_examples=200, deadline=None)
@given(ops=operations)
def test_lock_manager_matches_reference(ops):
    env = Environment()
    production = LockManager(env)
    reference = ReferenceLockTable()
    txs = [FakeTx(tx_id=9000 + i) for i in range(6)]
    granted_events = {}

    for tx_index, obj, mode, release in ops:
        tx = txs[tx_index]
        if release:
            production.release_all(tx)
            reference.release_all(tx)
        else:
            result = production.acquire(tx, obj, mode, wait=True)
            reference.acquire(tx, obj, mode)
            if not result.granted:
                granted_events[id(result.event)] = result.event

        # Compare complete holder state after every operation; grants
        # made by the production manager via events are reflected in
        # its lock table immediately (events fire synchronously from
        # the table's perspective).
        production_state = {
            obj_id: production.holders(obj_id) for obj_id in range(4)
        }
        production_state = {
            obj_id: holders
            for obj_id, holders in production_state.items()
            if holders
        }
        assert production_state == reference.state(), (
            f"divergence after op {(tx_index, obj, mode, release)}"
        )