"""Tests for the commit-protocol seam and two-phase commit.

The seam's contract: a null protocol (``single_site``) leaves every
run bit-identical to pre-seam builds (golden digests), and 2PC
composes with *every* registered algorithm — prepare/vote round trips
before the commit point, a decision stage after the writes install —
with the invariant checker auditing the quorum on the live event
stream.
"""

import pytest

from repro.cc import (
    CommitProtocol,
    SingleSiteCommit,
    TwoPhaseCommit,
    algorithm_names,
    commit_protocol_names,
    create_commit_protocol,
    register_commit_protocol,
)
from repro.cc.registry import _COMMIT_PROTOCOLS
from repro.core.params import RunConfig
from repro.core.simulation import run_simulation
from repro.obs.events import TWO_PC_DECIDE, TWO_PC_PREPARE, TWO_PC_VOTE
from repro.obs.invariants import InvariantChecker
from tests.resources.test_golden_parity import FINITE, GOLDEN, _fingerprint

#: Short run for the all-algorithms composition matrix.
RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=1, seed=99)
GOLDEN_RUN = RunConfig(
    batches=3, batch_time=10.0, warmup_batches=1, seed=20250807
)


class TestRegistry:
    def test_builtin_names(self):
        assert commit_protocol_names() == ["2pc", "single_site"]

    def test_create_round_trip(self):
        assert isinstance(
            create_commit_protocol("single_site"), SingleSiteCommit
        )
        assert isinstance(create_commit_protocol("2pc"), TwoPhaseCommit)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="single_site"):
            create_commit_protocol("three_phase")

    def test_register_custom_protocol(self):
        class PaxosCommit(CommitProtocol):
            name = "test_paxos"
            is_null = False

        try:
            register_commit_protocol(PaxosCommit)
            assert isinstance(
                create_commit_protocol("test_paxos"), PaxosCommit
            )
        finally:
            _COMMIT_PROTOCOLS.pop("test_paxos", None)

    def test_nameless_class_rejected(self):
        class Nameless(CommitProtocol):
            pass

        with pytest.raises(ValueError, match="name"):
            register_commit_protocol(Nameless)


class TestNullProtocolParity:
    """Explicit single_site (and degenerate 2PC) match the golden runs."""

    def test_explicit_single_site_is_bit_identical(self):
        params = FINITE.with_changes(commit_protocol="single_site")
        result = run_simulation(
            params, algorithm="blocking", run=GOLDEN_RUN
        )
        assert _fingerprint(result) == GOLDEN[("blocking", "finite")]

    def test_2pc_with_no_participants_degenerates(self):
        # One node means every participant set is empty: 2PC charges
        # nothing and the digest still matches the classic golden run.
        params = FINITE.with_changes(
            resource_model="distributed", nodes=1, commit_protocol="2pc",
        )
        result = run_simulation(
            params, algorithm="blocking", run=GOLDEN_RUN
        )
        assert _fingerprint(result) == GOLDEN[("blocking", "finite")]


class TestTwoPhaseCommitComposition:
    """2PC runs clean under strict invariants with every algorithm."""

    @pytest.mark.parametrize("algorithm", algorithm_names())
    def test_strict_invariants_at_four_nodes(self, algorithm):
        params = FINITE.with_changes(
            resource_model="distributed", nodes=4,
            network_delay=0.005, commit_protocol="2pc",
            replication_factor=2,
        )
        result = run_simulation(
            params, algorithm=algorithm, run=RUN, invariants="strict",
        )
        report = result.diagnostics["invariants"]
        assert report["violations"] == []
        assert result.totals["commits"] > 0
        assert result.totals["network"]["messages"] > 0

    def test_2pc_slows_commits_down(self):
        base = FINITE.with_changes(
            resource_model="distributed", nodes=4, network_delay=0.01,
        )
        single = run_simulation(base, algorithm="blocking", run=RUN)
        two_pc = run_simulation(
            base.with_changes(commit_protocol="2pc"),
            algorithm="blocking", run=RUN,
        )
        # The handshake ships extra messages and stretches every
        # multi-node commit by prepare round trips.
        assert (two_pc.totals["network"]["messages"]
                > single.totals["network"]["messages"])


class _Tx:
    def __init__(self, tx_id):
        self.id = tx_id


def drive(checker, kind, time, **fields):
    checker.handlers()[kind](time, fields)


class TestQuorumChecker:
    """Synthetic-event unit tests for the 2pc_quorum invariant."""

    def _checker(self):
        return InvariantChecker(mode="warn", check_locks=False)

    def test_clean_prepare_vote_decide(self):
        checker = self._checker()
        tx = _Tx(1)
        drive(checker, TWO_PC_PREPARE, 1.0, tx=tx, node=1)
        drive(checker, TWO_PC_VOTE, 1.1, tx=tx, node=1, vote="yes")
        drive(checker, TWO_PC_PREPARE, 1.2, tx=tx, node=2)
        drive(checker, TWO_PC_VOTE, 1.3, tx=tx, node=2, vote="yes")
        drive(checker, TWO_PC_DECIDE, 1.4, tx=tx, decision="commit",
              quorum=2)
        assert checker.violations == []

    def test_vote_without_prepare_violates(self):
        checker = self._checker()
        drive(checker, TWO_PC_VOTE, 1.0, tx=_Tx(1), node=3, vote="yes")
        assert [v.invariant for v in checker.violations] == ["2pc_quorum"]

    def test_decide_without_all_votes_violates(self):
        checker = self._checker()
        tx = _Tx(1)
        drive(checker, TWO_PC_PREPARE, 1.0, tx=tx, node=1)
        drive(checker, TWO_PC_PREPARE, 1.1, tx=tx, node=2)
        drive(checker, TWO_PC_VOTE, 1.2, tx=tx, node=1, vote="yes")
        drive(checker, TWO_PC_DECIDE, 1.3, tx=tx, decision="commit",
              quorum=2)
        assert [v.invariant for v in checker.violations] == ["2pc_quorum"]
        assert checker.violations[0].details["unvoted"] == [2]

    def test_quorum_mismatch_violates(self):
        checker = self._checker()
        tx = _Tx(1)
        drive(checker, TWO_PC_PREPARE, 1.0, tx=tx, node=1)
        drive(checker, TWO_PC_VOTE, 1.1, tx=tx, node=1, vote="yes")
        drive(checker, TWO_PC_DECIDE, 1.2, tx=tx, decision="commit",
              quorum=5)
        assert [v.invariant for v in checker.violations] == ["2pc_quorum"]

    def test_double_prepare_violates(self):
        checker = self._checker()
        tx = _Tx(1)
        drive(checker, TWO_PC_PREPARE, 1.0, tx=tx, node=1)
        drive(checker, TWO_PC_PREPARE, 1.1, tx=tx, node=1)
        assert [v.invariant for v in checker.violations] == ["2pc_quorum"]

    def test_message_pairing(self):
        from repro.obs.events import MSG_RECV, MSG_SEND

        checker = self._checker()
        tx = _Tx(1)
        drive(checker, MSG_SEND, 1.0, tx=tx, src=0, dst=1)
        drive(checker, MSG_RECV, 1.1, tx=tx, src=0, dst=1)
        assert checker.violations == []
        drive(checker, MSG_RECV, 1.2, tx=tx, src=0, dst=1)
        assert [v.invariant for v in checker.violations] == [
            "message_pairing"
        ]
