"""Unit tests for Multiversion Timestamp Ordering."""

import pytest

from repro.cc import (
    REASON_TIMESTAMP,
    MultiversionTimestampOrderingCC,
    RestartTransaction,
)
from repro.des import Environment


@pytest.fixture
def cc():
    return MultiversionTimestampOrderingCC().attach(Environment())


def stamped(make_tx, ts, writes=()):
    tx = make_tx()
    tx.cc_timestamp = (float(ts), tx.id)
    tx.write_set = frozenset(writes)
    return tx


class TestReads:
    def test_reads_never_block_or_abort(self, cc, make_tx):
        t = stamped(make_tx, 1)
        cc.begin(t)
        assert cc.read_request(t, 1) is None

    def test_read_sees_initial_version(self, cc, make_tx):
        t = stamped(make_tx, 1)
        cc.begin(t)
        cc.read_request(t, 1)
        assert cc.reads_from(t) == {1: None}

    def test_read_selects_version_by_timestamp(self, cc, make_tx):
        w1 = stamped(make_tx, 10, writes={1})
        cc.begin(w1)
        cc.write_request(w1, 1)
        cc.pre_commit(w1)
        cc.finalize_commit(w1)
        w2 = stamped(make_tx, 20, writes={1})
        cc.begin(w2)
        cc.write_request(w2, 1)
        cc.pre_commit(w2)
        cc.finalize_commit(w2)
        # A reader between the two versions sees w1's version.
        r = stamped(make_tx, 15)
        cc.begin(r)
        cc.read_request(r, 1)
        assert cc.reads_from(r) == {1: w1.id}
        # A reader after both sees w2's.
        r2 = stamped(make_tx, 25)
        cc.begin(r2)
        cc.read_request(r2, 1)
        assert cc.reads_from(r2) == {1: w2.id}

    def test_old_reader_not_aborted_by_newer_committed_write(self, cc, make_tx):
        w = stamped(make_tx, 10, writes={1})
        cc.begin(w)
        cc.write_request(w, 1)
        cc.pre_commit(w)
        cc.finalize_commit(w)
        # Single-version basic TO would restart this reader; MVTO serves
        # the initial version instead.
        r = stamped(make_tx, 5)
        cc.begin(r)
        assert cc.read_request(r, 1) is None
        assert cc.reads_from(r) == {1: None}


class TestWrites:
    def test_write_invalidating_a_read_restarts(self, cc, make_tx):
        r = stamped(make_tx, 10)
        cc.begin(r)
        cc.read_request(r, 1)  # reads initial version, rts=10
        w = stamped(make_tx, 5, writes={1})
        cc.begin(w)
        with pytest.raises(RestartTransaction) as exc:
            cc.write_request(w, 1)
        assert exc.value.reason == REASON_TIMESTAMP

    def test_write_after_all_reads_ok(self, cc, make_tx):
        r = stamped(make_tx, 10)
        cc.begin(r)
        cc.read_request(r, 1)
        w = stamped(make_tx, 15, writes={1})
        cc.begin(w)
        assert cc.write_request(w, 1) is None
        assert cc.pre_commit(w) is None

    def test_write_rule_rechecked_at_install(self, cc, make_tx):
        w = stamped(make_tx, 5, writes={1})
        cc.begin(w)
        assert cc.write_request(w, 1) is None  # passes early check
        # A reader with a later stamp arrives before w installs...
        r = stamped(make_tx, 8)
        cc.begin(r)
        cc.read_request(r, 1)  # reads initial version, rts=8 > 5
        # ...so w's install must be rejected.
        with pytest.raises(RestartTransaction):
            cc.pre_commit(w)

    def test_interleaved_version_install_allowed(self, cc, make_tx):
        w2 = stamped(make_tx, 20, writes={1})
        cc.begin(w2)
        cc.write_request(w2, 1)
        cc.pre_commit(w2)
        cc.finalize_commit(w2)
        # An older writer may still slot its version beneath w2's as long
        # as no reader depended on the gap.
        w1 = stamped(make_tx, 10, writes={1})
        cc.begin(w1)
        assert cc.write_request(w1, 1) is None
        assert cc.pre_commit(w1) is None

    def test_version_keys(self, cc, make_tx):
        t = stamped(make_tx, 10)
        cc.begin(t)
        assert cc.serial_key(t) == t.cc_timestamp
        assert cc.reader_version_key(t) == t.cc_timestamp


class TestPruning:
    def test_chains_are_bounded(self, cc, make_tx):
        cc.max_versions = 4
        for i in range(50):
            w = stamped(make_tx, i + 1, writes={1})
            cc.begin(w)
            cc.write_request(w, 1)
            cc.pre_commit(w)
            cc.finalize_commit(w)
        chain = cc._chains[1]
        assert len(chain.versions) <= cc.max_versions + 1

    def test_pruning_preserves_oldest_active_reader(self, cc, make_tx):
        cc.max_versions = 2
        old_reader = stamped(make_tx, 2)
        cc.begin(old_reader)  # active with ts=2
        for i in range(10, 60, 10):
            w = stamped(make_tx, i, writes={1})
            cc.begin(w)
            cc.write_request(w, 1)
            cc.pre_commit(w)
            cc.finalize_commit(w)
        # The version the old reader needs (the initial one) must survive.
        assert cc.read_request(old_reader, 1) is None
        assert cc.reads_from(old_reader)[1] is None
