"""Unit tests for the lock manager: grant rules, upgrades, queues."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cc import LockManager, LockMode, compatible
from repro.des import Environment


def manager():
    return LockManager(Environment())


class TestCompatibility:
    def test_shared_shared(self):
        assert compatible(LockMode.SHARED, LockMode.SHARED)

    @pytest.mark.parametrize(
        "a,b",
        [
            (LockMode.SHARED, LockMode.EXCLUSIVE),
            (LockMode.EXCLUSIVE, LockMode.SHARED),
            (LockMode.EXCLUSIVE, LockMode.EXCLUSIVE),
        ],
    )
    def test_exclusive_conflicts(self, a, b):
        assert not compatible(a, b)


class TestBasicGrants:
    def test_first_shared_granted(self, make_tx):
        lm = manager()
        assert lm.acquire(make_tx(), 1, LockMode.SHARED).granted

    def test_concurrent_shared_granted(self, make_tx):
        lm = manager()
        t1, t2 = make_tx(), make_tx()
        assert lm.acquire(t1, 1, LockMode.SHARED).granted
        assert lm.acquire(t2, 1, LockMode.SHARED).granted
        assert lm.mode_held(t1, 1) is LockMode.SHARED
        assert lm.mode_held(t2, 1) is LockMode.SHARED

    def test_exclusive_blocks_shared(self, make_tx):
        lm = manager()
        t1, t2 = make_tx(), make_tx()
        assert lm.acquire(t1, 1, LockMode.EXCLUSIVE).granted
        result = lm.acquire(t2, 1, LockMode.SHARED)
        assert not result.granted
        assert result.event is not None

    def test_shared_blocks_exclusive(self, make_tx):
        lm = manager()
        t1, t2 = make_tx(), make_tx()
        assert lm.acquire(t1, 1, LockMode.SHARED).granted
        assert not lm.acquire(t2, 1, LockMode.EXCLUSIVE).granted

    def test_reacquire_same_mode_is_noop(self, make_tx):
        lm = manager()
        t1 = make_tx()
        assert lm.acquire(t1, 1, LockMode.SHARED).granted
        assert lm.acquire(t1, 1, LockMode.SHARED).granted

    def test_shared_after_exclusive_held_is_covered(self, make_tx):
        lm = manager()
        t1 = make_tx()
        assert lm.acquire(t1, 1, LockMode.EXCLUSIVE).granted
        assert lm.acquire(t1, 1, LockMode.SHARED).granted

    def test_nowait_denial_queues_nothing(self, make_tx):
        lm = manager()
        t1, t2 = make_tx(), make_tx()
        lm.acquire(t1, 1, LockMode.EXCLUSIVE)
        result = lm.acquire(t2, 1, LockMode.SHARED, wait=False)
        assert not result.granted
        assert result.event is None
        assert lm.queued_requests(1) == []

    def test_different_objects_independent(self, make_tx):
        lm = manager()
        t1, t2 = make_tx(), make_tx()
        assert lm.acquire(t1, 1, LockMode.EXCLUSIVE).granted
        assert lm.acquire(t2, 2, LockMode.EXCLUSIVE).granted


class TestQueueing:
    def test_no_overtaking_queued_exclusive(self, make_tx):
        # reader holds S; writer queues for X; a NEW reader must not jump
        # the queued writer even though S-S would be compatible.
        lm = manager()
        reader, writer, late_reader = make_tx(), make_tx(), make_tx()
        lm.acquire(reader, 1, LockMode.SHARED)
        assert not lm.acquire(writer, 1, LockMode.EXCLUSIVE).granted
        assert not lm.acquire(late_reader, 1, LockMode.SHARED).granted

    def test_release_grants_fcfs(self, make_tx):
        lm = manager()
        holder, w1, w2 = make_tx(), make_tx(), make_tx()
        lm.acquire(holder, 1, LockMode.EXCLUSIVE)
        r1 = lm.acquire(w1, 1, LockMode.EXCLUSIVE)
        r2 = lm.acquire(w2, 1, LockMode.EXCLUSIVE)
        lm.release_all(holder)
        assert r1.event.triggered
        assert not r2.event.triggered
        assert lm.mode_held(w1, 1) is LockMode.EXCLUSIVE

    def test_release_grants_multiple_shared_together(self, make_tx):
        lm = manager()
        holder, s1, s2, x1 = make_tx(), make_tx(), make_tx(), make_tx()
        lm.acquire(holder, 1, LockMode.EXCLUSIVE)
        r1 = lm.acquire(s1, 1, LockMode.SHARED)
        r2 = lm.acquire(s2, 1, LockMode.SHARED)
        r3 = lm.acquire(x1, 1, LockMode.EXCLUSIVE)
        lm.release_all(holder)
        assert r1.event.triggered and r2.event.triggered
        assert not r3.event.triggered

    def test_release_all_removes_queued_requests(self, make_tx):
        lm = manager()
        holder, waiter = make_tx(), make_tx()
        lm.acquire(holder, 1, LockMode.EXCLUSIVE)
        lm.acquire(waiter, 1, LockMode.SHARED)
        lm.release_all(waiter)
        assert lm.queued_requests(1) == []
        # holder still holds
        assert lm.mode_held(holder, 1) is LockMode.EXCLUSIVE

    def test_dead_requests_skipped_at_grant(self, make_tx, env):
        lm = LockManager(env)
        holder, victim, waiter = make_tx(), make_tx(), make_tx()
        lm.acquire(holder, 1, LockMode.EXCLUSIVE)
        rv = lm.acquire(victim, 1, LockMode.EXCLUSIVE)
        rw = lm.acquire(waiter, 1, LockMode.EXCLUSIVE)
        rv.event.fail(RuntimeError("victimized"))
        rv.event._defused = True
        lm.release_all(holder)
        assert rw.event.triggered
        assert lm.mode_held(waiter, 1) is LockMode.EXCLUSIVE


class TestUpgrades:
    def test_sole_holder_upgrades_in_place(self, make_tx):
        lm = manager()
        t1 = make_tx()
        lm.acquire(t1, 1, LockMode.SHARED)
        assert lm.acquire(t1, 1, LockMode.EXCLUSIVE).granted
        assert lm.mode_held(t1, 1) is LockMode.EXCLUSIVE

    def test_sole_holder_upgrade_beats_queue(self, make_tx):
        lm = manager()
        t1, waiter = make_tx(), make_tx()
        lm.acquire(t1, 1, LockMode.SHARED)
        lm.acquire(waiter, 1, LockMode.EXCLUSIVE)  # queued
        assert lm.acquire(t1, 1, LockMode.EXCLUSIVE).granted

    def test_upgrade_waits_for_other_readers(self, make_tx):
        lm = manager()
        t1, t2 = make_tx(), make_tx()
        lm.acquire(t1, 1, LockMode.SHARED)
        lm.acquire(t2, 1, LockMode.SHARED)
        result = lm.acquire(t1, 1, LockMode.EXCLUSIVE)
        assert not result.granted
        lm.release_all(t2)
        assert result.event.triggered
        assert lm.mode_held(t1, 1) is LockMode.EXCLUSIVE

    def test_upgrade_queues_ahead_of_plain_requests(self, make_tx):
        lm = manager()
        t1, t2, t3 = make_tx(), make_tx(), make_tx()
        lm.acquire(t1, 1, LockMode.SHARED)
        lm.acquire(t2, 1, LockMode.SHARED)
        lm.acquire(t3, 1, LockMode.EXCLUSIVE)  # plain, queued first
        up = lm.acquire(t1, 1, LockMode.EXCLUSIVE)  # upgrade, queued later
        queue = lm.queued_requests(1)
        assert queue[0] is up.request
        lm.release_all(t2)
        assert up.event.triggered
        assert lm.mode_held(t1, 1) is LockMode.EXCLUSIVE


class TestBlockers:
    def test_blockers_includes_conflicting_holders(self, make_tx):
        lm = manager()
        holder, waiter = make_tx(), make_tx()
        lm.acquire(holder, 1, LockMode.EXCLUSIVE)
        result = lm.acquire(waiter, 1, LockMode.SHARED)
        assert lm.blockers(result.request) == {holder}

    def test_blockers_includes_queued_ahead_conflicts(self, make_tx):
        lm = manager()
        holder, first, second = make_tx(), make_tx(), make_tx()
        lm.acquire(holder, 1, LockMode.EXCLUSIVE)
        lm.acquire(first, 1, LockMode.EXCLUSIVE)
        result = lm.acquire(second, 1, LockMode.EXCLUSIVE)
        assert lm.blockers(result.request) == {holder, first}

    def test_blockers_excludes_compatible_queued_ahead(self, make_tx):
        lm = manager()
        holder, s_ahead, s_behind = make_tx(), make_tx(), make_tx()
        lm.acquire(holder, 1, LockMode.EXCLUSIVE)
        lm.acquire(s_ahead, 1, LockMode.SHARED)
        result = lm.acquire(s_behind, 1, LockMode.SHARED)
        assert lm.blockers(result.request) == {holder}

    def test_upgrade_blockers_are_other_holders(self, make_tx):
        lm = manager()
        t1, t2 = make_tx(), make_tx()
        lm.acquire(t1, 1, LockMode.SHARED)
        lm.acquire(t2, 1, LockMode.SHARED)
        result = lm.acquire(t1, 1, LockMode.EXCLUSIVE)
        assert lm.blockers(result.request) == {t2}

    def test_would_conflict_with_matches_blockers(self, make_tx):
        lm = manager()
        holder, probe = make_tx(), make_tx()
        lm.acquire(holder, 1, LockMode.EXCLUSIVE)
        conflicts = lm.would_conflict_with(probe, 1, LockMode.SHARED)
        assert conflicts == {holder}
        # and nothing was queued by the probe
        assert lm.queued_requests(1) == []

    def test_would_conflict_covered_mode_is_empty(self, make_tx):
        lm = manager()
        t1 = make_tx()
        lm.acquire(t1, 1, LockMode.EXCLUSIVE)
        assert lm.would_conflict_with(t1, 1, LockMode.SHARED) == set()


class TestInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),  # tx index
                st.integers(min_value=0, max_value=2),  # object
                st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
                st.booleans(),  # release instead of acquire
            ),
            max_size=60,
        )
    )
    def test_never_incompatible_holders(self, ops):
        from tests.cc.conftest import FakeTx

        lm = manager()
        txs = [FakeTx(tx_id=1000 + i) for i in range(5)]
        for tx_index, obj, mode, release in ops:
            tx = txs[tx_index]
            if release:
                lm.release_all(tx)
            else:
                lm.acquire(tx, obj, mode)
            for check_obj in range(3):
                holders = lm.holders(check_obj)
                modes = list(holders.values())
                if LockMode.EXCLUSIVE in modes:
                    assert len(holders) == 1, (
                        f"exclusive shared with others on {check_obj}"
                    )
