"""Strict-invariant coverage for the non-paper algorithms.

The paper's three algorithms run under strict checking throughout the
observability suite; the six extensions get the same audit here — one
contended sweep point each, full conservation/commit-point/resource
checking, zero tolerated violations. High contention (small database,
large transactions, many writers) maximizes the blocking/restart/
wound/version traffic each algorithm's bookkeeping must survive.
"""

import pytest

from repro.cc import PAPER_ALGORITHMS, algorithm_names
from repro.core.params import RunConfig, SimulationParameters
from repro.core.simulation import run_simulation

#: The extensions: every registered algorithm the paper doesn't study.
NON_PAPER_ALGORITHMS = sorted(
    set(algorithm_names()) - set(PAPER_ALGORITHMS)
)

#: Harsh contention: 8-object transactions over 60 objects, half
#: writers, mpl 10 — conflicts on nearly every attempt.
CONTENDED = SimulationParameters(
    db_size=60, min_size=2, max_size=8, write_prob=0.5,
    num_terms=20, mpl=10, ext_think_time=0.2,
    obj_io=0.01, obj_cpu=0.005, num_cpus=1, num_disks=2,
)
RUN = RunConfig(batches=3, batch_time=5.0, warmup_batches=1, seed=4242)


class TestNonPaperAlgorithmsStrict:
    def test_covers_the_six_extensions(self):
        assert NON_PAPER_ALGORITHMS == [
            "basic_to", "mvto", "noop", "static_locking",
            "wait_die", "wound_wait",
        ]

    @pytest.mark.parametrize("algorithm", NON_PAPER_ALGORITHMS)
    def test_strict_contended_point(self, algorithm):
        result = run_simulation(
            CONTENDED, algorithm=algorithm, run=RUN, invariants="strict",
        )
        report = result.diagnostics["invariants"]
        assert report["mode"] == "strict"
        assert report["violations"] == []
        assert report["events_checked"] > 0
        assert result.totals["commits"] > 0
