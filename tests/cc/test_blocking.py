"""Unit tests for the Blocking (dynamic 2PL) algorithm."""

import pytest

from repro.cc import (
    REASON_DEADLOCK,
    BlockingCC,
    EngineHooks,
    LockMode,
    RestartTransaction,
)
from repro.des import Environment


class RecordingHooks(EngineHooks):
    def __init__(self):
        self.blocks = []
        self.remote_aborts = []

    def count_block(self, tx):
        self.blocks.append(tx)

    def abort_remote(self, tx, error):
        self.remote_aborts.append((tx, error))


@pytest.fixture
def setup(make_tx):
    env = Environment()
    hooks = RecordingHooks()
    cc = BlockingCC().attach(env, hooks)
    return env, hooks, cc


class TestGrants:
    def test_unconflicted_read_is_immediate(self, setup, make_tx):
        _, hooks, cc = setup
        assert cc.read_request(make_tx(), 7) is None
        assert hooks.blocks == []

    def test_read_read_share(self, setup, make_tx):
        _, _, cc = setup
        t1, t2 = make_tx(), make_tx()
        assert cc.read_request(t1, 7) is None
        assert cc.read_request(t2, 7) is None

    def test_write_after_own_read_upgrades(self, setup, make_tx):
        _, _, cc = setup
        t1 = make_tx()
        assert cc.read_request(t1, 7) is None
        assert cc.write_request(t1, 7) is None
        assert cc.locks.mode_held(t1, 7) is LockMode.EXCLUSIVE

    def test_conflicting_request_blocks(self, setup, make_tx):
        _, hooks, cc = setup
        t1, t2 = make_tx(), make_tx()
        assert cc.write_request(t1, 7) is None
        event = cc.read_request(t2, 7)
        assert event is not None
        assert not event.triggered
        assert hooks.blocks == [t2]
        assert t2.lock_wait_event is event

    def test_commit_releases_and_grants(self, setup, make_tx):
        _, _, cc = setup
        t1, t2 = make_tx(), make_tx()
        cc.write_request(t1, 7)
        event = cc.read_request(t2, 7)
        cc.finalize_commit(t1)
        assert event.triggered
        assert cc.locks.mode_held(t2, 7) is LockMode.SHARED


class TestWriteLockPolicy:
    def test_policy_validated(self):
        with pytest.raises(ValueError):
            BlockingCC(write_lock_policy="eventually")

    def test_immediate_exclusive_locks_writes_at_read(self, make_tx):
        from repro.cc.blocking import IMMEDIATE_EXCLUSIVE
        from repro.cc import LockMode

        env = Environment()
        cc = BlockingCC(
            write_lock_policy=IMMEDIATE_EXCLUSIVE
        ).attach(env, RecordingHooks())
        tx = make_tx()
        tx.write_set = frozenset({7})
        assert cc.read_request(tx, 7) is None
        assert cc.locks.mode_held(tx, 7) is LockMode.EXCLUSIVE
        # Non-written objects still take shared locks.
        assert cc.read_request(tx, 8) is None
        assert cc.locks.mode_held(tx, 8) is LockMode.SHARED

    def test_no_upgrade_deadlock_under_immediate_exclusive(self, make_tx):
        from repro.cc.blocking import IMMEDIATE_EXCLUSIVE

        env = Environment()
        cc = BlockingCC(
            write_lock_policy=IMMEDIATE_EXCLUSIVE
        ).attach(env, RecordingHooks())
        t1 = make_tx(first_submit_time=1.0)
        t2 = make_tx(first_submit_time=2.0)
        t1.write_set = frozenset({5})
        t2.write_set = frozenset({5})
        # Under the upgrade policy this pattern deadlocks; here the
        # second reader simply waits for the first writer.
        assert cc.read_request(t1, 5) is None
        event = cc.read_request(t2, 5)
        assert event is not None
        assert cc.deadlocks_found == 0
        cc.finalize_commit(t1)
        assert event.triggered and event.ok


class TestVictimPolicies:
    def test_victim_policy_validated(self):
        with pytest.raises(ValueError):
            BlockingCC(victim_policy="random")

    def test_oldest_victim_policy(self, make_tx):
        from repro.cc.blocking import VICTIM_OLDEST

        env = Environment()
        cc = BlockingCC(victim_policy=VICTIM_OLDEST).attach(
            env, RecordingHooks()
        )
        old = make_tx(first_submit_time=1.0)
        young = make_tx(first_submit_time=9.0)
        cc.write_request(old, 1)
        cc.write_request(young, 2)
        old_wait = cc.write_request(old, 2)
        # Cycle closes; the OLDEST (old, which is blocked) is the victim.
        young_wait = cc.write_request(young, 1)
        assert old_wait.triggered and not old_wait.ok
        with pytest.raises(RestartTransaction):
            old_wait.value
        assert young_wait is not None

    def test_requester_victim_policy(self, make_tx):
        from repro.cc.blocking import VICTIM_REQUESTER

        env = Environment()
        cc = BlockingCC(victim_policy=VICTIM_REQUESTER).attach(
            env, RecordingHooks()
        )
        old = make_tx(first_submit_time=1.0)
        young = make_tx(first_submit_time=9.0)
        cc.write_request(old, 1)
        cc.write_request(young, 2)
        cc.write_request(young, 1)  # young blocks on old
        # old closes the cycle as the requester -> old itself dies,
        # even though it is not the youngest.
        with pytest.raises(RestartTransaction):
            cc.write_request(old, 2)


class TestDeadlocks:
    def test_requester_victimized_when_youngest(self, setup, make_tx):
        _, _, cc = setup
        old = make_tx(first_submit_time=1.0)
        young = make_tx(first_submit_time=9.0)
        assert cc.write_request(old, 1) is None
        assert cc.write_request(young, 2) is None
        assert cc.write_request(old, 2) is not None  # old blocks on young
        with pytest.raises(RestartTransaction) as exc:
            cc.write_request(young, 1)  # closes the cycle; young dies
        assert exc.value.reason == REASON_DEADLOCK
        assert cc.deadlocks_found == 1

    def test_blocked_victim_event_failed(self, setup, make_tx):
        env, _, cc = setup
        old = make_tx(first_submit_time=1.0)
        young = make_tx(first_submit_time=9.0)
        assert cc.write_request(young, 1) is None
        assert cc.write_request(old, 2) is None
        young_wait = cc.write_request(young, 2)  # young blocks on old
        assert young_wait is not None
        # old closes the cycle: young (blocked) is the victim.
        old_wait = cc.write_request(old, 1)
        assert young_wait.triggered and not young_wait.ok
        with pytest.raises(RestartTransaction):
            young_wait.value
        # victim's locks were released at victimization: old is granted.
        assert old_wait.triggered and old_wait.ok
        assert cc.locks.mode_held(old, 1) is LockMode.EXCLUSIVE

    def test_upgrade_upgrade_deadlock(self, setup, make_tx):
        _, _, cc = setup
        old = make_tx(first_submit_time=1.0)
        young = make_tx(first_submit_time=9.0)
        assert cc.read_request(old, 5) is None
        assert cc.read_request(young, 5) is None
        assert cc.write_request(old, 5) is not None  # upgrade waits
        with pytest.raises(RestartTransaction):
            cc.write_request(young, 5)  # second upgrade: deadlock, young dies

    def test_no_false_deadlock_on_plain_queue(self, setup, make_tx):
        _, _, cc = setup
        t1, t2, t3 = make_tx(), make_tx(), make_tx()
        cc.write_request(t1, 1)
        assert cc.write_request(t2, 1) is not None
        assert cc.write_request(t3, 1) is not None
        assert cc.deadlocks_found == 0

    def test_three_way_cycle_restarts_only_youngest(self, setup, make_tx):
        _, _, cc = setup
        t1 = make_tx(first_submit_time=1.0)
        t2 = make_tx(first_submit_time=2.0)
        t3 = make_tx(first_submit_time=3.0)
        cc.write_request(t1, 1)
        cc.write_request(t2, 2)
        cc.write_request(t3, 3)
        w1 = cc.write_request(t1, 2)  # t1 -> t2
        w2 = cc.write_request(t2, 3)  # t2 -> t3
        # t3 -> t1 closes the cycle; youngest is t3, the requester.
        with pytest.raises(RestartTransaction):
            cc.write_request(t3, 1)
        assert not w1.triggered  # t1 still waiting, not victimized
        assert not w2.triggered

    def test_abort_cleans_up_victim(self, setup, make_tx):
        _, _, cc = setup
        t1, t2 = make_tx(first_submit_time=1.0), make_tx(first_submit_time=2.0)
        cc.write_request(t1, 1)
        cc.write_request(t2, 2)
        cc.write_request(t1, 2)
        with pytest.raises(RestartTransaction):
            cc.write_request(t2, 1)
        cc.abort(t2)
        assert cc.locks.locks_held_by(t2) == []
        # t1's wait on object 2 is granted once t2 is fully gone.
        assert cc.locks.mode_held(t1, 2) is LockMode.EXCLUSIVE
