"""Unit tests for the wound-wait and wait-die deadlock-prevention variants."""

import pytest

from repro.cc import (
    REASON_LOCK_CONFLICT,
    REASON_WOUND,
    EngineHooks,
    LockMode,
    RestartTransaction,
    WaitDieCC,
    WoundWaitCC,
)
from repro.des import Environment


class RecordingHooks(EngineHooks):
    def __init__(self):
        self.blocks = []
        self.remote_aborts = []

    def count_block(self, tx):
        self.blocks.append(tx)

    def abort_remote(self, tx, error):
        self.remote_aborts.append((tx, error))


@pytest.fixture
def hooks():
    return RecordingHooks()


class TestWaitDie:
    @pytest.fixture
    def cc(self, hooks):
        return WaitDieCC().attach(Environment(), hooks)

    def test_older_requester_waits(self, cc, hooks, make_tx):
        young = make_tx(first_submit_time=9.0)
        old = make_tx(first_submit_time=1.0)
        assert cc.write_request(young, 1) is None
        event = cc.write_request(old, 1)
        assert event is not None
        assert hooks.blocks == [old]

    def test_younger_requester_dies(self, cc, make_tx):
        old = make_tx(first_submit_time=1.0)
        young = make_tx(first_submit_time=9.0)
        assert cc.write_request(old, 1) is None
        with pytest.raises(RestartTransaction) as exc:
            cc.write_request(young, 1)
        assert exc.value.reason == REASON_LOCK_CONFLICT
        assert cc.deaths == 1

    def test_young_dies_against_queued_ahead(self, cc, make_tx):
        oldest = make_tx(first_submit_time=1.0)
        middle = make_tx(first_submit_time=2.0)
        young = make_tx(first_submit_time=9.0)
        cc.write_request(young, 1)  # young holds
        # middle is older than the HOLDER young? no: middle(2) < young(9),
        # so middle waits.
        assert cc.write_request(middle, 1) is not None
        # oldest is older than both holder and queued: waits too.
        assert cc.write_request(oldest, 1) is not None

    def test_die_against_queued_ahead_conflict(self, cc, make_tx):
        young_holder = make_tx(first_submit_time=9.0)
        old_waiter = make_tx(first_submit_time=1.0)
        middle = make_tx(first_submit_time=5.0)
        cc.write_request(young_holder, 1)
        cc.write_request(old_waiter, 1)  # waits (older than holder)
        # middle is older than the holder but YOUNGER than the queued
        # old_waiter -> must die, else a cycle could form.
        with pytest.raises(RestartTransaction):
            cc.write_request(middle, 1)

    def test_shared_locks_no_conflict_no_death(self, cc, make_tx):
        t1 = make_tx(first_submit_time=1.0)
        t2 = make_tx(first_submit_time=9.0)
        assert cc.read_request(t1, 1) is None
        assert cc.read_request(t2, 1) is None
        assert cc.deaths == 0

    def test_commit_releases_and_grants_waiter(self, cc, make_tx):
        young = make_tx(first_submit_time=9.0)
        old = make_tx(first_submit_time=1.0)
        cc.write_request(young, 1)
        event = cc.write_request(old, 1)
        cc.finalize_commit(young)
        assert event.triggered
        assert cc.locks.mode_held(old, 1) is LockMode.EXCLUSIVE


class TestWoundWait:
    @pytest.fixture
    def cc(self, hooks):
        return WoundWaitCC().attach(Environment(), hooks)

    def test_younger_requester_waits(self, cc, hooks, make_tx):
        old = make_tx(first_submit_time=1.0)
        young = make_tx(first_submit_time=9.0)
        assert cc.write_request(old, 1) is None
        event = cc.write_request(young, 1)
        assert event is not None
        assert cc.wounds == 0
        assert hooks.blocks == [young]

    def test_older_requester_wounds_running_holder(self, cc, hooks, make_tx):
        young = make_tx(first_submit_time=9.0)
        old = make_tx(first_submit_time=1.0)
        assert cc.write_request(young, 1) is None
        event = cc.write_request(old, 1)
        assert event is not None  # still waits for the wounded holder
        assert cc.wounds == 1
        assert len(hooks.remote_aborts) == 1
        victim, error = hooks.remote_aborts[0]
        assert victim is young
        assert error.reason == REASON_WOUND
        # When the victim's abort is processed, the old requester gets in.
        cc.abort(young)
        assert event.triggered
        assert cc.locks.mode_held(old, 1) is LockMode.EXCLUSIVE

    def test_older_requester_wounds_blocked_victim(self, cc, hooks, make_tx):
        holder = make_tx(first_submit_time=0.5)
        young = make_tx(first_submit_time=9.0)
        old = make_tx(first_submit_time=1.0)
        cc.write_request(holder, 1)
        young_wait = cc.write_request(young, 1)
        assert young_wait is not None
        young.lock_wait_event = young_wait
        event = cc.write_request(old, 1)
        assert cc.wounds == 1
        assert young_wait.triggered and not young_wait.ok
        assert hooks.remote_aborts == []  # blocked victim: event failed
        assert event is not None

    def test_committing_victim_is_spared(self, cc, hooks, make_tx):
        young = make_tx(first_submit_time=9.0, committing=True)
        old = make_tx(first_submit_time=1.0)
        cc.write_request(young, 1)
        event = cc.write_request(old, 1)
        assert cc.wounds == 0
        assert hooks.remote_aborts == []
        assert event is not None  # waits for the finisher

    def test_wound_then_wait_mixed_ages(self, cc, hooks, make_tx):
        oldest = make_tx(first_submit_time=0.1)
        young = make_tx(first_submit_time=9.0)
        middle = make_tx(first_submit_time=5.0)
        assert cc.read_request(oldest, 1) is None
        assert cc.read_request(young, 1) is None
        # middle upgrades... no: middle requests exclusive; conflicts with
        # both holders. It wounds young (younger) and waits for oldest.
        event = cc.write_request(middle, 1)
        assert event is not None
        assert cc.wounds == 1
        assert hooks.remote_aborts[0][0] is young
