"""Tests for waits-for graph construction and cycle detection."""

import networkx as nx
from hypothesis import given
from hypothesis import strategies as st

from repro.cc import (
    LockManager,
    LockMode,
    build_waits_for,
    find_any_cycle,
    find_cycle_containing,
    youngest,
)
from repro.des import Environment

from tests.cc.conftest import FakeTx


class TestBuildWaitsFor:
    def test_empty_table(self):
        lm = LockManager(Environment())
        assert build_waits_for(lm) == {}

    def test_simple_wait(self, make_tx):
        lm = LockManager(Environment())
        holder, waiter = make_tx(), make_tx()
        lm.acquire(holder, 1, LockMode.EXCLUSIVE)
        lm.acquire(waiter, 1, LockMode.EXCLUSIVE)
        graph = build_waits_for(lm)
        assert graph == {waiter: {holder}}

    def test_upgrade_deadlock_shape(self, make_tx):
        # Two readers both upgrading: the classic upgrade-upgrade deadlock.
        lm = LockManager(Environment())
        t1, t2 = make_tx(), make_tx()
        lm.acquire(t1, 1, LockMode.SHARED)
        lm.acquire(t2, 1, LockMode.SHARED)
        lm.acquire(t1, 1, LockMode.EXCLUSIVE)
        lm.acquire(t2, 1, LockMode.EXCLUSIVE)
        graph = build_waits_for(lm)
        assert graph[t1] == {t2}
        assert graph[t2] == {t1}
        cycle = find_cycle_containing(graph, t1)
        assert cycle is not None
        assert set(cycle) == {t1, t2}


class TestFindCycle:
    def test_no_cycle(self):
        a, b, c = FakeTx(), FakeTx(), FakeTx()
        graph = {a: {b}, b: {c}}
        assert find_cycle_containing(graph, a) is None
        assert find_any_cycle(graph) is None

    def test_self_loop_not_possible_but_handled(self):
        a = FakeTx()
        graph = {a: {a}}
        assert find_cycle_containing(graph, a) == [a]

    def test_two_cycle(self):
        a, b = FakeTx(), FakeTx()
        graph = {a: {b}, b: {a}}
        cycle = find_cycle_containing(graph, a)
        assert set(cycle) == {a, b}

    def test_long_cycle(self):
        nodes = [FakeTx() for _ in range(6)]
        graph = {
            nodes[i]: {nodes[(i + 1) % 6]} for i in range(6)
        }
        cycle = find_cycle_containing(graph, nodes[0])
        assert set(cycle) == set(nodes)

    def test_cycle_not_through_start(self):
        a, b, c = FakeTx(), FakeTx(), FakeTx()
        graph = {a: {b}, b: {c}, c: {b}}
        assert find_cycle_containing(graph, a) is None
        assert find_any_cycle(graph) is not None

    def test_start_not_in_graph(self):
        a = FakeTx()
        assert find_cycle_containing({}, a) is None

    @given(st.integers(min_value=0, max_value=2**31), st.data())
    def test_matches_networkx(self, seed, data):
        import random

        rng = random.Random(seed)
        n = rng.randint(2, 10)
        nodes = [FakeTx(tx_id=5000 + i) for i in range(n)]
        graph = {}
        for node in nodes:
            successors = {
                other for other in nodes
                if other is not node and rng.random() < 0.3
            }
            if successors:
                graph[node] = successors
        g = nx.DiGraph()
        g.add_nodes_from(nodes)
        for node, successors in graph.items():
            g.add_edges_from((node, s) for s in successors)
        for start in nodes:
            ours = find_cycle_containing(graph, start)
            in_nx_cycle = any(
                start in component and (
                    len(component) > 1 or g.has_edge(start, start)
                )
                for component in nx.strongly_connected_components(g)
            )
            if ours is None:
                assert not in_nx_cycle
            else:
                assert in_nx_cycle
                # the returned path really is a cycle through start
                assert ours[0] is start
                for u, v in zip(ours, ours[1:]):
                    assert v in graph[u]
                assert start in graph[ours[-1]]


class TestYoungest:
    def test_latest_submit_is_youngest(self):
        old = FakeTx(first_submit_time=1.0)
        young = FakeTx(first_submit_time=9.0)
        assert youngest([old, young]) is young
        assert youngest([young, old]) is young

    def test_tie_breaks_on_id(self):
        a = FakeTx(first_submit_time=5.0, tx_id=1)
        b = FakeTx(first_submit_time=5.0, tx_id=2)
        assert youngest([a, b]) is b

    def test_single(self):
        a = FakeTx()
        assert youngest([a]) is a
