"""Unit tests for the Optimistic (commit-time validation) algorithm."""

import pytest

from repro.cc import (
    DELAY_NONE,
    INSTALL_AT_PRE_COMMIT,
    REASON_VALIDATION,
    OptimisticCC,
    RestartTransaction,
)
from repro.des import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cc(env):
    return OptimisticCC().attach(env)


class TestOptimistic:
    def test_no_delay_policy_and_pre_commit_install(self, cc):
        assert cc.default_restart_delay == DELAY_NONE
        assert cc.install_at == INSTALL_AT_PRE_COMMIT

    def test_reads_and_writes_never_block(self, cc, make_tx):
        t = make_tx()
        assert cc.read_request(t, 1) is None
        assert cc.write_request(t, 1) is None

    def test_validation_passes_with_no_conflicts(self, env, cc, make_tx):
        t = make_tx(first_submit_time=0.0)
        t.attempt_start_time = 0.0
        t.read_set = (1, 2)
        t.write_set = frozenset({2})
        assert cc.pre_commit(t) is None
        assert cc.validations == 1
        assert cc.validation_failures == 0

    def test_conflicting_commit_fails_validation(self, env, cc):
        # writer commits object 5 at t=10; a reader that started at t=3
        # and read object 5 must fail validation.
        writer = type("T", (), {})()
        writer.attempt_start_time = 0.0
        writer.read_set = (5,)
        writer.write_set = frozenset({5})
        env.run(until=10.0)
        assert cc.pre_commit(writer) is None

        reader = type("T", (), {})()
        reader.attempt_start_time = 3.0
        reader.read_set = (5, 6)
        reader.write_set = frozenset()
        env.run(until=12.0)
        with pytest.raises(RestartTransaction) as exc:
            cc.pre_commit(reader)
        assert exc.value.reason == REASON_VALIDATION
        assert cc.validation_failures == 1

    def test_commit_before_start_is_no_conflict(self, env, cc):
        writer = type("T", (), {})()
        writer.attempt_start_time = 0.0
        writer.read_set = ()
        writer.write_set = frozenset({5})
        env.run(until=2.0)
        assert cc.pre_commit(writer) is None

        late_reader = type("T", (), {})()
        late_reader.attempt_start_time = 5.0  # started after the commit
        late_reader.read_set = (5,)
        late_reader.write_set = frozenset()
        env.run(until=8.0)
        assert cc.pre_commit(late_reader) is None

    def test_unrelated_objects_do_not_conflict(self, env, cc):
        writer = type("T", (), {})()
        writer.attempt_start_time = 0.0
        writer.read_set = ()
        writer.write_set = frozenset({1})
        env.run(until=4.0)
        assert cc.pre_commit(writer) is None

        reader = type("T", (), {})()
        reader.attempt_start_time = 2.0
        reader.read_set = (2,)
        reader.write_set = frozenset()
        assert cc.pre_commit(reader) is None

    def test_write_write_without_read_overlap_passes(self, env, cc):
        # Blind writes: validation only checks the read set (backward
        # validation against committed writers).
        w1 = type("T", (), {})()
        w1.attempt_start_time = 0.0
        w1.read_set = ()
        w1.write_set = frozenset({9})
        env.run(until=1.0)
        assert cc.pre_commit(w1) is None

        w2 = type("T", (), {})()
        w2.attempt_start_time = 0.5
        w2.read_set = ()
        w2.write_set = frozenset({9})
        env.run(until=2.0)
        assert cc.pre_commit(w2) is None

    def test_abort_keeps_no_state(self, cc, make_tx):
        t = make_tx()
        cc.abort(t)  # must not raise
