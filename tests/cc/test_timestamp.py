"""Unit tests for Basic Timestamp Ordering."""

import pytest

from repro.cc import (
    REASON_TIMESTAMP,
    BasicTimestampOrderingCC,
    EngineHooks,
    RestartTransaction,
)
from repro.des import Environment


class CountingHooks(EngineHooks):
    def __init__(self):
        self.blocks = 0

    def count_block(self, tx):
        self.blocks += 1


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def hooks():
    return CountingHooks()


@pytest.fixture
def cc(env, hooks):
    return BasicTimestampOrderingCC().attach(env, hooks)


def stamped(make_tx, ts, writes=()):
    tx = make_tx()
    tx.cc_timestamp = (float(ts), tx.id)
    tx.write_set = frozenset(writes)
    tx.to_skipped_writes = set()
    return tx


class TestReads:
    def test_fresh_object_read_ok(self, cc, make_tx):
        t = stamped(make_tx, 5)
        cc.begin(t)
        assert cc.read_request(t, 1) is None

    def test_read_behind_committed_write_restarts(self, cc, make_tx):
        writer = stamped(make_tx, 10, writes={1})
        cc.begin(writer)
        assert cc.write_request(writer, 1) is None
        assert cc.pre_commit(writer) is None
        old_reader = stamped(make_tx, 5)
        cc.begin(old_reader)
        with pytest.raises(RestartTransaction) as exc:
            cc.read_request(old_reader, 1)
        assert exc.value.reason == REASON_TIMESTAMP

    def test_read_waits_for_earlier_pending_prewrite(self, cc, hooks, make_tx):
        writer = stamped(make_tx, 5, writes={1})
        cc.begin(writer)
        assert cc.write_request(writer, 1) is None  # pending prewrite ts=5
        reader = stamped(make_tx, 8)
        cc.begin(reader)
        event = cc.read_request(reader, 1)
        assert event is not None
        assert hooks.blocks == 1
        # writer commits: the waiter is woken and the re-issued read passes.
        assert cc.pre_commit(writer) is None
        assert event.triggered
        assert cc.read_request(reader, 1) is None

    def test_read_does_not_wait_for_later_prewrite(self, cc, make_tx):
        writer = stamped(make_tx, 20, writes={1})
        cc.begin(writer)
        cc.write_request(writer, 1)
        reader = stamped(make_tx, 8)
        cc.begin(reader)
        assert cc.read_request(reader, 1) is None

    def test_read_released_by_writer_abort(self, cc, make_tx):
        writer = stamped(make_tx, 5, writes={1})
        cc.begin(writer)
        cc.write_request(writer, 1)
        reader = stamped(make_tx, 8)
        cc.begin(reader)
        event = cc.read_request(reader, 1)
        cc.abort(writer)
        assert event.triggered
        assert cc.read_request(reader, 1) is None


class TestWrites:
    def test_write_behind_committed_read_restarts(self, cc, make_tx):
        reader = stamped(make_tx, 10)
        cc.begin(reader)
        assert cc.read_request(reader, 1) is None
        old_writer = stamped(make_tx, 5, writes={1})
        cc.begin(old_writer)
        with pytest.raises(RestartTransaction):
            cc.write_request(old_writer, 1)

    def test_write_behind_committed_write_restarts(self, cc, make_tx):
        w_new = stamped(make_tx, 10, writes={1})
        cc.begin(w_new)
        cc.write_request(w_new, 1)
        cc.pre_commit(w_new)
        w_old = stamped(make_tx, 5, writes={1})
        cc.begin(w_old)
        with pytest.raises(RestartTransaction):
            cc.write_request(w_old, 1)

    def test_thomas_write_rule_skips_instead(self, env, hooks, make_tx):
        cc = BasicTimestampOrderingCC(thomas_write_rule=True).attach(
            env, hooks
        )
        w_new = stamped(make_tx, 10, writes={1})
        cc.begin(w_new)
        cc.write_request(w_new, 1)
        cc.pre_commit(w_new)
        w_old = stamped(make_tx, 5, writes={1})
        cc.begin(w_old)
        assert cc.write_request(w_old, 1) is None
        assert cc.pre_commit(w_old) is None
        # The skip is recorded in CC units; the engine maps it onto the
        # object-level install set.
        assert w_old.to_skipped_writes == {1}

    def test_install_race_restarts_without_thomas(self, cc, make_tx):
        # w_old prewrites first, w_new commits first: w_old must restart
        # at install time.
        w_old = stamped(make_tx, 5, writes={1})
        cc.begin(w_old)
        assert cc.write_request(w_old, 1) is None
        w_new = stamped(make_tx, 10, writes={1})
        cc.begin(w_new)
        assert cc.write_request(w_new, 1) is None
        assert cc.pre_commit(w_new) is None
        with pytest.raises(RestartTransaction):
            cc.pre_commit(w_old)

    def test_clean_install_skips_nothing(self, cc, make_tx):
        w = stamped(make_tx, 5, writes={1, 2})
        cc.begin(w)
        cc.write_request(w, 1)
        cc.write_request(w, 2)
        cc.pre_commit(w)
        assert w.to_skipped_writes == set()

    def test_serial_key_is_timestamp(self, cc, make_tx):
        w = stamped(make_tx, 5)
        cc.begin(w)
        assert cc.serial_key(w) == w.cc_timestamp
