"""The open-system stability detector: pure arithmetic, pinned edges."""

import pytest

from repro.stats import assess_stability
from repro.stats.stability import BACKLOG_FLOOR, DRAIN_THRESHOLD


class TestVerdict:
    def test_draining_run_is_stable(self):
        report = assess_stability(1000, 990, 100.0, mpl=10)
        assert not report.saturated
        assert report.in_system == 10
        assert report.drain_ratio == pytest.approx(0.99)

    def test_diverging_run_is_saturated(self):
        report = assess_stability(2000, 500, 100.0, mpl=10)
        assert report.saturated
        assert report.arrival_rate == pytest.approx(20.0)
        assert report.completion_rate == pytest.approx(5.0)

    def test_full_admission_queue_alone_is_not_saturation(self):
        # Backlog of 2*mpl exactly: a full-but-draining queue.
        report = assess_stability(10_000, 10_000 - 2 * 100, 100.0,
                                  mpl=100)
        assert not report.saturated

    def test_startup_transient_below_floor_is_not_saturation(self):
        # Tiny absolute backlog with a terrible drain ratio: too early
        # to call.
        report = assess_stability(60, 20, 1.0, mpl=2)
        assert report.in_system == 40 < BACKLOG_FLOOR
        assert not report.saturated

    def test_large_backlog_with_good_drain_is_not_saturation(self):
        submitted = 100_000
        completed = int(submitted * (DRAIN_THRESHOLD + 0.01))
        report = assess_stability(submitted, completed, 100.0, mpl=10)
        assert report.in_system > BACKLOG_FLOOR
        assert not report.saturated


class TestEdges:
    def test_empty_window_is_trivially_stable(self):
        report = assess_stability(0, 0, 0.0, mpl=5)
        assert not report.saturated
        assert report.arrival_rate == 0.0
        assert report.drain_ratio == 1.0

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError, match="elapsed"):
            assess_stability(1, 1, -1.0, mpl=5)

    def test_completions_cannot_exceed_submissions(self):
        with pytest.raises(ValueError, match="exceeds"):
            assess_stability(5, 6, 1.0, mpl=5)


class TestSerialization:
    def test_as_dict_round_trips_every_field(self):
        report = assess_stability(100, 90, 10.0, mpl=5)
        payload = report.as_dict()
        assert payload["submitted"] == 100
        assert payload["completed"] == 90
        assert payload["in_system"] == 10
        assert payload["saturated"] is False
        assert set(payload) == {
            "submitted", "completed", "elapsed", "arrival_rate",
            "completion_rate", "in_system", "drain_ratio", "saturated",
        }

    def test_describe_names_the_verdict(self):
        assert "SATURATED" in assess_stability(
            2000, 500, 100.0, mpl=10
        ).describe()
        assert "stable" in assess_stability(
            100, 99, 10.0, mpl=10
        ).describe()
