"""Tests for Student-t quantiles and confidence intervals."""

import math

import pytest
from scipy.stats import t as scipy_t

from repro.stats import ConfidenceInterval, t_quantile
from repro.stats.confidence import _T_TABLE, interval_from_samples


class TestTQuantile:
    @pytest.mark.parametrize("confidence", [0.90, 0.95, 0.99])
    @pytest.mark.parametrize("df", [1, 2, 5, 10, 19, 30, 100, 500])
    def test_matches_scipy(self, confidence, df):
        expected = float(scipy_t.ppf(0.5 + confidence / 2.0, df))
        assert t_quantile(confidence, df) == pytest.approx(expected, rel=1e-6)

    def test_table_fallback_close_to_scipy(self):
        # Validate the embedded table itself (used when scipy is absent).
        for confidence, rows in _T_TABLE.items():
            for df, value in rows.items():
                if df is math.inf:
                    continue
                expected = float(scipy_t.ppf(0.5 + confidence / 2.0, df))
                assert value == pytest.approx(expected, abs=5e-3)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            t_quantile(1.5, 10)
        with pytest.raises(ValueError):
            t_quantile(0.0, 10)

    def test_rejects_bad_df(self):
        with pytest.raises(ValueError):
            t_quantile(0.9, 0)


class TestConfidenceInterval:
    def test_bounds(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0, confidence=0.9, n=20)
        assert ci.low == 8.0
        assert ci.high == 12.0
        assert ci.contains(9.0)
        assert not ci.contains(12.5)
        assert ci.relative_half_width == pytest.approx(0.2)

    def test_zero_mean_relative_width(self):
        ci = ConfidenceInterval(mean=0.0, half_width=1.0, confidence=0.9, n=5)
        assert ci.relative_half_width == math.inf
        exact = ConfidenceInterval(mean=0.0, half_width=0.0, confidence=0.9, n=5)
        assert exact.relative_half_width == 0.0

    def test_str_shows_level(self):
        ci = ConfidenceInterval(mean=1.0, half_width=0.1, confidence=0.9, n=20)
        assert "90%" in str(ci)


class TestIntervalFromSamples:
    def test_single_sample_infinite_width(self):
        ci = interval_from_samples([4.0])
        assert ci.mean == 4.0
        assert ci.half_width == math.inf

    def test_identical_samples_zero_width(self):
        ci = interval_from_samples([2.0] * 10)
        assert ci.mean == 2.0
        assert ci.half_width == 0.0

    def test_known_case(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        ci = interval_from_samples(samples, confidence=0.95)
        # mean 3, sample std sqrt(2.5), se = sqrt(0.5), t_{4,0.975}=2.776
        assert ci.mean == pytest.approx(3.0)
        assert ci.half_width == pytest.approx(2.776 * math.sqrt(0.5), rel=1e-3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            interval_from_samples([])
