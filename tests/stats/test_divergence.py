"""Validation-report divergence math (repro.stats.divergence)."""

import math

import pytest

from repro.stats import (
    DivergenceSummary,
    abs_relative_error,
    log_ratio,
    median,
    summarize_divergence,
)


class TestAbsRelativeError:
    def test_exact_match_is_zero(self):
        assert abs_relative_error(5.0, 5.0) == 0.0

    def test_overprediction(self):
        assert abs_relative_error(6.0, 5.0) == pytest.approx(0.2)

    def test_underprediction_same_magnitude(self):
        assert abs_relative_error(4.0, 5.0) == pytest.approx(0.2)

    def test_zero_actual_zero_predicted(self):
        assert abs_relative_error(0.0, 0.0) == 0.0

    def test_zero_actual_nonzero_predicted_is_inf(self):
        assert abs_relative_error(1.0, 0.0) == math.inf

    def test_negative_actual_uses_magnitude(self):
        assert abs_relative_error(-4.0, -5.0) == pytest.approx(0.2)


class TestLogRatio:
    def test_symmetric_in_direction(self):
        up = log_ratio(2.0, 1.0)
        down = log_ratio(1.0, 2.0)
        assert up == pytest.approx(-down)

    def test_exact_match_is_zero(self):
        assert log_ratio(3.0, 3.0) == 0.0

    def test_nonpositive_predicted_raises(self):
        with pytest.raises(ValueError, match="positive"):
            log_ratio(0.0, 1.0)

    def test_nonpositive_actual_raises(self):
        with pytest.raises(ValueError, match="positive"):
            log_ratio(1.0, -2.0)


class TestMedian:
    def test_odd_count(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_count_averages_middle_pair(self):
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_single_value(self):
        assert median([7.0]) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            median([])


class TestSummarizeDivergence:
    def test_summary_fields(self):
        summary = summarize_divergence([0.1, 0.3, 0.2])
        assert summary == DivergenceSummary(
            count=3, median=0.2, mean=pytest.approx(0.2), max=0.3
        )

    def test_accepts_generator(self):
        summary = summarize_divergence(x / 10 for x in range(1, 5))
        assert summary.count == 4
        assert summary.median == pytest.approx(0.25)
        assert summary.max == pytest.approx(0.4)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            summarize_divergence([])

    def test_as_dict(self):
        summary = summarize_divergence([0.5])
        assert summary.as_dict() == {
            "count": 1, "median": 0.5, "mean": 0.5, "max": 0.5,
        }
