"""Unit and property tests for the Welford running-statistics accumulator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import Welford

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def make(values):
    w = Welford()
    for v in values:
        w.add(v)
    return w


class TestBasics:
    def test_empty(self):
        w = Welford()
        assert w.count == 0
        assert w.mean == 0.0
        assert w.variance == 0.0
        assert w.std == 0.0
        assert len(w) == 0

    def test_single_value(self):
        w = make([3.5])
        assert w.mean == 3.5
        assert w.variance == 0.0
        assert w.min == 3.5
        assert w.max == 3.5

    def test_known_values(self):
        w = make([2.0, 4.0, 6.0])
        assert w.mean == pytest.approx(4.0)
        assert w.variance == pytest.approx(4.0)
        assert w.population_variance == pytest.approx(8.0 / 3.0)
        assert w.std == pytest.approx(2.0)

    def test_min_max(self):
        w = make([5.0, -1.0, 3.0])
        assert w.min == -1.0
        assert w.max == 5.0

    def test_repr_mentions_count(self):
        assert "count=2" in repr(make([1.0, 2.0]))


class TestMerge:
    def test_merge_empty_into_populated(self):
        w = make([1.0, 2.0])
        w.merge(Welford())
        assert w.count == 2
        assert w.mean == pytest.approx(1.5)

    def test_merge_populated_into_empty(self):
        w = Welford()
        w.merge(make([1.0, 2.0]))
        assert w.count == 2
        assert w.mean == pytest.approx(1.5)

    @given(
        st.lists(finite_floats, min_size=1, max_size=30),
        st.lists(finite_floats, min_size=1, max_size=30),
    )
    def test_merge_equals_concatenation(self, xs, ys):
        merged = make(xs)
        merged.merge(make(ys))
        direct = make(xs + ys)
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, abs=1e-6)
        assert merged.variance == pytest.approx(
            direct.variance, rel=1e-6, abs=1e-6
        )
        assert merged.min == direct.min
        assert merged.max == direct.max


class TestAgainstNumpy:
    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_matches_numpy(self, xs):
        w = make(xs)
        assert w.mean == pytest.approx(float(np.mean(xs)), abs=1e-6)
        assert w.variance == pytest.approx(
            float(np.var(xs, ddof=1)), rel=1e-6, abs=1e-6
        )

    def test_numerical_stability_large_offset(self):
        # Classic catastrophic-cancellation case for naive sum-of-squares.
        base = 1e9
        xs = [base + d for d in (4.0, 7.0, 13.0, 16.0)]
        w = make(xs)
        assert w.variance == pytest.approx(30.0, rel=1e-6)


class TestSnapshotDelta:
    def test_delta_reconstructs_tail(self):
        w = Welford()
        for v in [1.0, 2.0, 3.0]:
            w.add(v)
        snap = w.snapshot()
        for v in [10.0, 20.0]:
            w.add(v)
        delta = w.delta_since(snap)
        assert delta.count == 2
        assert delta.mean == pytest.approx(15.0)
        assert delta.variance == pytest.approx(50.0)

    def test_delta_empty_window(self):
        w = make([1.0, 2.0])
        delta = w.delta_since(w.snapshot())
        assert delta.count == 0
        assert delta.mean == 0.0

    def test_delta_rejects_future_snapshot(self):
        w = make([1.0])
        snap = w.snapshot()
        snap.add(2.0)
        with pytest.raises(ValueError):
            w.delta_since(snap)

    @given(
        st.lists(finite_floats, min_size=0, max_size=40),
        st.lists(finite_floats, min_size=1, max_size=40),
    )
    def test_delta_matches_direct(self, head, tail):
        w = make(head)
        snap = w.snapshot()
        for v in tail:
            w.add(v)
        delta = w.delta_since(snap)
        direct = make(tail)
        assert delta.count == direct.count
        assert delta.mean == pytest.approx(direct.mean, abs=1e-4)
        assert delta.variance == pytest.approx(
            direct.variance, rel=1e-3, abs=1e-3
        )

    def test_snapshot_is_independent(self):
        w = make([1.0])
        snap = w.snapshot()
        w.add(100.0)
        assert snap.count == 1
        assert snap.mean == 1.0
