"""Tests for the modified batch-means analyzer."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import BatchMeansAnalyzer, BatchSeries


class TestBatchSeries:
    def test_mean_and_variance(self):
        s = BatchSeries("throughput")
        for v in [10.0, 12.0, 14.0]:
            s.add(v)
        assert s.mean == pytest.approx(12.0)
        assert s.variance == pytest.approx(4.0)
        assert s.std == pytest.approx(2.0)
        assert len(s) == 3

    def test_interval_single_batch(self):
        s = BatchSeries("x")
        s.add(5.0)
        ci = s.interval()
        assert ci.mean == 5.0
        assert ci.half_width == math.inf

    def test_interval_known(self):
        s = BatchSeries("x")
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            s.add(v)
        ci = s.interval(confidence=0.90)
        assert ci.mean == pytest.approx(3.0)
        # t_{4, 0.95} = 2.132, se = sqrt(2.5/5)
        assert ci.half_width == pytest.approx(
            2.132 * math.sqrt(0.5), rel=1e-3
        )

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            BatchSeries("x").interval()

    def test_lag1_autocorrelation_alternating(self):
        s = BatchSeries("x")
        for v in [1.0, -1.0] * 10:
            s.add(v)
        assert s.lag1_autocorrelation() < 0

    def test_lag1_autocorrelation_constant_is_zero(self):
        s = BatchSeries("x")
        for _ in range(5):
            s.add(7.0)
        assert s.lag1_autocorrelation() == 0.0


class TestBatchMeansAnalyzer:
    def test_warmup_batches_discarded(self):
        a = BatchMeansAnalyzer(warmup_batches=2)
        a.record({"tps": 100.0})  # warmup: transient
        a.record({"tps": 50.0})   # warmup
        a.record({"tps": 10.0})
        a.record({"tps": 12.0})
        assert a.batches_recorded == 2
        assert a.mean("tps") == pytest.approx(11.0)

    def test_zero_warmup(self):
        a = BatchMeansAnalyzer(warmup_batches=0)
        a.record({"tps": 4.0})
        assert a.mean("tps") == 4.0

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            BatchMeansAnalyzer(warmup_batches=-1)

    def test_multiple_series(self):
        a = BatchMeansAnalyzer(warmup_batches=0)
        a.record({"tps": 1.0, "resp": 10.0})
        a.record({"tps": 3.0, "resp": 30.0})
        assert a.names() == ["resp", "tps"]
        assert a.mean("tps") == pytest.approx(2.0)
        assert a.mean("resp") == pytest.approx(20.0)
        summary = a.summary()
        assert set(summary) == {"tps", "resp"}
        assert summary["tps"].n == 2

    def test_unknown_series_raises_with_hint(self):
        a = BatchMeansAnalyzer(warmup_batches=0)
        a.record({"tps": 1.0})
        with pytest.raises(KeyError, match="tps"):
            a.series("nope")

    def test_diagnostics_keys(self):
        a = BatchMeansAnalyzer(warmup_batches=0)
        for v in [1.0, 2.0, 3.0, 4.0]:
            a.record({"tps": v})
        assert set(a.diagnostics()) == {"tps"}

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3),
            min_size=3,
            max_size=40,
        )
    )
    def test_interval_covers_sample_mean(self, values):
        a = BatchMeansAnalyzer(warmup_batches=0, confidence=0.95)
        for v in values:
            a.record({"x": v})
        ci = a.interval("x")
        mean = sum(values) / len(values)
        assert ci.contains(mean)


class TestExplicitConfidence:
    """`interval` must honor an explicit confidence and reject junk.

    The old code used ``confidence or self.confidence``, so an explicit
    falsy value (0, 0.0) was silently replaced by the default instead
    of being rejected.
    """

    def build(self, confidence=0.90):
        a = BatchMeansAnalyzer(warmup_batches=0, confidence=confidence)
        for v in [10.0, 12.0, 14.0, 11.0]:
            a.record({"tps": v})
        return a

    def test_explicit_confidence_is_used(self):
        a = self.build(confidence=0.95)
        narrow = a.interval("tps", confidence=0.90)
        wide = a.interval("tps", confidence=0.99)
        assert narrow.confidence == 0.90
        assert wide.confidence == 0.99
        assert narrow.half_width < wide.half_width

    def test_none_falls_back_to_default(self):
        a = self.build(confidence=0.95)
        assert a.interval("tps").confidence == 0.95
        assert a.interval("tps", confidence=None).confidence == 0.95

    @pytest.mark.parametrize("bad", [0, 0.0, 1.0, 1.5, -0.1])
    def test_invalid_explicit_confidence_rejected(self, bad):
        a = self.build()
        with pytest.raises(ValueError, match="confidence"):
            a.interval("tps", confidence=bad)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_constructor_confidence_rejected(self, bad):
        with pytest.raises(ValueError, match="confidence"):
            BatchMeansAnalyzer(confidence=bad)
