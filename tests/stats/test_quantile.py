"""Tests for the P² streaming quantile estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import P2Quantile


class TestBasics:
    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty(self):
        assert P2Quantile(0.5).value == 0.0

    def test_exact_for_few_observations(self):
        q = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            q.add(x)
        assert q.value == 3.0

    def test_count(self):
        q = P2Quantile(0.9)
        for x in range(10):
            q.add(float(x))
        assert q.count == 10

    def test_repr(self):
        q = P2Quantile(0.95)
        q.add(1.0)
        assert "0.95" in repr(q)


class TestAccuracy:
    def test_median_of_uniform_sequence(self):
        q = P2Quantile(0.5)
        for x in range(1, 1001):
            q.add(float(x))
        assert q.value == pytest.approx(500, rel=0.05)

    def test_p95_of_uniform_sequence(self):
        import random

        rng = random.Random(1)
        q = P2Quantile(0.95)
        values = [rng.random() for _ in range(20_000)]
        for x in values:
            q.add(x)
        assert q.value == pytest.approx(
            float(np.percentile(values, 95)), abs=0.02
        )

    def test_median_of_exponential(self):
        import random

        rng = random.Random(2)
        q = P2Quantile(0.5)
        values = [rng.expovariate(1.0) for _ in range(20_000)]
        for x in values:
            q.add(x)
        assert q.value == pytest.approx(
            float(np.percentile(values, 50)), rel=0.05
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e4, max_value=1e4),
            min_size=50,
            max_size=500,
        ),
        st.sampled_from([0.25, 0.5, 0.9]),
    )
    def test_estimate_within_observed_range(self, values, p):
        q = P2Quantile(p)
        for x in values:
            q.add(x)
        assert min(values) <= q.value <= max(values)

    def test_ordering_of_quantiles(self):
        import random

        rng = random.Random(3)
        q50, q95 = P2Quantile(0.5), P2Quantile(0.95)
        for _ in range(5000):
            x = rng.expovariate(0.5)
            q50.add(x)
            q95.add(x)
        assert q50.value < q95.value


class TestModelIntegration:
    def test_percentiles_in_run_totals(self):
        from repro.core import (
            RunConfig,
            SimulationParameters,
            run_simulation,
        )

        params = SimulationParameters(
            db_size=200, min_size=4, max_size=8, write_prob=0.25,
            num_terms=10, mpl=5, ext_think_time=0.5,
            obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
        )
        result = run_simulation(
            params, "blocking",
            RunConfig(batches=3, batch_time=10.0, warmup_batches=0,
                      seed=2),
        )
        p50 = result.totals["response_time_p50"]
        p95 = result.totals["response_time_p95"]
        mean = result.totals["response_time_overall_mean"]
        assert 0 < p50 <= p95
        assert p50 < mean * 2


class TestSmallSampleRegression:
    """The pre-transition ``value`` path, pinned observation by observation.

    Regression suite for the <5-observation estimate: before the P^2
    markers exist the estimator must return the *exact* sample quantile
    of what it has seen (clamped into range), never an interpolation
    artifact, and reading ``value`` must not disturb the estimator.
    """

    def test_single_observation_for_any_quantile(self):
        for p in (0.01, 0.5, 0.99):
            q = P2Quantile(p)
            q.add(42.0)
            assert q.value == 42.0

    def test_extreme_quantiles_clamp_to_min_and_max(self):
        low, high = P2Quantile(0.01), P2Quantile(0.99)
        for x in (30.0, 10.0, 20.0, 40.0):
            low.add(x)
            high.add(x)
        assert low.value == 10.0
        assert high.value == 40.0

    def test_exact_sample_quantile_for_each_prefix(self):
        # value == ordered[round(p * (n - 1))] for every n in 1..4.
        observations = [7.0, 3.0, 9.0, 1.0]
        q = P2Quantile(0.5)
        for n, x in enumerate(observations, start=1):
            q.add(x)
            ordered = sorted(observations[:n])
            index = min(n - 1, int(round(0.5 * (n - 1))))
            assert q.value == ordered[index]

    def test_reading_value_does_not_disturb_the_estimator(self):
        probed, untouched = P2Quantile(0.5), P2Quantile(0.5)
        for x in (5.0, 1.0, 4.0, 2.0, 3.0, 6.0, 0.5):
            probed.add(x)
            probed.value  # read between adds, across the transition
            untouched.add(x)
        # Probing ``value`` between adds changed nothing.
        assert probed.value == untouched.value
        assert probed.count == untouched.count

    def test_transition_at_five_observations_is_seamless(self):
        q = P2Quantile(0.5)
        for x in (5.0, 1.0, 4.0, 2.0):
            q.add(x)
        before = q.value  # exact path: median-ish of four
        q.add(3.0)
        # Markers initialize to the sorted sample; the median marker is
        # the exact sample median.
        assert q.value == 3.0
        assert before in (2.0, 4.0)

    def test_repr_works_before_markers_exist(self):
        q = P2Quantile(0.5)
        assert "count=0" in repr(q)
        q.add(2.5)
        assert "2.5" in repr(q)
