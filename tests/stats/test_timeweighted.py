"""Tests for time-weighted (piecewise-constant) statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import TimeWeighted


class TestTimeWeighted:
    def test_constant_signal(self):
        tw = TimeWeighted(initial=3.0, start_time=0.0)
        assert tw.time_average(now=10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        tw = TimeWeighted(initial=0.0, start_time=0.0)
        tw.update(2.0, now=1.0)
        tw.update(4.0, now=3.0)
        # areas: 0*1 + 2*2 + 4*1 = 8 over 4 time units
        assert tw.time_average(now=4.0) == pytest.approx(2.0)

    def test_add_is_relative(self):
        tw = TimeWeighted(initial=1.0, start_time=0.0)
        tw.add(2.0, now=5.0)
        assert tw.value == 3.0

    def test_empty_window_average_is_zero(self):
        tw = TimeWeighted(initial=9.0, start_time=2.0)
        assert tw.time_average(now=2.0) == 0.0

    def test_rejects_time_reversal(self):
        tw = TimeWeighted(initial=0.0, start_time=5.0)
        with pytest.raises(ValueError):
            tw.update(1.0, now=4.0)
        with pytest.raises(ValueError):
            tw.area(now=4.0)

    def test_window_average(self):
        tw = TimeWeighted(initial=1.0, start_time=0.0)
        tw.update(5.0, now=10.0)
        area_at_10 = tw.area(now=10.0)
        tw.update(7.0, now=20.0)
        # over [10, 30]: 5 for 10 units, 7 for 10 units
        assert tw.window_average(area_at_10, 10.0, now=30.0) == pytest.approx(
            6.0
        )

    def test_area_between_updates_uses_current_value(self):
        tw = TimeWeighted(initial=2.0, start_time=0.0)
        assert tw.area(now=3.0) == pytest.approx(6.0)
        # asking for area must not mutate state
        assert tw.area(now=4.0) == pytest.approx(8.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=10.0),
                st.floats(min_value=-100.0, max_value=100.0),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_average_bounded_by_extremes(self, steps):
        tw = TimeWeighted(initial=0.0, start_time=0.0)
        now = 0.0
        values = [0.0]
        for dt, value in steps:
            now += dt
            tw.update(value, now=now)
            values.append(value)
        final = now + 1.0
        avg = tw.time_average(now=final)
        assert min(values) - 1e-9 <= avg <= max(values) + 1e-9
