"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main, resolve_run
from repro.experiments.runner import DEFAULT_RUN, QUICK_RUN


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["--figure", "8"])
        assert args.figure == 8

    def test_figure_out_of_range_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--figure", "2"])

    def test_experiment_and_figure_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["--figure", "8", "--experiment", "exp3_finite"]
            )

    def test_repeatable_mpl_and_algorithm(self):
        args = build_parser().parse_args(
            ["--all", "--mpl", "5", "--mpl", "25",
             "--algorithm", "blocking"]
        )
        assert args.mpls == [5, 25]
        assert args.algorithms == ["blocking"]


class TestResolveRun:
    def test_default(self):
        args = build_parser().parse_args(["--all"])
        assert resolve_run(args) == DEFAULT_RUN

    def test_quick(self):
        args = build_parser().parse_args(["--all", "--quick"])
        assert resolve_run(args) == QUICK_RUN

    def test_overrides(self):
        args = build_parser().parse_args(
            ["--all", "--batches", "9", "--batch-time", "7.5",
             "--warmup-batches", "2", "--seed", "123"]
        )
        run = resolve_run(args)
        assert run.batches == 9
        assert run.batch_time == 7.5
        assert run.warmup_batches == 2
        assert run.seed == 123


class TestMain:
    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_figure_run_prints_report(self, capsys):
        code = main([
            "--figure", "8",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--mpl", "5",
            "--algorithm", "blocking",
            "--no-plots",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "blocking" in out

    def test_experiment_run(self, capsys):
        code = main([
            "--experiment", "exp3_finite",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--mpl", "5",
            "--algorithm", "blocking",
            "--no-plots",
        ])
        assert code == 0
        assert "Resource-Limited" in capsys.readouterr().out

    def test_csv_export(self, capsys, tmp_path):
        import csv

        path = tmp_path / "out.csv"
        code = main([
            "--figure", "8",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--mpl", "5",
            "--algorithm", "blocking",
            "--no-plots",
            "--csv", str(path),
        ])
        assert code == 0
        rows = list(csv.DictReader(path.open()))
        assert rows
        assert rows[0]["experiment"] == "exp3_finite"
        assert any(row["metric"] == "throughput" for row in rows)


class TestWorkersFlag:
    def test_default_is_sequential(self):
        args = build_parser().parse_args(["--all"])
        assert args.workers == 1

    def test_workers_parsed(self):
        args = build_parser().parse_args(["--all", "--workers", "4"])
        assert args.workers == 4

    def test_zero_means_all_cores(self):
        # 0 is accepted by the parser; run_sweep expands it.
        args = build_parser().parse_args(["--all", "--workers", "0"])
        assert args.workers == 0

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["--all", "--workers", "-2"])
