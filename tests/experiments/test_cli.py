"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main, resolve_run
from repro.experiments.runner import DEFAULT_RUN, QUICK_RUN


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["--figure", "8"])
        assert args.figure == 8

    def test_figure_out_of_range_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--figure", "2"])

    def test_experiment_and_figure_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["--figure", "8", "--experiment", "exp3_finite"]
            )

    def test_repeatable_mpl_and_algorithm(self):
        args = build_parser().parse_args(
            ["--all", "--mpl", "5", "--mpl", "25",
             "--algorithm", "blocking"]
        )
        assert args.mpls == [5, 25]
        assert args.algorithms == ["blocking"]


class TestResolveRun:
    def test_default(self):
        args = build_parser().parse_args(["--all"])
        assert resolve_run(args) == DEFAULT_RUN

    def test_quick(self):
        args = build_parser().parse_args(["--all", "--quick"])
        assert resolve_run(args) == QUICK_RUN

    def test_overrides(self):
        args = build_parser().parse_args(
            ["--all", "--batches", "9", "--batch-time", "7.5",
             "--warmup-batches", "2", "--seed", "123"]
        )
        run = resolve_run(args)
        assert run.batches == 9
        assert run.batch_time == 7.5
        assert run.warmup_batches == 2
        assert run.seed == 123


class TestMain:
    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_figure_run_prints_report(self, capsys):
        code = main([
            "--figure", "8",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--mpl", "5",
            "--algorithm", "blocking",
            "--no-plots",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "blocking" in out

    def test_experiment_run(self, capsys):
        code = main([
            "--experiment", "exp3_finite",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--mpl", "5",
            "--algorithm", "blocking",
            "--no-plots",
        ])
        assert code == 0
        assert "Resource-Limited" in capsys.readouterr().out

    def test_csv_export(self, capsys, tmp_path):
        import csv

        path = tmp_path / "out.csv"
        code = main([
            "--figure", "8",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--mpl", "5",
            "--algorithm", "blocking",
            "--no-plots",
            "--csv", str(path),
        ])
        assert code == 0
        rows = list(csv.DictReader(path.open()))
        assert rows
        assert rows[0]["experiment"] == "exp3_finite"
        assert any(row["metric"] == "throughput" for row in rows)


class TestObservabilityFlags:
    def test_defaults_are_off(self):
        args = build_parser().parse_args(["--all"])
        assert args.trace is False
        assert args.trace_out is None
        assert args.trace_kinds is None
        assert args.timeseries is None
        assert args.timeseries_csv is None

    def test_flags_parsed(self):
        args = build_parser().parse_args([
            "--all", "--trace", "--trace-out", "tr",
            "--trace-kinds", "submit,commit",
            "--timeseries", "2.5", "--timeseries-csv", "ts.csv",
        ])
        assert args.trace is True
        assert args.trace_out == "tr"
        assert args.trace_kinds == "submit,commit"
        assert args.timeseries == 2.5
        assert args.timeseries_csv == "ts.csv"

    def test_trace_option_builds_point_trace(self):
        from repro.experiments.cli import _trace_option

        args = build_parser().parse_args([
            "--all", "--trace", "--trace-out", "tr",
            "--trace-kinds", "submit, commit ,",
        ])
        trace = _trace_option(args)
        assert trace.directory == "tr"
        assert trace.kinds == ("submit", "commit")
        # Without --trace there is no trace option at all.
        assert _trace_option(build_parser().parse_args(["--all"])) is None

    def test_trace_out_requires_trace(self):
        with pytest.raises(SystemExit):
            main(["--all", "--trace-out", "tr"])

    def test_trace_kinds_requires_trace(self):
        with pytest.raises(SystemExit):
            main(["--all", "--trace-kinds", "commit"])

    def test_unknown_trace_kind_rejected(self, capsys):
        # Regression: a typo like "comit" used to pass through silently
        # and produce an empty trace; now it is a usage error that
        # names the valid kinds.
        with pytest.raises(SystemExit):
            main(["--all", "--trace", "--trace-kinds", "submit,comit"])
        err = capsys.readouterr().err
        assert "comit" in err
        assert "commit" in err  # the valid-kind list is shown

    def test_known_trace_kinds_accepted_by_validation(self):
        from repro.experiments.cli import _parse_trace_kinds
        from repro.obs.events import ALL_KINDS

        kinds = _parse_trace_kinds("submit,block,restart,commit")
        assert kinds is not None
        for kind in kinds:
            assert kind in ALL_KINDS

    def test_nonpositive_timeseries_rejected(self):
        with pytest.raises(SystemExit):
            main(["--all", "--timeseries", "0"])

    def test_timeseries_csv_requires_timeseries(self):
        with pytest.raises(SystemExit):
            main(["--all", "--timeseries-csv", "ts.csv"])

    def test_single_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["--single", "no_such_algorithm"])

    def test_single_excludes_experiment_selection(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--single", "blocking", "--all"])


class TestRegistryNameValidation:
    def test_inject_typo_gets_did_you_mean(self, capsys):
        # Regression: --inject used argparse choices, whose error is a
        # bare list; now a typo suggests the closest scenario name.
        with pytest.raises(SystemExit):
            main(["--all", "--inject", "disk_strom"])
        err = capsys.readouterr().err
        assert "disk_strom" in err
        assert "did you mean 'disk_storm'?" in err
        assert "disk_crash" in err  # full choice list still shown

    def test_inject_valid_name_accepted_by_parser(self):
        args = build_parser().parse_args(["--all", "--inject", "disk_storm"])
        assert args.inject == "disk_storm"

    def test_resource_model_typo_gets_did_you_mean(self, capsys):
        with pytest.raises(SystemExit):
            main(["--all", "--resource-model", "bufered"])
        err = capsys.readouterr().err
        assert "did you mean 'buffered'?" in err
        assert "classic" in err

    def test_resource_model_hopeless_typo_lists_choices(self, capsys):
        with pytest.raises(SystemExit):
            main(["--all", "--resource-model", "zzz"])
        err = capsys.readouterr().err
        assert "did you mean" not in err
        assert "classic" in err and "skewed_disks" in err

    def test_resource_model_defaults_to_none(self):
        assert build_parser().parse_args(["--all"]).resource_model is None

    def test_figure_run_with_buffered_overlay(self, capsys):
        code = main([
            "--figure", "8",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--mpl", "5",
            "--algorithm", "blocking",
            "--no-plots",
            "--resource-model", "buffered",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[resource model: buffered" in out
        assert "Buffer pool" in out
        assert "hit ratio" in out

    def test_single_run_with_resource_model(self, capsys):
        code = main([
            "--single", "blocking", "--mpl", "5",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--resource-model", "buffered",
        ])
        assert code == 0
        assert "whole run: commits=" in capsys.readouterr().out


class TestSingleRun:
    def test_single_run_with_observability(self, capsys, tmp_path):
        import csv

        trace_dir = tmp_path / "traces"
        ts_csv = tmp_path / "ts.csv"
        code = main([
            "--single", "blocking", "--mpl", "5",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--trace", "--trace-out", str(trace_dir),
            "--trace-kinds", "submit,restart,commit",
            "--timeseries", "1", "--timeseries-csv", str(ts_csv),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "blocking" in captured.out
        assert "whole run: commits=" in captured.out
        assert "[trace:" in captured.err
        assert "[timeseries:" in captured.err

        trace_path = trace_dir / "single.blocking.mpl005.jsonl"
        assert trace_path.exists()
        from repro.obs import read_jsonl

        events = read_jsonl(str(trace_path))
        assert events
        assert {e["kind"] for e in events} <= {"submit", "restart", "commit"}

        rows = list(csv.DictReader(ts_csv.open()))
        assert rows
        assert rows[0]["time"] == "0.0"
        assert "active" in rows[0] and "commits" in rows[0]


class TestFigureObservability:
    def test_figure_run_writes_traces_and_timeseries(self, capsys, tmp_path):
        import csv

        trace_dir = tmp_path / "traces"
        ts_csv = tmp_path / "ts.csv"
        code = main([
            "--figure", "8",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--mpl", "5",
            "--algorithm", "blocking",
            "--no-plots",
            "--trace", "--trace-out", str(trace_dir),
            "--timeseries", "1", "--timeseries-csv", str(ts_csv),
        ])
        assert code == 0
        traces = sorted(p.name for p in trace_dir.iterdir())
        assert traces == ["exp3_finite.blocking.mpl005.jsonl"]

        rows = list(csv.DictReader(ts_csv.open()))
        assert rows
        assert rows[0]["experiment"] == "exp3_finite"
        assert rows[0]["algorithm"] == "blocking"
        assert rows[0]["mpl"] == "5"

        # The conflict-ratio diagnostics table rides along in every
        # sweep report.
        assert "blocks/commit" in capsys.readouterr().out
    def test_default_is_sequential(self):
        args = build_parser().parse_args(["--all"])
        assert args.workers == 1

    def test_workers_parsed(self):
        args = build_parser().parse_args(["--all", "--workers", "4"])
        assert args.workers == 4

    def test_zero_means_all_cores(self):
        # 0 is accepted by the parser; run_sweep expands it.
        args = build_parser().parse_args(["--all", "--workers", "0"])
        assert args.workers == 0

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["--all", "--workers", "-2"])


class TestBackendFlags:
    """--backend / --replications / --invariants spot wiring."""

    def test_defaults(self):
        args = build_parser().parse_args(["--all"])
        assert args.backend == "classic"
        assert args.replications == 1

    def test_batched_backend_accepted(self):
        args = build_parser().parse_args(
            ["--all", "--backend", "batched", "--replications", "4"]
        )
        assert args.backend == "batched"
        assert args.replications == 4

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--all", "--backend", "turbo"])

    def test_replications_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["--all", "--replications", "0"])

    def test_negative_retries_rejected(self):
        with pytest.raises(SystemExit):
            main(["--all", "--retries", "-1"])

    def test_batched_refuses_workers(self):
        with pytest.raises(SystemExit):
            main(["--all", "--backend", "batched", "--workers", "2"])

    def test_batched_refuses_trace_and_timeseries(self):
        with pytest.raises(SystemExit):
            main(["--all", "--backend", "batched", "--trace"])
        with pytest.raises(SystemExit):
            main(["--all", "--backend", "batched", "--timeseries", "1"])

    def test_batched_refuses_single(self):
        with pytest.raises(SystemExit):
            main(["--single", "blocking", "--backend", "batched"])

    def test_spot_invariants_require_batched(self):
        with pytest.raises(SystemExit):
            main(["--all", "--invariants", "spot"])

    def test_batched_replicated_sweep_runs(self, capsys):
        code = main([
            "--figure", "8",
            "--batches", "1", "--batch-time", "3", "--warmup-batches", "0",
            "--mpl", "5",
            "--algorithm", "blocking",
            "--backend", "batched", "--replications", "2",
            "--invariants", "spot",
            "--no-plots",
        ])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out


class TestSurrogateCommands:
    """The analytic-surrogate ``calibrate``/``explore`` commands."""

    def test_calibrate_parses(self):
        args = build_parser().parse_args(["calibrate", "--quick"])
        assert args.command == "calibrate"

    def test_explore_parses_with_options(self):
        args = build_parser().parse_args([
            "explore", "--space", "smoke", "--spot-checks", "3",
            "--uncertainty-threshold", "0.5",
        ])
        assert args.command == "explore"
        assert args.space == "smoke"
        assert args.spot_checks == 3
        assert args.uncertainty_threshold == 0.5

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["calibrat"])

    def test_command_excludes_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["calibrate", "--experiment", "exp3_finite"]
            )

    def test_command_excludes_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--figure", "8"])

    def test_surrogate_flags_require_command(self):
        with pytest.raises(SystemExit):
            main(["--all", "--out", "report.json"])
        with pytest.raises(SystemExit):
            main(["--figure", "8", "--spot-checks", "1"])

    def test_no_fit_is_calibrate_only(self):
        with pytest.raises(SystemExit):
            main(["explore", "--no-fit"])

    def test_explore_flags_are_explore_only(self):
        with pytest.raises(SystemExit):
            main(["calibrate", "--space", "smoke"])
        with pytest.raises(SystemExit):
            main(["calibrate", "--spot-checks", "1"])

    def test_threshold_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["explore", "--uncertainty-threshold", "0"])

    def test_spot_checks_must_be_non_negative(self):
        with pytest.raises(SystemExit):
            main(["explore", "--spot-checks", "-1"])

    def test_explore_smoke_runs(self, capsys, tmp_path):
        out = tmp_path / "exploration.json"
        code = main(["explore", "--space", "smoke", "--out", str(out)])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "explored" in captured
        assert "flagged" in captured
