"""Tests for CSV export of sweep results."""

import csv
import io

import pytest

from repro.core import RunConfig, SimulationParameters
from repro.experiments import (
    ExperimentConfig,
    rows_to_csv_text,
    run_sweep,
    sweep_to_rows,
    write_csv,
)

TINY_RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=0, seed=41)


@pytest.fixture(scope="module")
def sweep():
    params = SimulationParameters(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )
    config = ExperimentConfig(
        experiment_id="export-test",
        title="Export test",
        figures=(8, 9),
        params=params,
        algorithms=("blocking", "optimistic"),
        mpls=(2, 5),
        metrics=("throughput", "disk_util"),
    )
    return run_sweep(config, run=TINY_RUN)


class TestSweepToRows:
    def test_row_count(self, sweep):
        rows = sweep_to_rows(sweep)
        # 2 algorithms x 2 mpls x 2 metrics
        assert len(rows) == 8

    def test_row_contents(self, sweep):
        rows = sweep_to_rows(sweep)
        row = rows[0]
        assert row["experiment"] == "export-test"
        assert row["figures"] == "8+9"
        assert row["algorithm"] in ("blocking", "optimistic")
        assert row["metric"] in ("throughput", "disk_util")
        assert row["ci_low"] <= row["mean"] <= row["ci_high"]
        assert row["confidence"] == 0.90
        assert row["batches"] == 2

    def test_metric_restriction(self, sweep):
        rows = sweep_to_rows(sweep, metrics=["throughput"])
        assert len(rows) == 4
        assert all(row["metric"] == "throughput" for row in rows)


class TestWriteCsv:
    def test_to_file_object(self, sweep):
        buffer = io.StringIO()
        count = write_csv(sweep, buffer)
        assert count == 8
        parsed = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert len(parsed) == 8
        assert float(parsed[0]["mean"]) >= 0

    def test_to_path(self, sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        write_csv(sweep, str(path))
        parsed = list(csv.DictReader(path.open()))
        assert len(parsed) == 8

    def test_csv_text_round_trip(self, sweep):
        text = rows_to_csv_text(sweep)
        parsed = list(csv.DictReader(io.StringIO(text)))
        means = {
            (row["algorithm"], int(row["mpl"]), row["metric"]):
                float(row["mean"])
            for row in parsed
        }
        direct = sweep.result("blocking", 5).mean("throughput")
        assert means[("blocking", 5, "throughput")] == pytest.approx(
            direct
        )
