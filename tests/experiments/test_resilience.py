"""Tests for resilient sweep execution: watchdog, retry, checkpoint/resume.

Acceptance bar: a sweep with an injected stall completes with that
point marked ``failed`` after deadline+retries and all other points
``ok``; a killed-then-resumed sweep re-runs only the missing points.
"""

import json
import os

import pytest

from repro.cc import ConcurrencyControl, register_algorithm
from repro.core import RunConfig, SimulationParameters
from repro.experiments import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
    CheckpointMismatchError,
    ExperimentConfig,
    PointDeadlineExceeded,
    SimulationStalledError,
    SweepCheckpoint,
    load_sweep,
    run_sweep,
    save_sweep,
    sweep_report,
)
from repro.experiments import runner as runner_module
from repro.experiments.persistence import decode_checkpoint_line
from repro.experiments.runner import _PointWatchdog

TINY_RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=0, seed=11)


class StallForeverCC(ConcurrencyControl):
    """Test stub: blocks every transaction forever (guaranteed stall)."""

    name = "test_stall_forever"

    def read_request(self, tx, obj):
        return self.env.event()  # never fires


register_algorithm(StallForeverCC)


def tiny_params():
    return SimulationParameters(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )


def tiny_config(**overrides):
    defaults = dict(
        experiment_id="tiny",
        title="Tiny test sweep",
        figures=(0,),
        params=tiny_params(),
        algorithms=("blocking",),
        mpls=(2, 5),
        metrics=("throughput",),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestWatchdogUnit:
    class _FakeModel:
        def __init__(self):
            self.commits = 0
            self.now = 0.0

        @property
        def metrics(self):
            outer = self

            class _M:
                class commits:
                    pass
            _M.commits.total = outer.commits
            return _M

        @property
        def env(self):
            outer = self

            class _E:
                now = outer.now
            return _E

    def test_stall_trips_after_quiet_simulated_window(self):
        watchdog = _PointWatchdog(stall_timeout=10.0)
        model = self._FakeModel()
        model.now = 5.0
        watchdog(model)  # quiet for 5 sim-seconds: fine
        model.now = 10.0
        with pytest.raises(SimulationStalledError):
            watchdog(model)

    def test_commits_reset_the_stall_clock(self):
        watchdog = _PointWatchdog(stall_timeout=10.0)
        model = self._FakeModel()
        model.now, model.commits = 8.0, 3
        watchdog(model)  # progress observed at t=8
        model.now = 17.0
        watchdog(model)  # only 9 quiet sim-seconds: fine
        model.now = 18.0
        with pytest.raises(SimulationStalledError):
            watchdog(model)

    def test_deadline_uses_wall_clock(self):
        ticks = iter([0.0, 1.0, 3.5])
        watchdog = _PointWatchdog(deadline=3.0, clock=lambda: next(ticks))
        model = self._FakeModel()
        watchdog(model)  # 1.0s elapsed: fine
        with pytest.raises(PointDeadlineExceeded):
            watchdog(model)  # 3.5s elapsed


class TestStalledSweep:
    def test_stalled_point_fails_others_ok(self):
        config = tiny_config(
            algorithms=("blocking", "test_stall_forever")
        )
        sweep = run_sweep(config, run=TINY_RUN, stall_timeout=4.0,
                          retries=1)
        for mpl in (2, 5):
            assert sweep.status("blocking", mpl).status == STATUS_OK
            failed = sweep.status("test_stall_forever", mpl)
            assert failed.status == STATUS_FAILED
            assert failed.attempts == 2  # deadline + retries exhausted
            assert "SimulationStalledError" in failed.error
        assert sweep.failed_points() == [
            ("test_stall_forever", 2), ("test_stall_forever", 5),
        ]
        assert not sweep.complete
        # Failed points carry no results; series just skips them.
        assert sweep.series("throughput", "test_stall_forever") == []
        assert len(sweep.results) == 2

    def test_wall_deadline_fails_point(self):
        sweep = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                          deadline=1e-6)
        status = sweep.status("blocking", 2)
        assert status.status == STATUS_FAILED
        assert "PointDeadlineExceeded" in status.error

    def test_failed_points_appear_in_report(self):
        config = tiny_config(
            algorithms=("blocking", "test_stall_forever")
        )
        sweep = run_sweep(config, run=TINY_RUN, mpls=[2],
                          stall_timeout=4.0)
        report = sweep_report(sweep, with_plots=False)
        assert "FAILED POINTS" in report
        assert "test_stall_forever mpl=2" in report

    def test_engine_livelock_degrades_to_failed_point(self):
        # immediate_restart with all delays stripped livelocks by
        # design; the engine raises RestartLivelockError, which the
        # resilient runner records instead of propagating.
        config = tiny_config(
            params=tiny_params().with_changes(
                restart_delay_mode="none_all", db_size=10,
                write_prob=1.0, mpl=8,
            ),
            algorithms=("immediate_restart",),
        )
        sweep = run_sweep(config, run=TINY_RUN.with_changes(seed=13),
                          mpls=[8], stall_timeout=100.0)
        status = sweep.status("immediate_restart", 8)
        assert status.status == STATUS_FAILED
        assert "RestartLivelockError" in status.error

    def test_retry_reseeds_and_can_report_success(self):
        # A deadline generous enough for the second attempt cannot be
        # constructed deterministically, so exercise the reseed path
        # by failing once via a one-shot flaky watchdog seam: retries
        # reseed the run, so the seed differs between attempts.
        seeds = []
        original = runner_module.run_simulation

        def spying(params, algorithm="blocking", run=None, **kwargs):
            seeds.append(run.seed)
            if len(seeds) == 1:
                raise SimulationStalledError(1.0, 1.0, 0)
            return original(params, algorithm=algorithm, run=run, **kwargs)

        runner_module.run_simulation = spying
        try:
            sweep = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                              retries=2, stall_timeout=60.0)
        finally:
            runner_module.run_simulation = original
        status = sweep.status("blocking", 2)
        assert status.status == STATUS_RETRIED
        assert status.attempts == 2
        assert status.error is not None  # the first failure is kept
        assert len(seeds) == 2 and seeds[0] != seeds[1]
        assert ("blocking", 2) in sweep.results


class TestValidation:
    def test_unknown_algorithm_fails_before_simulating(self):
        with pytest.raises(ValueError) as excinfo:
            run_sweep(tiny_config(), run=TINY_RUN,
                      algorithms=["blocking", "nonesuch"])
        message = str(excinfo.value)
        assert "nonesuch" in message
        assert "blocking" in message  # valid names listed

    def test_bad_resilience_arguments(self):
        with pytest.raises(ValueError):
            run_sweep(tiny_config(), run=TINY_RUN, retries=-1)
        with pytest.raises(ValueError):
            run_sweep(tiny_config(), run=TINY_RUN, deadline=0.0)
        with pytest.raises(ValueError):
            run_sweep(tiny_config(), run=TINY_RUN, stall_timeout=-5.0)


class TestCheckpointResume:
    def test_resume_runs_only_missing_points(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        first = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                          checkpoint=path)
        assert first.status("blocking", 2).status == STATUS_OK

        calls = []
        original = runner_module.run_simulation

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        runner_module.run_simulation = counting
        try:
            resumed = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2, 5],
                                checkpoint=path, resume=True)
        finally:
            runner_module.run_simulation = original
        assert len(calls) == 1  # only the missing mpl=5 point ran
        assert set(resumed.results) == {("blocking", 2), ("blocking", 5)}
        assert resumed.status("blocking", 2).status == STATUS_OK
        # The restored point answers metric queries like a live one.
        restored = resumed.result("blocking", 2)
        live = first.result("blocking", 2)
        assert restored.mean("throughput") == pytest.approx(
            live.mean("throughput")
        )

    def test_resumed_failed_points_are_not_rerun(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        config = tiny_config(algorithms=("test_stall_forever",))
        first = run_sweep(config, run=TINY_RUN, mpls=[2],
                          stall_timeout=4.0, checkpoint=path)
        assert first.status("test_stall_forever", 2).status == STATUS_FAILED

        calls = []
        original = runner_module.run_simulation

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        runner_module.run_simulation = counting
        try:
            resumed = run_sweep(config, run=TINY_RUN, mpls=[2],
                                stall_timeout=4.0, checkpoint=path,
                                resume=True)
        finally:
            runner_module.run_simulation = original
        assert calls == []  # the recorded failure is kept, not re-run
        assert resumed.status(
            "test_stall_forever", 2
        ).status == STATUS_FAILED

    def test_without_resume_checkpoint_is_truncated(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2], checkpoint=path)
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[5], checkpoint=path)
        with open(path) as f:
            lines = f.read().splitlines()
        points = [decode_checkpoint_line(line) for line in lines[1:]]
        assert [p["mpl"] for p in points] == [5]

    def test_mismatched_run_config_rejected(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2], checkpoint=path)
        other = TINY_RUN.with_changes(seed=999)
        with pytest.raises(CheckpointMismatchError):
            run_sweep(tiny_config(), run=other, mpls=[2, 5],
                      checkpoint=path, resume=True)

    def test_mismatched_experiment_rejected(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2], checkpoint=path)
        other = tiny_config(experiment_id="other")
        with pytest.raises(CheckpointMismatchError):
            run_sweep(other, run=TINY_RUN, mpls=[2], checkpoint=path,
                      resume=True)

    def test_mismatched_resource_model_rejected(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2], checkpoint=path)
        buffered = tiny_config(
            params=tiny_params().with_changes(resource_model="buffered")
        )
        with pytest.raises(CheckpointMismatchError, match="resource"):
            run_sweep(buffered, run=TINY_RUN, mpls=[2], checkpoint=path,
                      resume=True)

    def test_resource_model_round_trips_through_checkpoint(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        buffered = tiny_config(
            params=tiny_params().with_changes(resource_model="buffered")
        )
        run_sweep(buffered, run=TINY_RUN, mpls=[2], checkpoint=path)
        with open(path) as f:
            header = decode_checkpoint_line(
                f.readline(), require_crc=False
            )
        assert header["resource_model"] == "buffered"
        # Same model resumes cleanly and keeps the recorded point.
        resumed = run_sweep(buffered, run=TINY_RUN, mpls=[2],
                            checkpoint=path, resume=True)
        assert resumed.status("blocking", 2).status == STATUS_OK

    def test_header_without_resource_model_means_classic(self, tmp_path):
        # Legacy (v1) checkpoints predate both the resource-model layer
        # and per-line CRCs: no resource_model header key, bare JSON
        # lines. They must still resume under the classic model.
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2], checkpoint=path)
        with open(path) as f:
            lines = f.read().splitlines()
        header = decode_checkpoint_line(lines[0], require_crc=False)
        del header["resource_model"]
        header["format"] = "repro-sweep-checkpoint-v1"
        points = [
            decode_checkpoint_line(line) for line in lines[1:]
        ]
        with open(path, "w") as f:
            for document in [header] + points:
                f.write(json.dumps(document) + "\n")
        resumed = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                            checkpoint=path, resume=True)
        assert resumed.status("blocking", 2).status == STATUS_OK

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2, 5],
                  checkpoint=path)
        # Simulate a kill mid-write: chop the last line in half.
        with open(path) as f:
            content = f.read()
        with open(path, "w") as f:
            f.write(content[: len(content) - len(content.splitlines()[-1])
                            // 2 - 1])
        config = tiny_config()
        checkpoint = SweepCheckpoint(path, config, TINY_RUN)
        from repro.experiments.runner import SweepResult

        sweep = SweepResult(config=config, run=TINY_RUN)
        restored = checkpoint.load_into(sweep)
        assert restored == 1  # the intact first point only
        assert ("blocking", 2) in sweep.results

    def test_resume_without_existing_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "fresh.ckpt.jsonl")
        sweep = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                          checkpoint=path, resume=True)
        assert os.path.exists(path)
        assert sweep.status("blocking", 2).status == STATUS_OK


class TestPersistedStatuses:
    def test_save_load_roundtrip_preserves_statuses(self, tmp_path):
        config = tiny_config(
            experiment_id="exp3_finite",  # must exist in the registry
            algorithms=("blocking", "test_stall_forever"),
        )
        sweep = run_sweep(config, run=TINY_RUN, mpls=[2],
                          stall_timeout=4.0)
        path = str(tmp_path / "sweep.json")
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        assert loaded.status("blocking", 2).status == STATUS_OK
        failed = loaded.status("test_stall_forever", 2)
        assert failed.status == STATUS_FAILED
        assert failed.attempts == 1
        assert loaded.failed_points() == [("test_stall_forever", 2)]
