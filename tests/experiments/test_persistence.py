"""Tests for saving/reloading experiment sweeps."""

import json

import pytest

from repro.core import RunConfig
from repro.experiments import (
    experiment_configs,
    format_table,
    load_sweep,
    run_sweep,
    save_sweep,
    sweep_report,
)

TINY_RUN = RunConfig(batches=3, batch_time=6.0, warmup_batches=0, seed=47)


@pytest.fixture(scope="module")
def sweep():
    config = experiment_configs()["exp3_finite"]
    return run_sweep(
        config, run=TINY_RUN, mpls=[5, 25], algorithms=["blocking"]
    )


class TestRoundTrip:
    def test_values_survive(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        assert loaded.config.experiment_id == "exp3_finite"
        assert loaded.run == TINY_RUN
        for key, original in sweep.results.items():
            restored = loaded.results[key]
            for metric in ("throughput", "disk_util", "response_time"):
                assert restored.mean(metric) == pytest.approx(
                    original.mean(metric)
                )
                assert restored.interval(metric).half_width == (
                    pytest.approx(original.interval(metric).half_width)
                )

    def test_reports_render_from_loaded_sweep(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        table = format_table(loaded, "throughput", with_ci=True)
        assert "blocking" in table
        report = sweep_report(loaded, with_plots=False)
        assert "Resource-Limited" in report

    def test_totals_preserved(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        original = sweep.results[("blocking", 5)].totals
        restored = loaded.results[("blocking", 5)].totals
        assert restored["commits"] == original["commits"]


class TestErrors:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a saved sweep"):
            load_sweep(path)

    def test_unknown_experiment_rejected(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        document = json.loads(path.read_text())
        document["experiment_id"] = "exp99_imaginary"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unknown experiment"):
            load_sweep(path)
