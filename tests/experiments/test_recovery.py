"""Crash-safety and chaos recovery tests for sweep persistence/supervision.

The headline guarantee under test: a sweep that is SIGKILLed, loses a
worker pool, or has its checkpoint file torn or garbled mid-run, and is
then resumed, produces results **byte-identical** to the fault-free
run. The matrix covers every corruption the persistence layer claims to
survive (torn trailing line, corrupted header, CRC-mismatched record),
plus the supervision layer's backoff and pool-crash degradation.
"""

import json
import multiprocessing
import os
import signal

import pytest

from repro.chaos import ChaosSpec, FlakyFsync, garble_tail, truncate_tail
from repro.core import RunConfig, SimulationParameters
from repro.experiments import (
    STATUS_OK,
    CheckpointCorruptError,
    CheckpointMismatchError,
    ExperimentConfig,
    SweepCheckpoint,
    SweepResult,
    retry_backoff,
    run_sweep,
    save_sweep,
    verify_checkpoint,
)
from repro.experiments import runner as runner_module
from repro.experiments.cli import main as cli_main
from repro.experiments.errors import (
    PointDeadlineExceeded,
    SimulationStalledError,
    error_severity,
)
from repro.experiments.persistence import (
    CRC_SEPARATOR,
    decode_checkpoint_line,
    encode_checkpoint_line,
)
from repro.obs import InvariantViolation, InvariantViolationError

TINY_RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=0, seed=11)

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="kill/resume tests rely on fork semantics",
)


def tiny_params():
    return SimulationParameters(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )


def tiny_config(**overrides):
    defaults = dict(
        experiment_id="tiny",
        title="Tiny test sweep",
        figures=(0,),
        params=tiny_params(),
        algorithms=("blocking", "optimistic"),
        mpls=(2, 5),
        metrics=("throughput",),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def checkpoint_points(path):
    """{(algorithm, mpl): payload} with measured wall-clock stripped."""
    points = {}
    with open(path) as f:
        lines = f.read().splitlines()
    for raw in lines[1:]:
        line = decode_checkpoint_line(raw)
        line["status"] = {
            k: v for k, v in line["status"].items()
            if k != "wall_seconds"
        }
        points[(line["algorithm"], line["mpl"])] = line
    return points


def golden_checkpoint(tmp_path, **sweep_kwargs):
    """The fault-free reference checkpoint every parity test compares to."""
    path = str(tmp_path / "golden.ckpt.jsonl")
    run_sweep(tiny_config(), run=TINY_RUN, checkpoint=path,
              **sweep_kwargs)
    return path


class TestCorruptionMatrix:
    def _checkpoint(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, checkpoint=path)
        return path

    def _load(self, path):
        config = tiny_config()
        checkpoint = SweepCheckpoint(path, config, TINY_RUN)
        sweep = SweepResult(config=config, run=TINY_RUN)
        restored = checkpoint.load_into(sweep)
        return restored, checkpoint, sweep

    def test_truncated_trailing_line_salvaged_and_repaired(
            self, tmp_path):
        path = self._checkpoint(tmp_path)
        golden = checkpoint_points(path)
        truncate_tail(path, 9)
        restored, checkpoint, _ = self._load(path)
        assert restored == 3  # 4 points written, the torn one dropped
        assert checkpoint.salvage_dropped == 1
        # The repair truncated the torn tail: the file now ends on a
        # clean line boundary and every remaining line is intact.
        assert verify_checkpoint(path)["ok"]
        # Resuming re-runs only the dropped point and restores parity.
        resumed = run_sweep(tiny_config(), run=TINY_RUN,
                            checkpoint=path, resume=True)
        assert checkpoint_points(path) == golden
        assert all(s.status == STATUS_OK
                   for s in resumed.statuses.values())

    def test_garbled_tail_detected_by_crc(self, tmp_path):
        path = self._checkpoint(tmp_path)
        golden = checkpoint_points(path)
        garble_tail(path, 40, seed=3)
        report = verify_checkpoint(path)
        assert not report["ok"]
        assert report["first_corrupt_line"] is not None
        restored, checkpoint, _ = self._load(path)
        assert restored == 3
        # Garbled bytes may themselves decode as line breaks, so the
        # torn tail can split into several dropped fragments.
        assert checkpoint.salvage_dropped >= 1
        run_sweep(tiny_config(), run=TINY_RUN, checkpoint=path,
                  resume=True)
        assert checkpoint_points(path) == golden

    def test_crc_catches_silently_valid_json(self, tmp_path):
        # Flip one digit inside a mid-file record's JSON payload: the
        # line still parses as JSON (pre-CRC loaders would swallow the
        # wrong number), but the CRC no longer matches.
        path = self._checkpoint(tmp_path)
        with open(path) as f:
            lines = f.read().splitlines(keepends=True)
        target = lines[2]
        text, _, suffix = target.rpartition(CRC_SEPARATOR)
        digits = [i for i, ch in enumerate(text) if ch.isdigit()]
        flip = digits[len(digits) // 2]
        flipped = (
            text[:flip] + str((int(text[flip]) + 1) % 10)
            + text[flip + 1:]
        )
        json.loads(flipped)  # still valid JSON: only the CRC knows
        lines[2] = flipped + CRC_SEPARATOR + suffix
        with open(path, "w") as f:
            f.writelines(lines)
        with pytest.raises(ValueError, match="CRC32 mismatch"):
            decode_checkpoint_line(lines[2])
        restored, checkpoint, _ = self._load(path)
        # Salvage keeps the valid prefix (header + first point) only.
        assert restored == 1
        assert checkpoint.salvage_dropped == 3

    def test_corrupted_header_is_unrecoverable(self, tmp_path):
        path = self._checkpoint(tmp_path)
        with open(path) as f:
            lines = f.read().splitlines(keepends=True)
        lines[0] = lines[0][: len(lines[0]) // 2].rstrip() + "\n"
        with open(path, "w") as f:
            f.writelines(lines)
        report = verify_checkpoint(path)
        assert not report["ok"]
        assert report["first_corrupt_line"] == 1
        with pytest.raises(CheckpointCorruptError) as excinfo:
            run_sweep(tiny_config(), run=TINY_RUN, checkpoint=path,
                      resume=True)
        # Corrupt headers stay catchable as the mismatch family the
        # CLI already handles.
        assert isinstance(excinfo.value, CheckpointMismatchError)

    def test_empty_checkpoint_restores_nothing(self, tmp_path):
        path = str(tmp_path / "empty.ckpt.jsonl")
        open(path, "w").close()
        restored, checkpoint, sweep = self._load(path)
        assert restored == 0
        assert sweep.statuses == {}


class TestAtomicWrites:
    def test_failed_fsync_preserves_previous_save(self, tmp_path):
        sweep = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2])
        path = tmp_path / "sweep.json"
        save_sweep(sweep, str(path))
        good = path.read_text()
        with FlakyFsync() as flaky:
            with pytest.raises(OSError):
                save_sweep(sweep, str(path))
        assert flaky.calls == 1
        assert path.read_text() == good  # previous file untouched
        assert list(tmp_path.glob("*.tmp.*")) == []  # tmp cleaned up

    def test_failed_fsync_preserves_previous_checkpoint_header(
            self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                  checkpoint=path)
        with open(path) as f:
            good = f.read()
        with FlakyFsync():
            with pytest.raises(OSError):
                # start_fresh would atomically replace the file with a
                # bare header; with fsync failing it must not.
                SweepCheckpoint(
                    path, tiny_config(), TINY_RUN
                ).start_fresh()
        with open(path) as f:
            assert f.read() == good

    def test_save_sweep_is_loadable_after_interrupted_rewrite(
            self, tmp_path):
        # The document save_sweep writes is one atomic JSON file.
        sweep = run_sweep(
            tiny_config(experiment_id="exp3_finite"),
            run=TINY_RUN, mpls=[2],
        )
        path = tmp_path / "sweep.json"
        save_sweep(sweep, str(path))
        json.loads(path.read_text())  # plain JSON, no tmp suffix junk


class TestVerifyCheckpointCli:
    def test_clean_checkpoint_exits_zero(self, tmp_path, capsys):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                  checkpoint=path)
        assert cli_main(["--verify-checkpoint", path]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "valid points:  2" in out

    def test_corrupt_checkpoint_exits_one(self, tmp_path, capsys):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                  checkpoint=path)
        garble_tail(path, 25, seed=1)
        assert cli_main(["--verify-checkpoint", path]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert "salvage" in out

    def test_verify_is_read_only(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                  checkpoint=path)
        truncate_tail(path, 5)
        with open(path, "rb") as f:
            before = f.read()
        cli_main(["--verify-checkpoint", path])
        with open(path, "rb") as f:
            assert f.read() == before  # no repair without --resume


class TestWorkloadModelBinding:
    """The checkpoint header binds the workload model: a sweep never
    resumes under a different arrival process."""

    def _open_config(self, spec=None):
        return tiny_config(
            params=tiny_params().with_changes(
                workload_model="open_poisson",
                workload_spec=spec if spec is not None else {"rate": 4.0},
            )
        )

    def test_mismatched_workload_model_rejected(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2], checkpoint=path)
        with pytest.raises(CheckpointMismatchError, match="workload"):
            run_sweep(self._open_config(), run=TINY_RUN, mpls=[2],
                      checkpoint=path, resume=True)

    def test_mismatched_workload_spec_rejected(self, tmp_path):
        # Same model, different spec: still a different arrival
        # process, still refused.
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(self._open_config({"rate": 4.0}), run=TINY_RUN,
                  mpls=[2], checkpoint=path)
        with pytest.raises(CheckpointMismatchError, match="workload"):
            run_sweep(self._open_config({"rate": 8.0}), run=TINY_RUN,
                      mpls=[2], checkpoint=path, resume=True)

    def test_workload_model_round_trips_through_checkpoint(
            self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        config = self._open_config()
        run_sweep(config, run=TINY_RUN, mpls=[2], checkpoint=path)
        with open(path) as f:
            header = decode_checkpoint_line(
                f.readline(), require_crc=False
            )
        assert header["workload_model"].startswith("open_poisson")
        resumed = run_sweep(config, run=TINY_RUN, mpls=[2],
                            checkpoint=path, resume=True)
        assert resumed.status("blocking", 2).status == STATUS_OK

    def test_header_without_workload_model_means_closed_classic(
            self, tmp_path):
        # Checkpoints written before the workload-model layer carry no
        # workload_model key; they must keep resuming under the default
        # closed model and refuse anything else.
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2], checkpoint=path)
        with open(path) as f:
            lines = f.read().splitlines()
        header = decode_checkpoint_line(lines[0], require_crc=False)
        del header["workload_model"]
        points = [decode_checkpoint_line(line) for line in lines[1:]]
        with open(path, "w") as f:
            for document in [header] + points:
                f.write(encode_checkpoint_line(document))
        resumed = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                            checkpoint=path, resume=True)
        assert resumed.status("blocking", 2).status == STATUS_OK
        with pytest.raises(CheckpointMismatchError, match="workload"):
            run_sweep(self._open_config(), run=TINY_RUN, mpls=[2],
                      checkpoint=path, resume=True)


class TestRetryBackoff:
    def test_deterministic_pure_function(self):
        assert retry_backoff(11, "blocking", 2, 1) == retry_backoff(
            11, "blocking", 2, 1
        )
        assert retry_backoff(11, "blocking", 2, 1) != retry_backoff(
            11, "optimistic", 2, 1
        )

    def test_first_attempt_never_waits(self):
        assert retry_backoff(11, "blocking", 2, 0) == 0.0

    def test_jittered_exponential_growth_with_cap(self):
        base = runner_module.BACKOFF_BASE
        for attempt in range(1, 8):
            delay = retry_backoff(11, "blocking", 2, attempt)
            nominal = base * (2 ** (attempt - 1))
            assert 0.5 * nominal <= delay
            assert delay < min(runner_module.BACKOFF_CAP,
                               1.5 * nominal) + 1e-9
        assert retry_backoff(11, "blocking", 2, 60) <= (
            runner_module.BACKOFF_CAP
        )

    def test_retry_sleeps_through_the_injectable_seam(
            self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(runner_module, "_sleep", sleeps.append)
        original = runner_module.run_simulation
        failures = [0]

        def flaky(params, algorithm="blocking", run=None, **kwargs):
            if failures[0] == 0:
                failures[0] += 1
                raise SimulationStalledError(1.0, 1.0, 0)
            return original(params, algorithm=algorithm, run=run,
                            **kwargs)

        monkeypatch.setattr(runner_module, "run_simulation", flaky)
        sweep = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                          algorithms=["blocking"], retries=2,
                          stall_timeout=60.0)
        assert sweep.status("blocking", 2).attempts == 2
        assert sleeps == [retry_backoff(TINY_RUN.seed, "blocking", 2, 1)]


class TestSeverityTaxonomy:
    def test_supervised_failures_are_transient(self):
        assert error_severity(
            SimulationStalledError(1.0, 1.0, 0)
        ) == "transient"
        assert error_severity(
            PointDeadlineExceeded(2.0, 1.0)
        ) == "transient"

    def test_checkpoint_problems_are_permanent(self):
        assert error_severity(CheckpointMismatchError()) == "permanent"
        assert error_severity(CheckpointCorruptError()) == "permanent"

    def test_invariant_violations_are_fatal(self):
        violation = InvariantViolation(0.0, "conservation", "boom")
        assert error_severity(
            InvariantViolationError(violation)
        ) == "fatal"
        assert error_severity(AssertionError()) == "fatal"

    def test_unknown_errors_are_not_retry_licenses(self):
        assert error_severity(RuntimeError("?")) == "permanent"


class TestPoolCrashSupervision:
    def test_degrades_to_sequential_after_consecutive_crashes(
            self, monkeypatch):
        attempts = []

        def always_broken(sweep, pending, *args, **kwargs):
            attempts.append(list(pending))
            return list(pending)  # pool broke, nothing recorded

        monkeypatch.setattr(
            runner_module, "_run_parallel", always_broken
        )
        lines = []
        sweep = run_sweep(tiny_config(), run=TINY_RUN, workers=2,
                          progress=lines.append)
        assert len(attempts) == runner_module.MAX_POOL_RESTARTS
        assert any("degrading" in line for line in lines)
        # The sequential fallback finished every point in-process.
        assert all(s.status == STATUS_OK
                   for s in sweep.statuses.values())
        assert len(sweep.results) == 4

    def test_progress_resets_the_crash_streak(self, monkeypatch):
        calls = []

        def progressing(sweep, pending, *args, **kwargs):
            calls.append(list(pending))
            # Record one point per drain, "crash" on the rest.
            algorithm, mpl, rep = pending[0]
            result, status = runner_module._execute_point(
                kwargs.get("config") or args[0], algorithm, mpl,
                TINY_RUN, None, None, 0, rep=rep,
            )
            runner_module._record_point(
                sweep, (algorithm, mpl, rep), result, status, None
            )
            return list(pending[1:])

        monkeypatch.setattr(
            runner_module, "_run_parallel", progressing
        )
        lines = []
        sweep = run_sweep(tiny_config(), run=TINY_RUN, workers=2,
                          progress=lines.append)
        # Four points, one per drain: the pool "crashed" after each,
        # but constant progress means it never degrades.
        assert len(calls) == 4
        assert not any("degrading" in line for line in lines)
        assert any("restarting" in line for line in lines)
        assert len(sweep.results) == 4


@FORK_ONLY
class TestChaosParity:
    """The headline guarantee: kill it, resume it, get the same bytes."""

    def test_sigkilled_sequential_sweep_resumes_byte_identical(
            self, tmp_path):
        golden = golden_checkpoint(tmp_path)
        path = str(tmp_path / "chaos.ckpt.jsonl")
        spec = ChaosSpec(
            state_dir=str(tmp_path / "chaos-state"),
            kill_point=("optimistic", 2),
        )
        pid = os.fork()
        if pid == 0:  # child: dies by SIGKILL inside the third point
            try:
                run_sweep(tiny_config(), run=TINY_RUN,
                          checkpoint=path, chaos=spec)
            finally:
                os._exit(86)  # only reachable if the kill misfired
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status)
        assert os.WTERMSIG(status) == signal.SIGKILL
        # The kill landed mid-sweep: some but not all points survived,
        # and every surviving line is intact (fsync-per-point).
        report = verify_checkpoint(path)
        assert report["ok"]
        assert 0 < report["valid_points"] < 4
        # Resume under the same spec: the marker file makes the fault
        # one-shot, so the re-run is clean — and byte-identical.
        resumed = run_sweep(tiny_config(), run=TINY_RUN,
                            checkpoint=path, resume=True, chaos=spec)
        assert checkpoint_points(path) == checkpoint_points(golden)
        assert all(s.status == STATUS_OK
                   for s in resumed.statuses.values())

    def test_worker_killed_parallel_sweep_recovers_in_process(
            self, tmp_path):
        golden = golden_checkpoint(tmp_path)
        path = str(tmp_path / "chaos-par.ckpt.jsonl")
        spec = ChaosSpec(
            state_dir=str(tmp_path / "chaos-state"),
            kill_point=("optimistic", 2),
        )
        lines = []
        sweep = run_sweep(tiny_config(), run=TINY_RUN, workers=2,
                          checkpoint=path, chaos=spec,
                          progress=lines.append)
        # The SIGKILLed worker broke the pool; the supervisor
        # restarted it and re-ran only the unrecorded points.
        assert any("restarting" in line for line in lines)
        assert os.path.exists(
            spec.marker_path("kill", "optimistic", 2)
        )
        assert all(s.status == STATUS_OK
                   for s in sweep.statuses.values())
        assert len(sweep.results) == 4
        assert checkpoint_points(path) == checkpoint_points(golden)
