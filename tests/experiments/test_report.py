"""Tests for ASCII report rendering."""

import pytest

from repro.core import RunConfig, SimulationParameters
from repro.experiments import (
    ExperimentConfig,
    ascii_plot,
    format_table,
    run_sweep,
    sweep_report,
)
from repro.experiments.report import metric_label

TINY_RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=0, seed=23)


@pytest.fixture(scope="module")
def sweep():
    params = SimulationParameters(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )
    config = ExperimentConfig(
        experiment_id="report-test",
        title="Report rendering test",
        figures=(8,),
        params=params,
        algorithms=("blocking", "optimistic"),
        mpls=(2, 5),
        metrics=("throughput", "disk_util"),
        notes="a note",
    )
    return run_sweep(config, run=TINY_RUN)


class TestMetricLabels:
    def test_known_metric(self):
        assert "transactions/second" in metric_label("throughput")

    def test_unknown_metric_passthrough(self):
        assert metric_label("weird_metric") == "weird_metric"


class TestFormatTable:
    def test_contains_all_algorithms_and_mpls(self, sweep):
        table = format_table(sweep, "throughput")
        assert "blocking" in table
        assert "optimistic" in table
        assert "\n    2" in table
        assert "\n    5" in table

    def test_with_ci_shows_half_width(self, sweep):
        table = format_table(sweep, "throughput", with_ci=True)
        assert "±" in table

    def test_values_are_numbers(self, sweep):
        table = format_table(sweep, "throughput")
        data_lines = [
            line for line in table.splitlines()
            if line and line[0] == " " and line.strip()[0].isdigit()
        ]
        assert len(data_lines) == 2


class TestAsciiPlot:
    def test_plot_contains_marks_and_legend(self, sweep):
        plot = ascii_plot(sweep, "throughput")
        assert "B=blocking" in plot
        assert "O=optimistic" in plot
        body = "\n".join(plot.splitlines()[1:-3])
        assert "B" in body or "*" in body
        assert "O" in body or "*" in body

    def test_plot_handles_zero_values(self, sweep):
        # Should not divide by zero even if a metric is all zeros.
        plot = ascii_plot(sweep, "restart_ratio")
        assert "max=" in plot


class TestSweepReport:
    def test_report_structure(self, sweep):
        report = sweep_report(sweep)
        assert "Report rendering test" in report
        assert "figure(s) 8" in report
        assert "a note" in report
        assert "Throughput" in report
        assert "Total Disk Utilization" in report
        assert "wall time" in report

    def test_report_without_plots(self, sweep):
        report = sweep_report(sweep, with_plots=False)
        assert "max=" not in report

    def test_classic_sweep_has_no_buffer_table(self, sweep):
        from repro.experiments.report import buffer_hit_table

        assert buffer_hit_table(sweep) is None
        report = sweep_report(sweep, with_plots=False)
        assert "Buffer pool" not in report
        assert "[resource model:" not in report


class TestBufferedSweepReport:
    @pytest.fixture(scope="class")
    def buffered_sweep(self):
        params = SimulationParameters(
            db_size=200, min_size=4, max_size=8, write_prob=0.25,
            num_terms=10, mpl=5, ext_think_time=0.5,
            obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
            resource_model="buffered", buffer_capacity=50,
        )
        config = ExperimentConfig(
            experiment_id="buffered-report-test",
            title="Buffered report test",
            figures=(),
            params=params,
            algorithms=("blocking",),
            mpls=(2, 5),
            metrics=("throughput", "disk_util"),
        )
        return run_sweep(config, run=TINY_RUN)

    def test_buffer_table_and_model_line(self, buffered_sweep):
        from repro.experiments.report import buffer_hit_table

        table = buffer_hit_table(buffered_sweep)
        assert table is not None
        assert "hit ratio" in table
        report = sweep_report(buffered_sweep, with_plots=False)
        assert "[resource model: buffered (LRU, 50 pages)]" in report
        assert "Buffer pool" in report
        assert "%" in report  # per-point hit-ratio cells render
