"""Tests for the process-parallel sweep executor.

Acceptance bar: for identical seeds, ``workers=1`` and ``workers=4``
produce identical per-point means and semantically identical resumable
checkpoints; a killed parallel sweep resumes only its missing points;
a wedged worker is cancelled by the parent backstop instead of hanging
the sweep.
"""

import multiprocessing
import time

import pytest

from repro.cc import ConcurrencyControl, register_algorithm
from repro.core import RunConfig, SimulationParameters
from repro.experiments import (
    STATUS_FAILED,
    STATUS_OK,
    ExperimentConfig,
    SweepCheckpoint,
    SweepResult,
    point_seed,
    run_sweep,
)
from repro.experiments import runner as runner_module
from repro.experiments.persistence import decode_checkpoint_line

TINY_RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=0, seed=11)

#: Worker processes inherit test-registered algorithms only under the
#: fork start method (Linux); skip fork-dependent cases elsewhere.
FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="test algorithm registration reaches workers only via fork",
)


class HangForeverCC(ConcurrencyControl):
    """Test stub: wedges its worker inside a batch (blocks the loop)."""

    name = "test_hang_forever"

    def read_request(self, tx, obj):
        time.sleep(300.0)  # never returns within any test budget
        return None


register_algorithm(HangForeverCC)


def tiny_params():
    return SimulationParameters(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )


def tiny_config(**overrides):
    defaults = dict(
        experiment_id="tiny",
        title="Tiny test sweep",
        figures=(0,),
        params=tiny_params(),
        algorithms=("blocking", "optimistic"),
        mpls=(2, 5),
        metrics=("throughput",),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def checkpoint_points(path):
    """{(algorithm, mpl): line} of a checkpoint, wall-clock stripped.

    Wall seconds are measured time and differ between any two runs, so
    equivalence is judged on everything else: the measured batch
    series, totals, and the status outcome.
    """
    points = {}
    with open(path) as f:
        lines = f.read().splitlines()
    for raw in lines[1:]:
        line = decode_checkpoint_line(raw)
        line["status"] = {
            k: v for k, v in line["status"].items()
            if k != "wall_seconds"
        }
        points[(line["algorithm"], line["mpl"])] = line
    return points


class TestPointSeed:
    def test_first_attempt_shares_the_sweep_seed(self):
        # Common random numbers: every point's first attempt uses the
        # sweep seed, exactly like the sequential runner always did.
        assert point_seed(11, "blocking", 2, 0) == 11
        assert point_seed(11, "optimistic", 200, 0) == 11

    def test_retries_differ_per_attempt_and_per_point(self):
        a1 = point_seed(11, "blocking", 2, 1)
        a2 = point_seed(11, "blocking", 2, 2)
        b1 = point_seed(11, "optimistic", 2, 1)
        c1 = point_seed(11, "blocking", 5, 1)
        assert len({11, a1, a2, b1, c1}) == 5

    def test_pure_function_of_its_arguments(self):
        assert point_seed(11, "blocking", 5, 1) == point_seed(
            11, "blocking", 5, 1
        )

    def test_no_cross_point_collisions(self):
        # Regression: the old offset was crc32(key) % 7919, so grid
        # keys congruent modulo the stride shared every retry seed and
        # replayed identical trajectories. A full grid of realistic
        # size must produce all-distinct attempt seeds.
        algorithms = [
            "blocking", "immediate_restart", "optimistic",
            "wound_wait", "wait_die",
        ]
        mpls = list(range(1, 301))
        seeds = [
            point_seed(11, algorithm, mpl, attempt)
            for algorithm in algorithms
            for mpl in mpls
            for attempt in (1, 2, 3)
        ]
        assert len(set(seeds)) == len(seeds)

    def test_attempt_zero_never_collides_with_retries(self):
        # The sweep seed is reserved for attempt 0 of every point; a
        # retry landing on it would silently reinstate the failing
        # trajectory it was meant to escape.
        for algorithm in ("blocking", "optimistic"):
            for mpl in (2, 25, 200):
                for attempt in (1, 2, 3):
                    assert point_seed(11, algorithm, mpl, attempt) != 11


class TestParallelSequentialEquivalence:
    def test_identical_means_for_identical_seeds(self):
        sequential = run_sweep(tiny_config(), run=TINY_RUN, workers=1)
        parallel = run_sweep(tiny_config(), run=TINY_RUN, workers=4)
        assert set(parallel.results) == set(sequential.results)
        for key in sequential.results:
            seq_result = sequential.results[key]
            par_result = parallel.results[key]
            # Bit-identical, not approximately equal: the same seeds
            # drive the same deterministic simulation either way.
            assert par_result.mean("throughput") == seq_result.mean(
                "throughput"
            )
            assert par_result.mean("response_time") == seq_result.mean(
                "response_time"
            )
            assert parallel.status(*key).status == STATUS_OK

    def test_identical_resumable_checkpoints(self, tmp_path):
        seq_path = str(tmp_path / "seq.ckpt.jsonl")
        par_path = str(tmp_path / "par.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, workers=1,
                  checkpoint=seq_path)
        run_sweep(tiny_config(), run=TINY_RUN, workers=4,
                  checkpoint=par_path)
        # Line order may differ (completion order vs grid order); the
        # keyed content may not.
        assert checkpoint_points(par_path) == checkpoint_points(seq_path)
        # And both resume into equivalent sweeps.
        config = tiny_config()
        restored = []
        for path in (seq_path, par_path):
            sweep = SweepResult(config=config, run=TINY_RUN)
            SweepCheckpoint(path, config, TINY_RUN).load_into(sweep)
            restored.append(sweep)
        for key in restored[0].results:
            assert restored[1].result(*key).mean(
                "throughput"
            ) == restored[0].result(*key).mean("throughput")

    def test_parallel_progress_reports_from_parent(self):
        lines = []
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2], workers=2,
                  progress=lines.append)
        assert len(lines) == 2
        # Counters come from the single parent-side reporter.
        assert sorted(line.split("]")[0] for line in lines) == [
            "  [1/2", "  [2/2",
        ]


class TestKilledSweepResume:
    def test_parallel_resume_runs_only_missing_points(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        # A "killed" campaign: only half the grid reached the disk.
        first = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                          workers=2, checkpoint=path)
        assert set(first.results) == {("blocking", 2), ("optimistic", 2)}
        with open(path) as f:
            before = f.read()

        resumed = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2, 5],
                            workers=2, checkpoint=path, resume=True)
        assert set(resumed.results) == {
            ("blocking", 2), ("blocking", 5),
            ("optimistic", 2), ("optimistic", 5),
        }
        with open(path) as f:
            after = f.read()
        # The checkpoint is append-only: recorded points were not
        # re-run or rewritten, and only the missing ones were added.
        assert after.startswith(before)
        appended = [
            decode_checkpoint_line(raw) for raw in
            after[len(before):].splitlines()
        ]
        assert sorted(
            (line["algorithm"], line["mpl"]) for line in appended
        ) == [("blocking", 5), ("optimistic", 5)]

    def test_parallel_resume_matches_uninterrupted_results(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt.jsonl")
        run_sweep(tiny_config(), run=TINY_RUN, mpls=[2], workers=2,
                  checkpoint=path)
        resumed = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2, 5],
                            workers=2, checkpoint=path, resume=True)
        uninterrupted = run_sweep(tiny_config(), run=TINY_RUN,
                                  mpls=[2, 5])
        for key in uninterrupted.results:
            assert resumed.result(*key).mean(
                "throughput"
            ) == uninterrupted.result(*key).mean("throughput")


class TestValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(tiny_config(), run=TINY_RUN, workers=-1)

    def test_workers_zero_uses_all_cores(self):
        sweep = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                          algorithms=["blocking"], workers=0)
        assert sweep.status("blocking", 2).status == STATUS_OK

    def test_algorithm_instances_rejected_in_parallel_mode(self):
        from repro.cc import create_algorithm

        instance = create_algorithm("blocking")
        with pytest.raises(ValueError, match="registry"):
            run_sweep(tiny_config(algorithms=(instance,)),
                      run=TINY_RUN, workers=2)

    def test_algorithm_instances_still_allowed_sequentially(self):
        from repro.cc import create_algorithm

        instance = create_algorithm("blocking")
        sweep = run_sweep(tiny_config(algorithms=(instance,)),
                          run=TINY_RUN, mpls=[2], workers=1)
        assert len(sweep.results) == 1


class TestHardBackstop:
    def test_backstop_budget_scales_with_deadline_and_retries(self):
        assert runner_module._hard_backstop(None, 3) is None
        assert runner_module._hard_backstop(10.0, 0) == pytest.approx(
            10.0 + runner_module.BACKSTOP_GRACE
        )
        assert runner_module._hard_backstop(10.0, 2) == pytest.approx(
            30.0 + runner_module.BACKSTOP_GRACE
        )

    @FORK_ONLY
    def test_wedged_worker_is_cancelled_and_recorded_failed(
            self, monkeypatch):
        # The hung CC sleeps inside a batch, so the in-worker deadline
        # (checked at batch boundaries) can never trip; only the
        # parent-side backstop can end this point.
        monkeypatch.setattr(runner_module, "BACKSTOP_GRACE", 1.0)
        # Two wedged points so the sweep takes the parallel path (a
        # single pending point runs sequentially by design).
        config = tiny_config(algorithms=("test_hang_forever",))
        started = time.perf_counter()
        sweep = run_sweep(config, run=TINY_RUN, mpls=[2, 5], workers=2,
                          deadline=0.5)
        elapsed = time.perf_counter() - started
        assert elapsed < 60.0  # nowhere near the 300s worker sleep
        for mpl in (2, 5):
            status = sweep.status("test_hang_forever", mpl)
            assert status.status == STATUS_FAILED
            assert "PointCancelledError" in status.error
        assert not sweep.complete

    @FORK_ONLY
    def test_healthy_points_survive_a_wedged_sibling(self, monkeypatch):
        monkeypatch.setattr(runner_module, "BACKSTOP_GRACE", 2.0)
        config = tiny_config(
            algorithms=("blocking", "test_hang_forever")
        )
        # The deadline is generous for the healthy point (it finishes
        # in well under a second) but arms the backstop for the wedged
        # one.
        sweep = run_sweep(config, run=TINY_RUN, mpls=[2], workers=2,
                          deadline=2.0)
        assert sweep.status("blocking", 2).status == STATUS_OK
        assert sweep.status(
            "test_hang_forever", 2
        ).status == STATUS_FAILED


class TestSeedValidationAndReplicationKeys:
    """Attempt validation and the replication axis of the seed scheme."""

    def test_negative_attempt_rejected(self):
        from repro.experiments import retry_backoff

        with pytest.raises(ValueError, match="attempt"):
            point_seed(11, "blocking", 2, -1)
        with pytest.raises(ValueError, match="attempt"):
            retry_backoff(11, "blocking", 2, -1)

    def test_attempt_zero_ignores_the_replication(self):
        # Common random numbers hold across replications too: attempt 0
        # of every replication extends the one sweep-seeded trajectory.
        for rep in (0, 1, 7):
            assert point_seed(11, "blocking", 2, 0, rep=rep) == 11

    def test_replication_zero_keeps_the_historical_seeds(self):
        # rep=0 must hash exactly as the pre-replication scheme did, so
        # old checkpoints' retry seeds stay reproducible.
        assert point_seed(11, "blocking", 2, 1, rep=0) == point_seed(
            11, "blocking", 2, 1
        )

    def test_retry_seeds_differ_per_replication(self):
        seeds = {
            point_seed(11, "blocking", 2, 1, rep=rep) for rep in range(6)
        }
        assert len(seeds) == 6

    def test_backoff_is_zero_on_the_first_attempt_of_any_rep(self):
        from repro.experiments import retry_backoff

        assert retry_backoff(11, "blocking", 2, 0, rep=3) == 0.0
        assert retry_backoff(11, "blocking", 2, 1, rep=3) > 0.0
