"""Tests for the figure builders (shared sweeps, data extraction)."""

import pytest

from repro.core import RunConfig
from repro.experiments import FigureBuilder
from repro.experiments import figures as figures_module

TINY_RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=0, seed=17)
TINY_MPLS = (5, 25)


@pytest.fixture(scope="module")
def builder():
    return FigureBuilder(run=TINY_RUN, mpls=TINY_MPLS)


class TestFigureBuilder:
    def test_every_figure_function_exists(self):
        for number in range(3, 22):
            assert hasattr(figures_module, f"figure{number}")
            assert callable(getattr(figures_module, f"figure{number}"))

    def test_figure_out_of_range_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.figure(2)
        with pytest.raises(ValueError):
            builder.figure(22)

    def test_figure8_series_structure(self, builder):
        data = builder.figure(8)
        assert data.figure == 8
        assert "1 CPU, 2 Disks" in data.title
        assert set(data.series) == {"throughput"}
        per_alg = data.series["throughput"]
        assert set(per_alg) == {
            "blocking", "immediate_restart", "optimistic"
        }
        for points in per_alg.values():
            assert [mpl for mpl, _, _ in points] == list(TINY_MPLS)
            for _, mean, ci in points:
                assert mean >= 0
                assert ci.n == TINY_RUN.batches

    def test_figures_sharing_experiment_share_sweep(self, builder):
        fig8 = builder.figure(8)
        fig9 = builder.figure(9)
        assert fig8.sweep is fig9.sweep  # one simulation, two figures

    def test_figure9_has_both_utilizations(self, builder):
        data = builder.figure(9)
        assert set(data.series) == {"disk_util", "disk_util_useful"}

    def test_values_and_peak_helpers(self, builder):
        data = builder.figure(8)
        values = data.values("throughput", "blocking")
        assert len(values) == len(TINY_MPLS)
        mpl, peak = data.peak("throughput", "blocking")
        assert peak == max(v for _, v in values)

    def test_describe_mentions_figure(self, builder):
        text = builder.figure(8).describe()
        assert "Figure 8" in text
        assert "blocking" in text

    def test_top_level_figure_function(self):
        # The module-level figure builders are the documented one-call
        # API; exercise one end-to-end with a minimal sweep.
        from repro.core import RunConfig

        data = figures_module.figure8(
            run=RunConfig(batches=1, batch_time=4.0, warmup_batches=0,
                          seed=31),
            mpls=[5],
        )
        assert data.figure == 8
        assert data.values("throughput", "blocking")

    def test_useful_never_exceeds_total_utilization(self, builder):
        data = builder.figure(9)
        for algorithm in data.algorithms():
            total = dict(data.values("disk_util", algorithm))
            useful = dict(data.values("disk_util_useful", algorithm))
            for mpl in total:
                assert useful[mpl] <= total[mpl] + 1e-9
