"""Tests for the sweep runner and its result container."""

import pytest

from repro.core import RunConfig, SimulationParameters
from repro.experiments import ExperimentConfig, run_sweep

TINY_RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=0, seed=11)


def tiny_config(**overrides):
    params = SimulationParameters(
        db_size=200,
        min_size=4,
        max_size=8,
        write_prob=0.25,
        num_terms=10,
        mpl=5,
        ext_think_time=0.5,
        obj_io=0.010,
        obj_cpu=0.005,
        num_cpus=1,
        num_disks=2,
    )
    defaults = dict(
        experiment_id="tiny",
        title="Tiny test sweep",
        figures=(0,),
        params=params,
        algorithms=("blocking", "optimistic"),
        mpls=(2, 5),
        metrics=("throughput",),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestRunSweep:
    def test_all_points_run(self):
        sweep = run_sweep(tiny_config(), run=TINY_RUN)
        assert set(sweep.results) == {
            ("blocking", 2), ("blocking", 5),
            ("optimistic", 2), ("optimistic", 5),
        }
        assert sweep.wall_seconds > 0

    def test_mpl_and_algorithm_restriction(self):
        sweep = run_sweep(
            tiny_config(), run=TINY_RUN, mpls=[5], algorithms=["blocking"]
        )
        assert set(sweep.results) == {("blocking", 5)}

    def test_series_sorted_by_mpl(self):
        sweep = run_sweep(tiny_config(), run=TINY_RUN)
        series = sweep.series("throughput", "blocking")
        assert [mpl for mpl, _, _ in series] == [2, 5]
        for _, mean, ci in series:
            assert mean == pytest.approx(ci.mean)

    def test_peak(self):
        sweep = run_sweep(tiny_config(), run=TINY_RUN)
        mpl, value = sweep.peak("throughput", "blocking")
        assert mpl in (2, 5)
        assert value > 0

    def test_peak_unknown_algorithm_raises(self):
        sweep = run_sweep(tiny_config(), run=TINY_RUN)
        with pytest.raises(KeyError):
            sweep.peak("throughput", "nonesuch")

    def test_progress_callback_invoked(self):
        lines = []
        run_sweep(
            tiny_config(), run=TINY_RUN, mpls=[2],
            algorithms=["blocking"], progress=lines.append,
        )
        assert len(lines) == 1
        assert "tiny" in lines[0]

    def test_seed_override(self):
        a = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                      algorithms=["blocking"])
        b = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2],
                      algorithms=["blocking"], seed=999)
        tps_a = a.result("blocking", 2).throughput
        tps_b = b.result("blocking", 2).throughput
        assert tps_a != tps_b

    def test_accessors(self):
        sweep = run_sweep(tiny_config(), run=TINY_RUN)
        assert sweep.algorithms() == ["blocking", "optimistic"]
        assert sweep.mpls() == [2, 5]
        assert sweep.result("blocking", 2).algorithm == "blocking"


class TestSweepResultEdgeCases:
    def test_empty_sweep_series_and_accessors(self):
        from repro.experiments import SweepResult

        empty = SweepResult(config=tiny_config(), run=TINY_RUN)
        assert empty.series("throughput", "blocking") == []
        assert empty.algorithms() == []
        assert empty.mpls() == []
        assert empty.failed_points() == []
        assert empty.complete  # vacuously: nothing attempted, nothing failed

    def test_empty_sweep_peak_raises(self):
        from repro.experiments import SweepResult

        empty = SweepResult(config=tiny_config(), run=TINY_RUN)
        with pytest.raises(KeyError, match="blocking"):
            empty.peak("throughput", "blocking")

    def test_single_point_sweep(self):
        sweep = run_sweep(tiny_config(), run=TINY_RUN, mpls=[5],
                          algorithms=["blocking"])
        series = sweep.series("throughput", "blocking")
        assert len(series) == 1
        mpl, mean, ci = series[0]
        assert mpl == 5
        assert mean == pytest.approx(ci.mean)
        # With one point, the peak IS that point.
        assert sweep.peak("throughput", "blocking") == (5, mean)
        # Other algorithms are absent, not zero-length-with-data.
        assert sweep.series("throughput", "optimistic") == []
