"""End-to-end tests of the observability plumbing through the
experiments layer: run_sweep diagnostics -> persistence -> CSV export
-> report diagnostics table."""

import csv
import io
import json

import pytest

from repro.core import RunConfig, SimulationParameters
from repro.experiments import (
    ExperimentConfig,
    PointTrace,
    conflict_ratio_table,
    experiment_configs,
    load_sweep,
    run_sweep,
    save_sweep,
    timeseries_to_rows,
    write_timeseries_csv,
)
from repro.experiments.export import TIMESERIES_COLUMNS
from repro.experiments.report import sweep_report
from repro.obs import read_jsonl
from repro.obs.timeseries import SAMPLE_FIELDS

TINY_RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=0, seed=11)


def tiny_config(**overrides):
    params = SimulationParameters(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )
    defaults = dict(
        experiment_id="tiny",
        title="Tiny test sweep",
        figures=(0,),
        params=params,
        algorithms=("blocking",),
        mpls=(2, 5),
        metrics=("throughput",),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def observed_sweep(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("traces")
    sweep = run_sweep(
        tiny_config(), run=TINY_RUN,
        timeseries=1.0,
        trace=PointTrace(
            directory=str(trace_dir), kinds=("submit", "commit")
        ),
    )
    return sweep, trace_dir


class TestRunnerDiagnostics:
    def test_every_point_has_diagnostics(self, observed_sweep):
        sweep, _ = observed_sweep
        for result in sweep.results.values():
            diag = result.diagnostics
            assert diag is not None
            assert diag["timeseries"]["interval"] == 1.0
            series = diag["timeseries"]["series"]
            assert set(series) == set(SAMPLE_FIELDS)
            assert len(series["time"]) > 0

    def test_trace_files_written_per_point(self, observed_sweep):
        sweep, trace_dir = observed_sweep
        names = sorted(p.name for p in trace_dir.iterdir())
        assert names == [
            "tiny.blocking.mpl002.jsonl",
            "tiny.blocking.mpl005.jsonl",
        ]
        for (algorithm, mpl), result in sweep.results.items():
            trace = result.diagnostics["trace"]
            events = read_jsonl(trace["path"])
            assert len(events) == trace["events"] > 0
            assert {e["kind"] for e in events} <= {"submit", "commit"}

    def test_observation_does_not_change_results(self, observed_sweep):
        sweep, _ = observed_sweep
        plain = run_sweep(tiny_config(), run=TINY_RUN)
        for key, observed in sweep.results.items():
            bare = plain.results[key]
            assert observed.totals == bare.totals
            assert observed.summary() == bare.summary()

    def test_validation_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="timeseries"):
            run_sweep(tiny_config(), run=TINY_RUN, timeseries=-1.0)

    def test_plain_sweep_has_no_diagnostics(self):
        sweep = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2])
        for result in sweep.results.values():
            assert result.diagnostics is None


class TestPersistenceRoundTrip:
    def test_diagnostics_survive_save_load(self, tmp_path):
        # load_sweep resolves configs from the registry by id, so the
        # round-trip needs a registered experiment (restricted to one
        # cheap point).
        sweep = run_sweep(
            experiment_configs()["exp2_infinite"],
            run=TINY_RUN, mpls=[5], algorithms=["blocking"],
            timeseries=2.0,
        )
        path = tmp_path / "sweep.json"
        save_sweep(sweep, str(path))
        loaded = load_sweep(str(path))
        for key, original in sweep.results.items():
            assert original.diagnostics is not None
            assert loaded.results[key].diagnostics == original.diagnostics

    def test_document_omits_key_without_diagnostics(self, tmp_path):
        sweep = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2])
        path = tmp_path / "sweep.json"
        save_sweep(sweep, str(path))
        document = json.loads(path.read_text())
        for point in document["points"]:
            assert "diagnostics" not in point


class TestTimeseriesExport:
    def test_rows_cover_all_samples(self, observed_sweep):
        sweep, _ = observed_sweep
        rows = timeseries_to_rows(sweep)
        expected = sum(
            len(r.diagnostics["timeseries"]["series"]["time"])
            for r in sweep.results.values()
        )
        assert len(rows) == expected
        assert set(rows[0]) == set(TIMESERIES_COLUMNS)
        assert {row["algorithm"] for row in rows} == {"blocking"}
        assert {row["mpl"] for row in rows} == {2, 5}

    def test_write_csv(self, observed_sweep, tmp_path):
        sweep, _ = observed_sweep
        path = tmp_path / "ts.csv"
        count = write_timeseries_csv(sweep, str(path))
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == count == len(timeseries_to_rows(sweep))
        assert list(rows[0]) == list(TIMESERIES_COLUMNS)

    def test_file_like_destination(self, observed_sweep):
        sweep, _ = observed_sweep
        buffer = io.StringIO()
        count = write_timeseries_csv(sweep, buffer)
        assert count > 0
        assert buffer.getvalue().startswith(",".join(TIMESERIES_COLUMNS))

    def test_plain_sweep_exports_nothing(self):
        sweep = run_sweep(tiny_config(), run=TINY_RUN, mpls=[2])
        assert timeseries_to_rows(sweep) == []


class TestConflictRatioTable:
    def test_table_contents(self, observed_sweep):
        sweep, _ = observed_sweep
        table = conflict_ratio_table(sweep)
        assert "blocks/commit" in table
        assert "restarts/commit" in table
        assert "blocking" in table
        for result in sweep.results.values():
            totals = result.totals
            ratio = totals["blocks"] / totals["commits"]
            assert f"{ratio:.2f}" in table

    def test_table_rides_in_sweep_report(self, observed_sweep):
        sweep, _ = observed_sweep
        report = sweep_report(sweep, with_plots=False)
        assert "blocks/commit" in report
