"""Tests for experiment presets and the figure index."""

from repro.cc import PAPER_ALGORITHMS
from repro.core import PAPER_MPLS
from repro.experiments import FIGURE_INDEX, experiment_configs
from repro.experiments.figures import FIGURE_TITLES


class TestConfigs:
    def test_all_experiments_present(self):
        configs = experiment_configs()
        assert set(configs) == {
            "exp1_low_conflict_infinite",
            "exp1_low_conflict_finite",
            "exp2_infinite",
            "exp3_finite",
            "exp3_adaptive_delay",
            "exp4_5cpu_10disk",
            "exp4_25cpu_50disk",
            "exp5_think_1s",
            "exp5_think_5s",
            "exp5_think_10s",
            "exp6_disk_faults",
            "exp7_buffered",
            "exp8_skewed_disks",
            "exp9_open_poisson",
            "exp10_heavy_tailed",
            "exp11_sharded",
            "exp12_replica_reads",
        }

    def test_every_paper_figure_covered(self):
        # Figures 3 through 21, no gaps.
        assert sorted(FIGURE_INDEX) == list(range(3, 22))
        assert sorted(FIGURE_TITLES) == list(range(3, 22))
        covered = set()
        for config in experiment_configs().values():
            covered.update(config.figures)
        assert covered == set(range(3, 22))

    def test_figure_index_points_to_real_experiments(self):
        configs = experiment_configs()
        for figure, (experiment_id, metrics) in FIGURE_INDEX.items():
            assert experiment_id in configs
            config = configs[experiment_id]
            assert figure in config.figures
            for metric in metrics:
                assert metric in config.metrics

    def test_default_sweep_matches_paper(self):
        # Every preset that regenerates a paper figure sweeps the
        # paper's algorithms and mpls; extensions (exp6) may differ.
        for config in experiment_configs().values():
            if not config.figures:
                continue
            assert config.algorithms == PAPER_ALGORITHMS
            assert config.mpls == PAPER_MPLS

    def test_disk_fault_experiment(self):
        config = experiment_configs()["exp6_disk_faults"]
        assert config.params.faults is not None
        assert config.params.faults.disk is not None
        assert config.params.num_disks is not None
        assert set(config.algorithms) == {"blocking", "optimistic"}

    def test_resource_model_experiments(self):
        configs = experiment_configs()
        exp7 = configs["exp7_buffered"]
        assert exp7.params.resource_model == "buffered"
        assert exp7.params.buffer_policy == "lru"
        assert exp7.params.buffer_capacity == 250

        exp8 = configs["exp8_skewed_disks"]
        assert exp8.params.resource_model == "skewed_disks"
        assert exp8.params.disk_placement == "contiguous"
        assert exp8.params.has_hotspot
        assert exp8.params.num_disks is not None

        # The paper presets all run the classic physical tier.
        for config in configs.values():
            if config.figures:
                assert config.params.resource_model == "classic"

    def test_experiment_parameters_match_paper(self):
        configs = experiment_configs()
        exp1 = configs["exp1_low_conflict_infinite"]
        assert exp1.params.db_size == 10_000
        assert exp1.params.infinite_resources

        exp2 = configs["exp2_infinite"]
        assert exp2.params.db_size == 1000
        assert exp2.params.infinite_resources

        exp3 = configs["exp3_finite"]
        assert exp3.params.num_cpus == 1
        assert exp3.params.num_disks == 2

        fig11 = configs["exp3_adaptive_delay"]
        assert fig11.params.restart_delay_mode == "adaptive_all"

        exp4a = configs["exp4_5cpu_10disk"]
        assert (exp4a.params.num_cpus, exp4a.params.num_disks) == (5, 10)
        exp4b = configs["exp4_25cpu_50disk"]
        assert (exp4b.params.num_cpus, exp4b.params.num_disks) == (25, 50)

    def test_interactive_think_ratios(self):
        # The paper raises external think to 3/11/21 s to keep the ratio
        # of thinking to active transactions roughly constant.
        configs = experiment_configs()
        for exp_id, internal, external in [
            ("exp5_think_1s", 1.0, 3.0),
            ("exp5_think_5s", 5.0, 11.0),
            ("exp5_think_10s", 10.0, 21.0),
        ]:
            params = configs[exp_id].params
            assert params.int_think_time == internal
            assert params.ext_think_time == external
            assert params.num_cpus == 1 and params.num_disks == 2

    def test_params_for_overrides_mpl(self):
        config = experiment_configs()["exp3_finite"]
        assert config.params_for(75).mpl == 75
        # base untouched
        assert config.params.mpl != 75 or True
