"""Unit tests for the harness-level chaos primitives.

The recovery suite (tests/experiments/test_recovery.py) proves the
end-to-end guarantees; these tests pin the primitives themselves:
one-shot marker semantics, SIGKILL delivery, deterministic file
corruption, and the fsync patch's restore discipline.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.chaos import ChaosSpec, FlakyFsync, garble_tail, truncate_tail
from repro.experiments import persistence

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="SIGKILL delivery is asserted on forked children",
)


def _touch_after_chaos(spec, algorithm, mpl, witness):
    spec.on_point_start(algorithm, mpl)
    with open(witness, "w") as f:
        f.write("survived")


class TestChaosSpec:
    def test_no_planned_faults_is_inert(self, tmp_path):
        spec = ChaosSpec(state_dir=str(tmp_path))
        spec.on_point_start("blocking", 2)  # must simply return
        assert os.listdir(tmp_path) == []

    def test_unmatched_points_do_not_trip(self, tmp_path):
        spec = ChaosSpec(
            state_dir=str(tmp_path), kill_point=("optimistic", 5)
        )
        spec.on_point_start("blocking", 5)
        spec.on_point_start("optimistic", 2)
        assert os.listdir(tmp_path) == []

    @FORK_ONLY
    def test_kill_point_sigkills_once_then_arms_off(self, tmp_path):
        spec = ChaosSpec(
            state_dir=str(tmp_path / "state"),
            kill_point=("blocking", 2),
        )
        witness = str(tmp_path / "witness")
        first = multiprocessing.Process(
            target=_touch_after_chaos,
            args=(spec, "blocking", 2, witness),
        )
        first.start()
        first.join(30.0)
        assert first.exitcode == -signal.SIGKILL
        assert not os.path.exists(witness)  # died before the write
        assert os.path.exists(spec.marker_path("kill", "blocking", 2))
        # The marker makes the fault one-shot: the retry survives.
        second = multiprocessing.Process(
            target=_touch_after_chaos,
            args=(spec, "blocking", 2, witness),
        )
        second.start()
        second.join(30.0)
        assert second.exitcode == 0
        assert os.path.exists(witness)

    def test_hang_point_sleeps_once(self, tmp_path):
        spec = ChaosSpec(
            state_dir=str(tmp_path), hang_point=("blocking", 2),
            hang_seconds=0.2,
        )
        started = time.perf_counter()
        spec.on_point_start("blocking", 2)
        assert time.perf_counter() - started >= 0.2
        started = time.perf_counter()
        spec.on_point_start("blocking", 2)  # marker exists: no sleep
        assert time.perf_counter() - started < 0.2

    def test_spec_pickles(self, tmp_path):
        import pickle

        spec = ChaosSpec(
            state_dir=str(tmp_path), kill_point=("blocking", 2),
            hang_point=("optimistic", 5), hang_seconds=1.0,
        )
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_describe_names_the_faults(self, tmp_path):
        spec = ChaosSpec(
            state_dir=str(tmp_path), kill_point=("blocking", 2)
        )
        assert "kill=blocking@2" in spec.describe()
        assert ChaosSpec(state_dir=str(tmp_path)).describe() == (
            "chaos(null)"
        )


class TestStorageChaos:
    def test_truncate_tail_chops_exactly(self, tmp_path):
        path = str(tmp_path / "f")
        with open(path, "wb") as f:
            f.write(b"0123456789")
        assert truncate_tail(path, 4) == 6
        with open(path, "rb") as f:
            assert f.read() == b"012345"

    def test_truncate_past_start_empties(self, tmp_path):
        path = str(tmp_path / "f")
        with open(path, "wb") as f:
            f.write(b"abc")
        assert truncate_tail(path, 99) == 0
        assert os.path.getsize(path) == 0

    def test_garble_tail_is_deterministic_and_never_a_noop(
            self, tmp_path):
        original = b"x" * 64
        damaged = []
        for index in range(2):
            path = str(tmp_path / f"f{index}")
            with open(path, "wb") as f:
                f.write(original)
            assert garble_tail(path, 16, seed=7) == 16
            with open(path, "rb") as f:
                damaged.append(f.read())
        assert damaged[0] == damaged[1]  # same seed, same damage
        assert damaged[0][:48] == original[:48]
        # Every garbled byte actually changed (the mask is never 0).
        assert all(
            damaged[0][i] != original[i] for i in range(48, 64)
        )

    def test_garble_respects_file_size(self, tmp_path):
        path = str(tmp_path / "f")
        with open(path, "wb") as f:
            f.write(b"abc")
        assert garble_tail(path, 99, seed=1) == 3


class TestFlakyFsync:
    def test_patches_and_restores_the_seam(self, tmp_path):
        original = persistence._fsync
        with FlakyFsync(failures=2) as flaky:
            assert persistence._fsync is not original
            with pytest.raises(OSError):
                persistence.atomic_write_text(
                    str(tmp_path / "a"), "x"
                )
            with pytest.raises(OSError):
                persistence.atomic_write_text(
                    str(tmp_path / "b"), "x"
                )
            # Third call passes through to the real fsync.
            persistence.atomic_write_text(str(tmp_path / "c"), "x")
        assert persistence._fsync is original
        assert flaky.calls == 3
        assert not os.path.exists(str(tmp_path / "a"))
        assert os.path.exists(str(tmp_path / "c"))

    def test_restores_on_exception(self):
        original = persistence._fsync
        with pytest.raises(RuntimeError):
            with FlakyFsync():
                raise RuntimeError("boom")
        assert persistence._fsync is original
