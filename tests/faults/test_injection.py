"""Tests for fault injection wired through the full system model.

The acceptance bar: fault-injected runs are bit-reproducible for a
fixed seed, and a null spec reproduces the healthy run unchanged.
"""

import pytest

from repro.cc.errors import REASON_ACCESS_FAULT
from repro.core import RunConfig, SimulationParameters, run_simulation
from repro.core.engine import SystemModel
from repro.faults import (
    AccessFaultSpec,
    CpuDegradationSpec,
    DiskFaultSpec,
    FaultSpec,
)

RUN = RunConfig(batches=3, batch_time=8.0, warmup_batches=0, seed=17)


def params(**overrides):
    base = dict(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )
    base.update(overrides)
    return SimulationParameters(**base)


FULL_SPEC = FaultSpec(
    disk=DiskFaultSpec(mttf=6.0, mttr=1.0),
    cpu=CpuDegradationSpec(mean_interval=6.0, mean_duration=2.0, factor=2.0),
    access=AccessFaultSpec(prob=0.01),
)


class TestNullSpecInert:
    def test_null_spec_matches_healthy_run_exactly(self):
        healthy = run_simulation(params(), "blocking", RUN)
        null = run_simulation(
            params(faults=FaultSpec()), "blocking", RUN
        )
        assert healthy.totals == null.totals

    def test_zero_rate_access_spec_matches_healthy_run(self):
        healthy = run_simulation(params(), "optimistic", RUN)
        null = run_simulation(
            params(faults=FaultSpec(access=AccessFaultSpec(prob=0.0))),
            "optimistic", RUN,
        )
        assert healthy.totals == null.totals

    def test_null_spec_starts_no_injector(self):
        model = SystemModel(params(faults=FaultSpec()), seed=1)
        assert model.fault_injector is None
        assert model.physical.faults is None


class TestReproducibility:
    def test_same_seed_same_metrics(self):
        a = run_simulation(params(faults=FULL_SPEC), "blocking", RUN)
        b = run_simulation(params(faults=FULL_SPEC), "blocking", RUN)
        assert a.totals == b.totals
        assert a.mean("throughput") == b.mean("throughput")

    def test_different_seed_differs(self):
        a = run_simulation(params(faults=FULL_SPEC), "blocking", RUN)
        b = run_simulation(
            params(faults=FULL_SPEC), "blocking", RUN, seed=999
        )
        assert a.totals != b.totals


class TestDiskFaults:
    SPEC = FaultSpec(disk=DiskFaultSpec(mttf=4.0, mttr=1.0))

    def test_failures_counted_and_downtime_accrues(self):
        result = run_simulation(params(faults=self.SPEC), "blocking", RUN)
        faults = result.totals["faults"]
        assert faults["disk_failures"] > 0
        assert faults["disk_downtime"] > 0.0

    def test_downtime_reduces_throughput(self):
        healthy = run_simulation(params(), "blocking", RUN)
        faulted = run_simulation(
            params(faults=self.SPEC), "blocking", RUN
        )
        assert (faulted.totals["commits"] < healthy.totals["commits"])

    def test_disk_faults_require_finite_disks(self):
        with pytest.raises(ValueError, match="finite disks"):
            params(num_disks=None, faults=self.SPEC)


class TestCpuDegradation:
    SPEC = FaultSpec(
        cpu=CpuDegradationSpec(mean_interval=3.0, mean_duration=2.0,
                               factor=4.0)
    )

    def test_windows_counted(self):
        result = run_simulation(params(faults=self.SPEC), "blocking", RUN)
        faults = result.totals["faults"]
        assert faults["cpu_degradations"] > 0
        assert faults["cpu_degraded_time"] > 0.0

    def test_degradation_slows_the_system(self):
        healthy = run_simulation(params(), "blocking", RUN)
        degraded = run_simulation(
            params(faults=self.SPEC), "blocking", RUN
        )
        assert (
            degraded.totals["response_time_overall_mean"]
            > healthy.totals["response_time_overall_mean"]
        )


class TestAccessFaults:
    SPEC = FaultSpec(access=AccessFaultSpec(prob=0.02))

    def test_faults_force_restarts_with_reason(self):
        result = run_simulation(params(faults=self.SPEC), "blocking", RUN)
        faults = result.totals["faults"]
        assert faults["access_faults"] > 0
        reasons = result.totals["restart_reasons"]
        assert reasons.get(REASON_ACCESS_FAULT, 0) == faults["access_faults"]

    def test_faulted_transactions_still_commit_eventually(self):
        # The workload is closed: every restarted transaction re-runs
        # with the same read/write sets, so commits keep flowing.
        result = run_simulation(params(faults=self.SPEC), "blocking", RUN)
        assert result.totals["commits"] > 0

    def test_noop_algorithm_restarts_only_from_faults(self):
        # noop never restarts on its own, so every restart observed is
        # fault-injected: the restart plumbing works without any CC.
        result = run_simulation(params(faults=self.SPEC), "noop", RUN)
        reasons = result.totals["restart_reasons"]
        assert set(reasons) <= {REASON_ACCESS_FAULT}
        assert result.totals["restarts"] == reasons.get(
            REASON_ACCESS_FAULT, 0
        )


class TestParamsValidation:
    def test_faults_must_be_a_spec(self):
        with pytest.raises(TypeError):
            params(faults={"disk": "nope"})

    def test_spec_survives_with_changes(self):
        p = params(faults=FULL_SPEC)
        q = p.with_changes(mpl=7)
        assert q.faults == FULL_SPEC
