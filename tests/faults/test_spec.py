"""Tests for the declarative fault specifications and scenarios."""

import pytest

from repro.faults import (
    SCENARIOS,
    AccessFaultSpec,
    CpuDegradationSpec,
    DiskFaultSpec,
    FaultSpec,
    register_scenario,
    scenario,
    scenario_names,
)


class TestSpecValidation:
    def test_disk_rates_positive(self):
        with pytest.raises(ValueError):
            DiskFaultSpec(mttf=0.0)
        with pytest.raises(ValueError):
            DiskFaultSpec(mttr=-1.0)

    def test_cpu_rates_positive(self):
        with pytest.raises(ValueError):
            CpuDegradationSpec(mean_interval=0.0)
        with pytest.raises(ValueError):
            CpuDegradationSpec(mean_duration=-2.0)

    def test_cpu_factor_must_slow_down(self):
        with pytest.raises(ValueError):
            CpuDegradationSpec(factor=1.0)
        with pytest.raises(ValueError):
            CpuDegradationSpec(factor=0.5)

    def test_access_prob_bounds(self):
        with pytest.raises(ValueError):
            AccessFaultSpec(prob=-0.1)
        with pytest.raises(ValueError):
            AccessFaultSpec(prob=1.5)
        AccessFaultSpec(prob=0.0)
        AccessFaultSpec(prob=1.0)


class TestNullness:
    def test_empty_spec_is_null(self):
        assert FaultSpec().is_null

    def test_zero_rate_access_is_null(self):
        assert FaultSpec(access=AccessFaultSpec(prob=0.0)).is_null

    def test_any_component_makes_non_null(self):
        assert not FaultSpec(disk=DiskFaultSpec()).is_null
        assert not FaultSpec(cpu=CpuDegradationSpec()).is_null
        assert not FaultSpec(access=AccessFaultSpec(prob=0.01)).is_null

    def test_describe(self):
        assert FaultSpec().describe() == "no faults"
        text = FaultSpec(
            disk=DiskFaultSpec(mttf=60, mttr=5),
            access=AccessFaultSpec(prob=0.01),
        ).describe()
        assert "mttf=60" in text and "p=0.01" in text


class TestScenarios:
    def test_names_sorted_and_known(self):
        names = scenario_names()
        assert names == sorted(names)
        assert "disk_crash" in names
        assert "none" in names

    def test_lookup(self):
        spec = scenario("disk_crash")
        assert spec.disk is not None

    def test_none_scenario_is_null(self):
        assert scenario("none").is_null

    def test_unknown_scenario_lists_choices(self):
        with pytest.raises(ValueError, match="disk_crash"):
            scenario("nonesuch")

    def test_register_scenario(self):
        spec = FaultSpec(access=AccessFaultSpec(prob=0.5))
        try:
            register_scenario("test_only_scenario", spec)
            assert scenario("test_only_scenario") is spec
        finally:
            SCENARIOS.pop("test_only_scenario", None)

    def test_register_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            register_scenario("", FaultSpec())
        with pytest.raises(TypeError):
            register_scenario("x", "not a spec")
