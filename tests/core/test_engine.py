"""Integration tests for the closed queuing model engine."""

import pytest

from repro.core import (
    RunConfig,
    SimulationParameters,
    SystemModel,
    run_simulation,
)


def small_params(**overrides):
    base = dict(
        db_size=200,
        min_size=4,
        max_size=8,
        write_prob=0.25,
        num_terms=10,
        mpl=5,
        ext_think_time=0.5,
        obj_io=0.010,
        obj_cpu=0.005,
        num_cpus=1,
        num_disks=2,
    )
    base.update(overrides)
    return SimulationParameters(**base)


class TestAdmissionControl:
    def test_active_count_never_exceeds_mpl(self):
        model = SystemModel(small_params(mpl=3), "blocking", seed=2)
        violations = []

        def probe(env):
            while env.now < 20.0:
                if model.active_count > model.params.mpl:
                    violations.append((env.now, model.active_count))
                yield env.timeout(0.01)

        model.env.process(probe(model.env))
        model.run_until(20.0)
        assert violations == []

    def test_ready_queue_drains_into_slots(self):
        model = SystemModel(small_params(mpl=2, num_terms=10), "blocking")
        model.run_until(30.0)
        # With 10 terminals and mpl=2 there must have been queueing, yet
        # commits keep happening.
        assert model.metrics.commits.total > 10

    def test_mpl_of_one_serializes_everything(self):
        model = SystemModel(
            small_params(mpl=1, write_prob=0.5), "blocking", seed=3
        )
        model.run_until(40.0)
        assert model.metrics.commits.total > 0
        assert model.metrics.blocks.total == 0
        assert model.metrics.restarts.total == 0

    def test_mpl_limit_is_adjustable_at_runtime(self):
        model = SystemModel(small_params(mpl=5), "blocking", seed=4)
        model.run_until(5.0)
        model.mpl_limit = 1
        model.run_until(30.0)
        assert model.active_count <= 5  # old actives drained, no overshoot
        model.run_until(60.0)
        assert model.active_count <= 1


class TestTransactionFlow:
    def test_commits_happen_and_are_counted(self):
        model = SystemModel(small_params(), "blocking", seed=5)
        model.run_until(30.0)
        assert model.metrics.commits.total > 20

    def test_committed_history_records(self):
        model = SystemModel(
            small_params(), "blocking", seed=5, record_history=True
        )
        model.run_until(20.0)
        history = model.committed_history
        # History records are cut at the commit point, so at the run
        # cutoff a few transactions may be recorded but still finishing
        # their deferred updates.
        completed = model.metrics.commits.total
        assert completed <= len(history) <= completed + model.params.mpl
        for record in history:
            assert record.write_set <= set(record.read_set)
            assert record.serial_key is not None
            assert record.commit_time is not None

    def test_no_history_by_default(self):
        model = SystemModel(small_params(), "blocking")
        assert model.committed_history is None

    def test_response_times_positive_and_sane(self):
        model = SystemModel(small_params(), "blocking", seed=6)
        model.run_until(30.0)
        stats = model.metrics.response_times
        assert stats.count > 0
        assert stats.min > 0.0
        # A transaction of at most 8 reads + writes cannot take less than
        # its raw service demand.
        assert stats.min >= 8 * 0.0  # loose lower bound, non-negative
        assert stats.mean < 30.0

    def test_restarted_transactions_replay_same_sets(self):
        params = small_params(
            db_size=20, write_prob=0.8, mpl=8, num_terms=8
        )
        model = SystemModel(params, "blocking", seed=7, record_history=True)
        model.run_until(60.0)
        restarted = [
            record for record in model.committed_history
            if record.attempts > 1
        ]
        assert restarted, "expected deadlock restarts in this configuration"
        assert model.metrics.restarts.total > 0

    def test_interactive_think_time_increases_response(self):
        fast = SystemModel(small_params(), "blocking", seed=8)
        fast.run_until(40.0)
        slow = SystemModel(
            small_params(int_think_time=2.0, ext_think_time=3.0),
            "blocking",
            seed=8,
        )
        slow.run_until(40.0)
        assert (
            slow.metrics.response_times.mean
            > fast.metrics.response_times.mean + 1.0
        )

    def test_read_only_transactions_commit(self):
        model = SystemModel(
            small_params(write_prob=0.0), "optimistic", seed=9,
            record_history=True,
        )
        model.run_until(20.0)
        assert model.metrics.commits.total > 0
        assert all(
            not record.write_set for record in model.committed_history
        )
        # Nothing is ever installed by read-only transactions.
        assert model.store.installs == 0


class TestRestartDelays:
    def test_immediate_restart_applies_delay(self):
        params = small_params(db_size=30, write_prob=0.8, mpl=8)
        model = SystemModel(params, "immediate_restart", seed=10)
        delayed = []
        original = model._delayed_resubmit

        def spying(tx, delay):
            delayed.append(delay)
            return original(tx, delay)

        model._delayed_resubmit = spying
        model.run_until(40.0)
        assert model.metrics.restarts.total > 0
        assert delayed, "immediate-restart must delay its restarts"
        assert all(d > 0 for d in delayed)

    def test_blocking_restarts_without_delay_by_default(self):
        params = small_params(db_size=20, write_prob=0.8, mpl=8)
        model = SystemModel(params, "blocking", seed=11)
        delayed = []
        original = model._delayed_resubmit

        def spying(tx, delay):
            delayed.append(delay)
            return original(tx, delay)

        model._delayed_resubmit = spying
        model.run_until(60.0)
        assert model.metrics.restarts.total > 0
        assert delayed == []

    def test_adaptive_all_mode_delays_blocking_too(self):
        params = small_params(
            db_size=20, write_prob=0.8, mpl=8,
            restart_delay_mode="adaptive_all",
        )
        model = SystemModel(params, "blocking", seed=11)
        delayed = []
        original = model._delayed_resubmit

        def spying(tx, delay):
            delayed.append(delay)
            return original(tx, delay)

        model._delayed_resubmit = spying
        model.run_until(60.0)
        assert model.metrics.restarts.total > 0
        assert delayed

    def test_none_all_mode_never_delays(self):
        # Use blocking: its zero-delay restarts (deadlock victims) make
        # progress, unlike requester-restarting algorithms which would
        # livelock without a delay (see test below).
        params = small_params(
            db_size=20, write_prob=0.8, mpl=8,
            restart_delay_mode="none_all",
        )
        model = SystemModel(params, "blocking", seed=12)
        delayed = []
        model._delayed_resubmit = lambda tx, d: delayed.append(d)
        model.run_until(60.0)
        assert model.metrics.restarts.total > 0
        assert delayed == []

    def test_zero_delay_requester_restarts_detected_as_livelock(self):
        # immediate-restart with its delay stripped re-conflicts forever
        # at one instant; the engine must diagnose this loudly rather
        # than hang — the paper's rationale for the restart delay.
        params = small_params(
            db_size=10, write_prob=1.0, mpl=8,
            restart_delay_mode="none_all",
        )
        model = SystemModel(params, "immediate_restart", seed=13)
        with pytest.raises(RuntimeError, match="no restart delay"):
            model.run_until(60.0)

    def test_fixed_all_mode_uses_configured_mean(self):
        params = small_params(
            db_size=30, write_prob=0.8, mpl=8,
            restart_delay_mode="fixed_all", restart_delay=0.25,
        )
        model = SystemModel(params, "immediate_restart", seed=13)
        delays = []
        original = model._delayed_resubmit

        def spying(tx, delay):
            delays.append(delay)
            return original(tx, delay)

        model._delayed_resubmit = spying
        model.run_until(120.0)
        assert len(delays) > 10
        mean = sum(delays) / len(delays)
        assert 0.05 < mean < 1.0  # exponential around 0.25


class TestConservation:
    @pytest.mark.parametrize("algorithm", ["blocking", "optimistic"])
    def test_transaction_accounting_balances(self, algorithm):
        model = SystemModel(small_params(), algorithm, seed=14)
        model.run_until(30.0)
        generated = model.workload.generated
        commits = model.metrics.commits.total
        # Every generated transaction is committed, in flight, or queued;
        # commits can never exceed the number generated.
        assert commits <= generated
        in_system = model.active_count + len(model.ready_queue)
        assert in_system <= model.params.num_terms

    def test_store_installs_match_committed_writes(self):
        model = SystemModel(
            small_params(), "blocking", seed=15, record_history=True
        )
        model.run_until(30.0)
        expected = sum(
            len(record.installed_writes)
            for record in model.committed_history
        )
        assert model.store.installs == expected


class TestSameInstantRestartTracker:
    """The zero-delay restart tracker must not leak across commits.

    Entries are added when a transaction restarts with no delay at the
    instant its attempt began; before the fix they were only removed on
    a *later-instant* restart, so a transaction whose final zero-delay
    restart was same-instant leaked its entry forever once it
    committed — unbounded growth over a long campaign.
    """

    def contended_none_all_params(self):
        # Contended enough for same-instant zero-delay restarts, calm
        # enough (with this seed) to stay under the livelock limit.
        return small_params(
            db_size=60, write_prob=0.5, mpl=6,
            restart_delay_mode="none_all",
        )

    def test_tracker_entries_do_not_survive_commit(self):
        model = SystemModel(
            self.contended_none_all_params(), "immediate_restart",
            seed=7, record_history=True,
        )
        model.run_until(40.0)
        committed = {r.tx_id for r in model.committed_history}
        assert committed  # the scenario actually commits work
        # The run must have exercised the zero-delay restart path at
        # all, or this test guards nothing.
        assert model.metrics.restarts.total > 0
        # No committed transaction may retain a tracker entry; any
        # survivors belong to transactions still in flight.
        assert not set(model._same_instant_restarts) & committed

    def test_tracker_stays_empty_without_zero_delay_restarts(self):
        result = run_simulation(
            small_params(), algorithm="blocking",
            run=RunConfig(batches=2, batch_time=10.0, warmup_batches=0,
                          seed=4),
            record_history=True,
        )
        assert result.model._same_instant_restarts == {}

    def test_delayed_resubmit_clears_tracker_entry(self):
        from types import SimpleNamespace

        model = SystemModel(small_params(), "blocking", seed=5)
        tx = SimpleNamespace(id=12345)
        model._same_instant_restarts[tx.id] = 3
        model.env.process(model._delayed_resubmit(tx, delay=50.0))
        # The entry is dropped when the resubmit process starts, long
        # before the delay elapses (the delay itself broke the streak).
        model.run_until(1.0)
        assert tx.id not in model._same_instant_restarts
