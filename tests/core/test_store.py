"""Tests for the versioned object store."""

from repro.core import ObjectStore


class TestObjectStore:
    def test_read_of_unwritten_object_is_initial(self):
        store = ObjectStore()
        version = store.read(1)
        assert version.writer_id is None

    def test_latest_read_by_default(self):
        store = ObjectStore()
        store.install(1, (1.0, 0), writer_id=10, now=1.0)
        store.install(1, (2.0, 1), writer_id=20, now=2.0)
        assert store.read(1).writer_id == 20

    def test_read_with_key_selects_version(self):
        store = ObjectStore()
        store.install(1, (1.0, 0), writer_id=10, now=1.0)
        store.install(1, (3.0, 1), writer_id=30, now=3.0)
        assert store.read(1, reader_key=(2.0, 99)).writer_id == 10
        assert store.read(1, reader_key=(3.5, 0)).writer_id == 30
        assert store.read(1, reader_key=(0.5, 0)).writer_id is None

    def test_out_of_order_install_sorted(self):
        store = ObjectStore()
        store.install(1, (5.0, 0), writer_id=50, now=5.0)
        store.install(1, (2.0, 0), writer_id=20, now=6.0)
        assert store.read(1).writer_id == 50
        assert store.read(1, reader_key=(3.0, 0)).writer_id == 20

    def test_final_state(self):
        store = ObjectStore()
        store.install(1, (1.0, 0), writer_id=10, now=1.0)
        store.install(2, (2.0, 0), writer_id=20, now=2.0)
        store.install(1, (3.0, 0), writer_id=30, now=3.0)
        assert store.final_state() == {1: 30, 2: 20}
        assert store.latest_writer(1) == 30
        assert store.latest_writer(9) is None
        assert store.installs == 3
