"""Tests for SimulationParameters (Table 1/2) and RunConfig."""

import pytest

from repro.core import (
    PAPER_MPLS,
    RunConfig,
    SimulationParameters,
)


class TestTable2:
    def test_matches_paper_values(self):
        p = SimulationParameters.table2()
        assert p.db_size == 1000
        assert p.min_size == 4
        assert p.max_size == 12
        assert p.tran_size == 8.0
        assert p.write_prob == 0.25
        assert p.num_terms == 200
        assert p.ext_think_time == 1.0
        assert p.obj_io == 0.035
        assert p.obj_cpu == 0.015
        assert p.num_cpus == 1
        assert p.num_disks == 2

    def test_paper_mpl_sweep(self):
        assert PAPER_MPLS == (5, 10, 25, 50, 75, 100, 200)

    def test_overrides(self):
        p = SimulationParameters.table2(mpl=50, db_size=10_000)
        assert p.mpl == 50
        assert p.db_size == 10_000
        assert p.obj_io == 0.035


class TestValidation:
    def test_defaults_valid(self):
        SimulationParameters()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("db_size", 0),
            ("min_size", 0),
            ("write_prob", 1.5),
            ("write_prob", -0.1),
            ("num_terms", 0),
            ("mpl", 0),
            ("ext_think_time", -1.0),
            ("obj_io", -0.001),
            ("num_cpus", 0),
            ("num_disks", -2),
            ("restart_delay_mode", "sometimes"),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            SimulationParameters(**{field: value})

    def test_rejects_min_above_max(self):
        with pytest.raises(ValueError):
            SimulationParameters(min_size=10, max_size=5)

    def test_rejects_tran_bigger_than_db(self):
        with pytest.raises(ValueError):
            SimulationParameters(db_size=10, min_size=4, max_size=12)

    def test_frozen(self):
        p = SimulationParameters()
        with pytest.raises(AttributeError):
            p.mpl = 99

    def test_with_changes_revalidates(self):
        p = SimulationParameters()
        assert p.with_changes(mpl=77).mpl == 77
        with pytest.raises(ValueError):
            p.with_changes(mpl=0)


class TestDerived:
    def test_infinite_resources_flag(self):
        p = SimulationParameters(num_cpus=None, num_disks=None)
        assert p.infinite_resources
        assert not SimulationParameters().infinite_resources
        assert not SimulationParameters(num_cpus=None).infinite_resources

    def test_expected_service_time(self):
        p = SimulationParameters.table2()
        # 8 * (0.035 + 0.015) + 8 * 0.25 * (0.015 + 0.035) = 0.4 + 0.1
        assert p.expected_service_time() == pytest.approx(0.5)

    def test_expected_service_time_includes_think(self):
        p = SimulationParameters.table2(int_think_time=5.0)
        assert p.expected_service_time() == pytest.approx(5.5)

    def test_describe_lists_fields(self):
        text = SimulationParameters().describe()
        assert "db_size" in text
        assert "write_prob" in text


class TestRunConfig:
    def test_defaults(self):
        run = RunConfig()
        assert run.batches == 20
        assert run.confidence == 0.90

    def test_total_time(self):
        run = RunConfig(batches=20, batch_time=30.0, warmup_batches=2)
        assert run.total_time == pytest.approx(660.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("batches", 0),
            ("batch_time", 0.0),
            ("warmup_batches", -1),
            ("confidence", 0.0),
            ("confidence", 1.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            RunConfig(**{field: value})

    def test_with_changes(self):
        assert RunConfig().with_changes(seed=7).seed == 7
