"""Tests for the physical resource model (CPU pool + partitioned disks)."""

import pytest

from repro.core import SimulationParameters
from repro.resources import CC_PRIORITY, PhysicalModel
from repro.core.transaction import Transaction
from repro.des import Environment, InfiniteResource, Resource, StreamFactory


def build(num_cpus=1, num_disks=2, **overrides):
    params = SimulationParameters.table2(
        num_cpus=num_cpus, num_disks=num_disks, **overrides
    )
    env = Environment()
    physical = PhysicalModel(env, params, StreamFactory(5))
    return env, physical, params


def tx():
    return Transaction(1, 0, read_set=(1,), write_set=())


class TestConstruction:
    def test_finite_resources(self):
        _, physical, _ = build(num_cpus=3, num_disks=4)
        assert isinstance(physical.cpu, Resource)
        assert physical.cpu.capacity == 3
        assert len(physical.disks) == 4
        assert physical.disk_tracker.capacity == 4

    def test_infinite_resources(self):
        _, physical, _ = build(num_cpus=None, num_disks=None)
        assert isinstance(physical.cpu, InfiniteResource)
        assert isinstance(physical.disks[0], InfiniteResource)


class TestServiceTimes:
    def test_read_access_takes_io_plus_cpu(self):
        env, physical, params = build()
        t = tx()

        def proc(env):
            yield from physical.read_access(t)
            return env.now

        done = env.process(proc(env))
        assert env.run(until=done) == pytest.approx(
            params.obj_io + params.obj_cpu
        )
        assert t.attempt_disk_time == pytest.approx(params.obj_io)
        assert t.attempt_cpu_time == pytest.approx(params.obj_cpu)

    def test_write_request_is_cpu_only(self):
        env, physical, params = build()
        t = tx()

        def proc(env):
            yield from physical.write_request_work(t)
            return env.now

        done = env.process(proc(env))
        assert env.run(until=done) == pytest.approx(params.obj_cpu)
        assert t.attempt_disk_time == 0.0

    def test_deferred_update_is_io_only(self):
        env, physical, params = build()
        t = tx()

        def proc(env):
            yield from physical.deferred_update(t)
            return env.now

        done = env.process(proc(env))
        assert env.run(until=done) == pytest.approx(params.obj_io)
        assert t.attempt_cpu_time == 0.0

    def test_cc_request_free_by_default(self):
        env, physical, _ = build()
        t = tx()

        def proc(env):
            yield from physical.cc_request_work(t)
            return env.now

        done = env.process(proc(env))
        assert env.run(until=done) == 0.0

    def test_cc_request_charged_when_configured(self):
        env, physical, params = build(cc_cpu=0.005)
        t = tx()

        def proc(env):
            yield from physical.cc_request_work(t)
            return env.now

        done = env.process(proc(env))
        assert env.run(until=done) == pytest.approx(0.005)


class TestQueueing:
    def test_single_cpu_serializes(self):
        env, physical, params = build(num_cpus=1)
        finish_times = []

        def proc(env, t):
            yield from physical.cpu_service(t, 0.010)
            finish_times.append(env.now)

        for _ in range(3):
            env.process(proc(env, tx()))
        env.run()
        assert finish_times == pytest.approx([0.010, 0.020, 0.030])

    def test_multi_cpu_parallel(self):
        env, physical, _ = build(num_cpus=3)
        finish_times = []

        def proc(env, t):
            yield from physical.cpu_service(t, 0.010)
            finish_times.append(env.now)

        for _ in range(3):
            env.process(proc(env, tx()))
        env.run()
        assert finish_times == pytest.approx([0.010, 0.010, 0.010])

    def test_infinite_cpu_never_queues(self):
        env, physical, _ = build(num_cpus=None)
        finish_times = []

        def proc(env, t):
            yield from physical.cpu_service(t, 0.010)
            finish_times.append(env.now)

        for _ in range(50):
            env.process(proc(env, tx()))
        env.run()
        assert finish_times == pytest.approx([0.010] * 50)

    def test_cc_priority_jumps_cpu_queue(self):
        env, physical, _ = build(num_cpus=1, cc_cpu=0.001)
        order = []

        def object_work(env, tag):
            t = tx()
            yield from physical.cpu_service(t, 0.010)
            order.append(tag)

        def cc_work(env, tag):
            t = tx()
            yield env.timeout(0.001)  # arrive while queue is non-empty
            yield from physical.cpu_service(t, 0.001, CC_PRIORITY)
            order.append(tag)

        env.process(object_work(env, "obj1"))
        env.process(object_work(env, "obj2"))
        env.process(cc_work(env, "cc"))
        env.run()
        assert order == ["obj1", "cc", "obj2"]

    def test_disks_chosen_uniformly(self):
        env, physical, _ = build(num_disks=2)
        # Drive many disk services and confirm both disks get used by
        # watching aggregate busy time equal the requested service time.
        total = 0.0

        def proc(env):
            nonlocal total
            t = tx()
            yield from physical.disk_service(t, 0.020)
            total += t.attempt_disk_time

        for _ in range(40):
            env.process(proc(env))
        env.run()
        assert total == pytest.approx(40 * 0.020)
        # Two disks at 100%: 40 services of 20 ms over 2 disks -> >= 400 ms
        # elapsed; with random assignment it is somewhat more.
        assert env.now >= 0.400


class TestOutcomeAccounting:
    def test_useful_and_wasted_attribution(self):
        env, physical, _ = build()
        winner, loser = tx(), tx()

        def proc(env, t):
            yield from physical.cpu_service(t, 0.010)
            yield from physical.disk_service(t, 0.030)

        env.process(proc(env, winner))
        env.process(proc(env, loser))
        env.run()
        physical.charge_attempt(winner, useful=True)
        physical.charge_attempt(loser, useful=False)
        assert physical.cpu_tracker.useful_time == pytest.approx(0.010)
        assert physical.cpu_tracker.wasted_time == pytest.approx(0.010)
        assert physical.disk_tracker.useful_time == pytest.approx(0.030)
        assert physical.disk_tracker.wasted_time == pytest.approx(0.030)

    def test_interrupted_service_charges_partial_time(self):
        env, physical, _ = build()
        t = tx()

        def proc(env):
            yield from physical.cpu_service(t, 1.0)

        victim = env.process(proc(env))

        def killer(env):
            yield env.timeout(0.4)
            victim.interrupt("abort")

        env.process(killer(env))
        with pytest.raises(Exception):
            env.run(until=victim)
        assert t.attempt_cpu_time == pytest.approx(0.4)
        # server was released on unwind
        assert physical.cpu.in_use == 0
