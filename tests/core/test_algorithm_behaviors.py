"""Model-level behavioral contracts of each algorithm.

Each algorithm has observable signatures in the full model — which
conflict events it generates and for which reasons. These tests pin
them, so a refactoring that quietly changes an algorithm's character
(say, making optimistic block) cannot pass.
"""

import pytest

from repro.core import SimulationParameters, SystemModel


def hot_params(**overrides):
    base = dict(
        db_size=40,
        min_size=2,
        max_size=6,
        write_prob=0.5,
        num_terms=15,
        mpl=12,
        ext_think_time=0.1,
        obj_io=0.010,
        obj_cpu=0.005,
        num_cpus=None,
        num_disks=None,
    )
    base.update(overrides)
    return SimulationParameters(**base)


def run_model(algorithm, seed=7, until=40.0, **overrides):
    model = SystemModel(hot_params(**overrides), algorithm, seed=seed)
    model.run_until(until)
    assert model.metrics.commits.total > 30, "config too hot to commit"
    return model


class TestRestartReasons:
    """Each algorithm restarts only for its own documented reasons."""

    @pytest.mark.parametrize(
        "algorithm,allowed",
        [
            ("blocking", {"deadlock"}),
            ("immediate_restart", {"lock_conflict"}),
            ("optimistic", {"validation_failure"}),
            ("basic_to", {"timestamp_order"}),
            ("mvto", {"timestamp_order"}),
            ("wound_wait", {"wounded"}),
            ("wait_die", {"lock_conflict"}),
        ],
    )
    def test_reasons(self, algorithm, allowed):
        model = run_model(algorithm)
        reasons = set(model.metrics.restart_reasons)
        assert reasons, f"{algorithm} should restart under this load"
        assert reasons <= allowed, (
            f"{algorithm} restarted for unexpected reasons: {reasons}"
        )

    def test_static_locking_never_restarts(self):
        model = run_model("static_locking")
        assert model.metrics.restarts.total == 0


class TestBlockingBehavior:
    @pytest.mark.parametrize(
        "algorithm", ["immediate_restart", "optimistic", "mvto"]
    )
    def test_never_blocks(self, algorithm):
        model = run_model(algorithm)
        assert model.metrics.blocks.total == 0

    @pytest.mark.parametrize(
        "algorithm",
        ["blocking", "wound_wait", "wait_die", "static_locking"],
    )
    def test_lock_waiters_do_block(self, algorithm):
        model = run_model(algorithm)
        assert model.metrics.blocks.total > 0

    def test_basic_to_blocks_readers_on_prewrites(self):
        # Readers buffered behind earlier pending prewrites count as
        # blocks; under a write-heavy mix some must occur.
        model = run_model("basic_to", write_prob=0.8, until=60.0)
        assert model.metrics.blocks.total > 0


class TestMultiversionReadOnly:
    def test_read_only_transactions_never_restart_under_mvto(self):
        # The headline property of multiversion CC: readers are never
        # blocked or aborted, even against heavy write traffic.
        model = SystemModel(
            hot_params(write_prob=0.5), "mvto", seed=9,
            record_history=True,
        )
        model.run_until(60.0)
        read_only = [
            record for record in model.committed_history
            if not record.write_set
        ]
        assert read_only, "expected some read-only transactions"
        assert all(record.attempts == 1 for record in read_only)

    def test_read_only_can_restart_under_optimistic(self):
        # Contrast: optimistic validation aborts pure readers whose
        # read set was overwritten during their lifetime.
        model = SystemModel(
            hot_params(write_prob=0.5), "optimistic", seed=9,
            record_history=True,
        )
        model.run_until(60.0)
        read_only_retried = [
            record for record in model.committed_history
            if not record.write_set and record.attempts > 1
        ]
        assert read_only_retried, (
            "optimistic should occasionally restart pure readers"
        )


class TestWriteProbabilityExtremes:
    @pytest.mark.parametrize(
        "algorithm",
        ["blocking", "immediate_restart", "optimistic", "basic_to",
         "mvto", "wound_wait", "wait_die", "static_locking"],
    )
    def test_read_only_world_is_conflict_free(self, algorithm):
        model = SystemModel(
            hot_params(write_prob=0.0), algorithm, seed=11
        )
        model.run_until(20.0)
        assert model.metrics.commits.total > 0
        assert model.metrics.restarts.total == 0
        # basic TO never prewrites, locking never conflicts S-S.
        assert model.metrics.blocks.total == 0
