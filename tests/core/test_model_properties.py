"""Property-based tests over randomized whole-model configurations.

hypothesis generates small but varied configurations (sizes, write
probabilities, resource counts, algorithms); every run must satisfy the
model's conservation laws and accounting invariants regardless of the
draw. These catch cross-cutting bugs no targeted unit test anticipates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_serializability
from repro.core import SimulationParameters, SystemModel

ALGORITHMS = (
    "blocking",
    "immediate_restart",
    "optimistic",
    "basic_to",
    "mvto",
    "wound_wait",
    "wait_die",
    "static_locking",
)


@st.composite
def model_configs(draw):
    db_size = draw(st.integers(min_value=30, max_value=300))
    max_size = draw(st.integers(min_value=2, max_value=min(8, db_size)))
    min_size = draw(st.integers(min_value=1, max_value=max_size))
    return dict(
        params=SimulationParameters(
            db_size=db_size,
            min_size=min_size,
            max_size=max_size,
            write_prob=draw(
                st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.8])
            ),
            num_terms=draw(st.integers(min_value=2, max_value=12)),
            mpl=draw(st.integers(min_value=1, max_value=10)),
            ext_think_time=draw(st.sampled_from([0.05, 0.2, 0.5])),
            int_think_time=draw(st.sampled_from([0.0, 0.0, 0.1])),
            obj_io=0.008,
            obj_cpu=0.004,
            num_cpus=draw(st.sampled_from([None, 1, 2])),
            num_disks=draw(st.sampled_from([None, 1, 3])),
        ),
        algorithm=draw(st.sampled_from(ALGORITHMS)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


@settings(max_examples=25, deadline=None)
@given(config=model_configs())
def test_invariants_hold_for_any_configuration(config):
    model = SystemModel(
        config["params"], config["algorithm"], seed=config["seed"],
        record_history=True,
    )
    model.run_until(15.0)
    metrics = model.metrics
    params = config["params"]

    # Conservation: you cannot commit what was never generated, and
    # everything in the system is accounted for.
    assert metrics.commits.total <= model.workload.generated
    assert 0 <= model.active_count <= params.mpl
    in_flight = model.active_count + len(model.ready_queue)
    assert in_flight <= params.num_terms

    # Utilization accounting: fractions in [0, 1], useful <= total.
    if model.env.now > 0:
        cpu = model.physical.cpu_tracker
        disk = model.physical.disk_tracker
        for tracker in (cpu, disk):
            total = tracker.utilization(0.0, 0.0)
            useful = tracker.useful_utilization(0.0, 0.0)
            assert 0.0 <= useful <= total + 1e-9
            assert total <= 1.0 + 1e-9

    # Response times are positive and no larger than the whole run.
    if metrics.response_times.count:
        assert metrics.response_times.min > 0.0
        assert metrics.response_times.max <= model.env.now

    # Ratio sanity: blocks/restarts are non-negative counters.
    assert metrics.blocks.total >= 0
    assert metrics.restarts.total >= 0

    # Every committed record is well-formed and the history replays
    # serially without violations (noop excluded from ALGORITHMS).
    history = model.committed_history
    for record in history:
        assert record.write_set <= set(record.read_set)
        assert record.installed_writes <= record.write_set
    report = check_serializability(history, model.store.final_state())
    assert report.ok, str(report)


@settings(max_examples=10, deadline=None)
@given(config=model_configs())
def test_determinism_for_any_configuration(config):
    def run():
        model = SystemModel(
            config["params"], config["algorithm"], seed=config["seed"]
        )
        model.run_until(8.0)
        return (
            model.metrics.commits.total,
            model.metrics.restarts.total,
            model.metrics.blocks.total,
            round(model.metrics.response_times.mean, 9),
        )

    assert run() == run()


@settings(max_examples=10, deadline=None)
@given(
    mpl=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=999),
)
def test_read_only_workload_never_conflicts(mpl, seed):
    params = SimulationParameters(
        db_size=50, min_size=2, max_size=4, write_prob=0.0,
        num_terms=8, mpl=mpl, ext_think_time=0.1,
        obj_io=0.005, obj_cpu=0.002, num_cpus=None, num_disks=None,
    )
    for algorithm in ("blocking", "immediate_restart", "optimistic"):
        model = SystemModel(params, algorithm, seed=seed)
        model.run_until(10.0)
        assert model.metrics.restarts.total == 0
        assert model.metrics.blocks.total == 0
        assert model.metrics.commits.total > 0
