"""Tests for the Transaction object and its attempt lifecycle."""

import pytest

from repro.core import Transaction, TxState
from repro.core.transaction import ACTIVE_STATES


def make(reads=(1, 2, 3), writes=(2,)):
    return Transaction(1, terminal_id=0, read_set=reads, write_set=writes)


class TestConstruction:
    def test_basic_fields(self):
        tx = make()
        assert tx.id == 1
        assert tx.read_set == (1, 2, 3)
        assert tx.write_set == frozenset({2})
        assert tx.state is TxState.AT_TERMINAL
        assert tx.size == 3

    def test_write_set_must_be_subset(self):
        with pytest.raises(ValueError):
            Transaction(1, 0, read_set=(1, 2), write_set=(3,))

    def test_read_only(self):
        assert make(writes=()).is_read_only
        assert not make().is_read_only


class TestAttemptLifecycle:
    def test_begin_attempt_resets_state(self):
        tx = make()
        tx.begin_attempt(5.0, cc_timestamp=(5.0, 1))
        tx.attempt_cpu_time = 1.0
        tx.reads_seen[1] = 42
        tx.install_write_set = frozenset()
        tx.begin_attempt(9.0, cc_timestamp=(9.0, 2))
        assert tx.attempts == 2
        assert tx.attempt_start_time == 9.0
        assert tx.attempt_cpu_time == 0.0
        assert tx.reads_seen == {}
        assert tx.install_write_set == tx.write_set
        assert tx.state is TxState.RUNNING
        assert tx.cc_timestamp == (9.0, 2)

    def test_is_committing(self):
        tx = make()
        assert not tx.is_committing
        tx.state = TxState.COMMITTING
        assert tx.is_committing

    def test_active_states(self):
        tx = make()
        tx.state = TxState.READY
        assert not tx.is_active
        for state in ACTIVE_STATES:
            tx.state = state
            assert tx.is_active
        tx.state = TxState.RESTART_DELAY
        assert not tx.is_active

    def test_response_time(self):
        tx = make()
        assert tx.response_time() is None
        tx.first_submit_time = 2.0
        assert tx.response_time() is None
        tx.commit_time = 10.0
        assert tx.response_time() == pytest.approx(8.0)

    def test_repr_contains_state(self):
        assert "at_terminal" in repr(make())
