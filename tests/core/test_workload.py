"""Tests for the workload generator."""

import pytest

from repro.core import SimulationParameters, WorkloadGenerator
from repro.des import StreamFactory


def generator(seed=1, **overrides):
    params = SimulationParameters.table2(**overrides)
    return WorkloadGenerator(params, StreamFactory(seed)), params


class TestWorkloadGenerator:
    def test_sizes_within_bounds(self):
        gen, params = generator()
        for _ in range(500):
            tx = gen.new_transaction(0)
            assert params.min_size <= tx.size <= params.max_size

    def test_mean_size_close_to_tran_size(self):
        gen, params = generator()
        sizes = [gen.new_transaction(0).size for _ in range(3000)]
        assert sum(sizes) / len(sizes) == pytest.approx(
            params.tran_size, rel=0.05
        )

    def test_objects_distinct_and_in_range(self):
        gen, params = generator()
        for _ in range(200):
            tx = gen.new_transaction(0)
            assert len(set(tx.read_set)) == len(tx.read_set)
            assert all(0 <= obj < params.db_size for obj in tx.read_set)

    def test_write_set_subset_of_read_set(self):
        gen, _ = generator()
        for _ in range(200):
            tx = gen.new_transaction(0)
            assert tx.write_set <= set(tx.read_set)

    def test_write_fraction_close_to_write_prob(self):
        gen, params = generator()
        reads = writes = 0
        for _ in range(2000):
            tx = gen.new_transaction(0)
            reads += tx.size
            writes += len(tx.write_set)
        assert writes / reads == pytest.approx(params.write_prob, abs=0.02)

    def test_zero_write_prob_all_read_only(self):
        gen, _ = generator(write_prob=0.0)
        assert all(
            gen.new_transaction(0).is_read_only for _ in range(100)
        )

    def test_write_prob_one_writes_everything(self):
        gen, _ = generator(write_prob=1.0)
        tx = gen.new_transaction(0)
        assert tx.write_set == set(tx.read_set)

    def test_ids_unique_and_increasing(self):
        gen, _ = generator()
        ids = [gen.new_transaction(0).id for _ in range(50)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 50

    def test_terminal_id_recorded(self):
        gen, _ = generator()
        assert gen.new_transaction(17).terminal_id == 17

    def test_deterministic_given_seed(self):
        gen_a, _ = generator(seed=9)
        gen_b, _ = generator(seed=9)
        for _ in range(20):
            ta = gen_a.new_transaction(0)
            tb = gen_b.new_transaction(0)
            assert ta.read_set == tb.read_set
            assert ta.write_set == tb.write_set

    def test_generated_counter(self):
        gen, _ = generator()
        for _ in range(7):
            gen.new_transaction(0)
        assert gen.generated == 7
