"""Tests for trace replay: loading, cycling, and engine integration."""

import pytest

from repro.analysis import check_serializability
from repro.core import (
    ReplayWorkload,
    SimulationParameters,
    SystemModel,
    TraceExhausted,
    load_trace,
    save_trace,
    trace_from_history,
)

RECORDS = [
    ((1, 2, 3), (2,)),
    ((4, 5), ()),
    ((1, 6), (1, 6)),
]


class TestReplayWorkload:
    def test_deals_in_order(self):
        workload = ReplayWorkload(RECORDS)
        tx1 = workload.new_transaction(0)
        tx2 = workload.new_transaction(0)
        assert tx1.read_set == (1, 2, 3)
        assert tx1.write_set == frozenset({2})
        assert tx2.read_set == (4, 5)
        assert workload.generated == 2

    def test_cycles_by_default(self):
        workload = ReplayWorkload(RECORDS)
        for _ in range(3):
            workload.new_transaction(0)
        again = workload.new_transaction(0)
        assert again.read_set == (1, 2, 3)
        assert again.id == 4  # ids keep counting

    def test_non_cycling_exhausts(self):
        workload = ReplayWorkload(RECORDS, cycle=False)
        for _ in range(3):
            workload.new_transaction(0)
        with pytest.raises(TraceExhausted):
            workload.new_transaction(0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ReplayWorkload([])
        with pytest.raises(ValueError, match="subset"):
            ReplayWorkload([((1, 2), (3,))])
        with pytest.raises(ValueError, match="duplicate"):
            ReplayWorkload([((1, 1), ())])

    def test_len_and_max_object(self):
        workload = ReplayWorkload(RECORDS)
        assert len(workload) == 3
        assert workload.max_object == 6


class TestTraceFiles:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(RECORDS, path)
        workload = load_trace(path)
        assert len(workload) == 3
        tx = workload.new_transaction(0)
        assert sorted(tx.read_set) == [1, 2, 3]
        assert tx.write_set == frozenset({2})

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"reads": [1], "writes": []}\n\n{"reads": [2]}\n'
        )
        assert len(load_trace(path)) == 2

    def test_bad_record_reports_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"reads": [1]}\nnot json\n')
        with pytest.raises(ValueError, match="trace.jsonl:2"):
            load_trace(path)


class TestEngineIntegration:
    def params(self):
        return SimulationParameters(
            db_size=50, min_size=1, max_size=10, write_prob=0.5,
            num_terms=8, mpl=6, ext_think_time=0.1,
            obj_io=0.005, obj_cpu=0.002, num_cpus=None, num_disks=None,
        )

    def test_model_runs_on_replayed_trace(self):
        records = [
            (tuple(range(start, start + 4)),
             (start,) if start % 2 == 0 else ())
            for start in range(0, 40, 4)
        ]
        workload = ReplayWorkload(records)
        model = SystemModel(
            self.params(), "blocking", seed=3, workload=workload,
            record_history=True,
        )
        model.run_until(20.0)
        assert model.metrics.commits.total > 50
        # Committed read sets all come from the trace.
        trace_reads = {reads for reads, _ in records}
        for record in model.committed_history:
            assert record.read_set in trace_reads
        report = check_serializability(
            model.committed_history, model.store.final_state()
        )
        assert report.ok

    def test_replaying_a_history_under_another_algorithm(self):
        source = SystemModel(
            self.params(), "blocking", seed=5, record_history=True
        )
        source.run_until(15.0)
        records = trace_from_history(source.committed_history)
        assert records
        replay = SystemModel(
            self.params(), "mvto", seed=5,
            workload=ReplayWorkload(records), record_history=True,
        )
        replay.run_until(15.0)
        assert replay.metrics.commits.total > 0
        report = check_serializability(
            replay.committed_history, replay.store.final_state()
        )
        assert report.ok