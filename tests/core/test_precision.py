"""Tests for the sequential (precision-driven) stopping rule."""

import pytest

from repro.core import (
    RunConfig,
    SimulationParameters,
    run_until_precision,
)


def params():
    return SimulationParameters(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )


RUN = RunConfig(batches=4, batch_time=10.0, warmup_batches=1, seed=44)


class TestValidation:
    def test_target_positive(self):
        with pytest.raises(ValueError):
            run_until_precision(params(), target_relative_hw=0.0)

    def test_max_batches_minimum(self):
        with pytest.raises(ValueError):
            run_until_precision(params(), max_batches=2)


class TestStoppingRule:
    def test_stops_once_target_met(self):
        result = run_until_precision(
            params(), "blocking", RUN,
            target_relative_hw=0.10, max_batches=60,
        )
        interval = result.interval("throughput")
        assert interval.relative_half_width <= 0.10
        assert 3 <= result.run.batches <= 60
        assert result.analyzer.batches_recorded == result.run.batches

    def test_tighter_target_needs_more_batches(self):
        loose = run_until_precision(
            params(), "blocking", RUN,
            target_relative_hw=0.25, max_batches=80,
        )
        tight = run_until_precision(
            params(), "blocking", RUN,
            target_relative_hw=0.04, max_batches=80,
        )
        assert tight.run.batches >= loose.run.batches
        assert loose.run.batches >= 3

    def test_max_batches_caps_hopeless_targets(self):
        result = run_until_precision(
            params(), "blocking", RUN,
            target_relative_hw=1e-9, max_batches=5,
        )
        assert result.run.batches == 5

    def test_result_totals_present(self):
        result = run_until_precision(
            params(), "optimistic", RUN,
            target_relative_hw=0.2, max_batches=30,
        )
        assert result.totals["commits"] > 0
        assert result.algorithm == "optimistic"


class TestMinimumBatches:
    def test_at_least_three_batches_even_for_loose_targets(self):
        # An absurdly loose target would be "met" after one batch; the
        # rule must still collect three so the interval is meaningful.
        result = run_until_precision(
            params(), "blocking", RUN,
            target_relative_hw=1e9, max_batches=50,
        )
        assert result.run.batches == 3
        assert result.analyzer.batches_recorded == 3

    def test_minimum_applies_after_warmup(self):
        # Warmup batches are discarded; the three-batch floor counts
        # retained batches only.
        run = RunConfig(batches=4, batch_time=10.0, warmup_batches=2,
                        seed=44)
        result = run_until_precision(
            params(), "blocking", run,
            target_relative_hw=1e9, max_batches=50,
        )
        assert result.analyzer.batches_recorded == 3
