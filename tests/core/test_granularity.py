"""Tests for concurrency-control granularity (the Ries knob)."""

import pytest

from repro.analysis import check_serializability
from repro.core import SimulationParameters, SystemModel


class TestUnitMapping:
    def test_default_is_object_level(self):
        params = SimulationParameters.table2()
        assert params.lock_granules is None
        assert params.cc_unit_of(0) == 0
        assert params.cc_unit_of(999) == 999

    def test_contiguous_equal_granules(self):
        params = SimulationParameters.table2(lock_granules=10)
        assert params.cc_unit_of(0) == 0
        assert params.cc_unit_of(99) == 0
        assert params.cc_unit_of(100) == 1
        assert params.cc_unit_of(999) == 9

    def test_single_granule(self):
        params = SimulationParameters.table2(lock_granules=1)
        assert params.cc_unit_of(0) == 0
        assert params.cc_unit_of(999) == 0

    @pytest.mark.parametrize("granules", [0, -1, 1001])
    def test_validation(self, granules):
        with pytest.raises(ValueError):
            SimulationParameters.table2(lock_granules=granules)


class TestEngineAssignment:
    def test_cc_sets_deduplicate_granules(self):
        params = SimulationParameters(
            db_size=100, min_size=8, max_size=8, write_prob=0.5,
            num_terms=2, mpl=2, lock_granules=4,
        )
        model = SystemModel(params, "blocking", seed=1)
        tx = model.workload.new_transaction(0)
        tx.begin_attempt(0.0, (0.0, 0))
        model._assign_cc_units(tx)
        assert len(tx.cc_read_set) == len(set(tx.cc_read_set))
        assert set(tx.cc_read_set) <= {0, 1, 2, 3}
        assert tx.cc_write_set <= set(tx.cc_read_set)

    def test_object_level_identity(self):
        params = SimulationParameters(
            db_size=100, min_size=4, max_size=4, write_prob=0.5,
            num_terms=2, mpl=2,
        )
        model = SystemModel(params, "blocking", seed=1)
        tx = model.workload.new_transaction(0)
        tx.begin_attempt(0.0, (0.0, 0))
        model._assign_cc_units(tx)
        assert tx.cc_read_set == tx.read_set
        assert tx.cc_write_set == tx.write_set


class TestBehavior:
    def hot(self, granules, **overrides):
        base = dict(
            db_size=200, min_size=2, max_size=6, write_prob=0.4,
            num_terms=12, mpl=10, ext_think_time=0.1,
            obj_io=0.01, obj_cpu=0.005, num_cpus=None, num_disks=None,
            lock_granules=granules,
        )
        base.update(overrides)
        return SimulationParameters(**base)

    def test_coarser_granularity_conflicts_more(self):
        fine = SystemModel(self.hot(None), "blocking", seed=2)
        fine.run_until(30.0)
        coarse = SystemModel(self.hot(5), "blocking", seed=2)
        coarse.run_until(30.0)

        def block_ratio(model):
            return (
                model.metrics.blocks.total
                / max(1, model.metrics.commits.total)
            )

        assert block_ratio(coarse) > 2 * block_ratio(fine)

    def test_single_granule_serializes_writers(self):
        # One granule under static locking: writers are fully serial,
        # yet everything still commits.
        model = SystemModel(self.hot(1), "static_locking", seed=3)
        model.run_until(30.0)
        assert model.metrics.commits.total > 20
        assert model.metrics.restarts.total == 0

    @pytest.mark.parametrize(
        "algorithm",
        ["blocking", "immediate_restart", "optimistic", "basic_to",
         "mvto", "wound_wait", "wait_die", "static_locking"],
    )
    @pytest.mark.parametrize("granules", [1, 7, 50])
    def test_histories_serializable_at_any_granularity(
        self, algorithm, granules
    ):
        params = self.hot(
            granules,
            db_size=50,
            restart_delay_mode="adaptive_all",
        )
        model = SystemModel(
            params, algorithm, seed=4, record_history=True
        )
        model.run_until(40.0)
        assert model.metrics.commits.total > 20, "too hot to commit"
        report = check_serializability(
            model.committed_history, model.store.final_state()
        )
        assert report.ok, f"{algorithm}@{granules}: {report}"

    def test_thomas_rule_with_granules_stays_serializable(self):
        # NOTE: in the paper's workload every write is preceded by a
        # read of the same object (no blind writes), so the Thomas
        # write rule essentially never fires end-to-end: the
        # read-timestamp check rejects the late writer first. The rule
        # is exercised at the protocol level in tests/cc/test_timestamp
        # (blind-write doubles); here we only require that enabling it
        # at coarse granularity cannot break serializability.
        from repro.cc import BasicTimestampOrderingCC

        params = self.hot(
            5, db_size=50, write_prob=1.0,
            restart_delay_mode="adaptive_all",
        )
        model = SystemModel(
            params,
            BasicTimestampOrderingCC(thomas_write_rule=True),
            seed=5,
            record_history=True,
        )
        model.run_until(40.0)
        assert model.metrics.commits.total > 20
        report = check_serializability(
            model.committed_history, model.store.final_state()
        )
        assert report.ok, str(report)