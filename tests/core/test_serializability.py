"""End-to-end serializability of every real algorithm's committed histories.

These are the strongest correctness tests in the suite: high-contention
workloads are run through the full model with value tracking, and the
committed history is replayed serially in the algorithm's equivalent
serial order. Every read must match the replay and the final database
state must match — an exact check, not a statistical one.
"""

import pytest

from repro.analysis import check_serializability
from repro.core import SimulationParameters, SystemModel

REAL_ALGORITHMS = (
    "blocking",
    "immediate_restart",
    "optimistic",
    "basic_to",
    "mvto",
    "wound_wait",
    "wait_die",
    "static_locking",
)


def contention_params(**overrides):
    """A deliberately nasty configuration: small database, high mpl.

    Hot enough to provoke plenty of conflicts, restarts and deadlocks,
    but not so hot that restart-oriented algorithms thrash to a handful
    of commits (MVTO under write-heavy extreme contention commits very
    little, which starves the check of data).
    """
    base = dict(
        db_size=50,
        min_size=2,
        max_size=6,
        write_prob=0.5,
        num_terms=15,
        mpl=12,
        ext_think_time=0.1,
        obj_io=0.010,
        obj_cpu=0.005,
        num_cpus=None,
        num_disks=None,
    )
    base.update(overrides)
    return SimulationParameters(**base)


def run_and_check(algorithm, params, seed, until=60.0):
    model = SystemModel(params, algorithm, seed=seed, record_history=True)
    model.run_until(until)
    history = model.committed_history
    assert len(history) > 30, f"{algorithm}: too few commits to be meaningful"
    report = check_serializability(history, model.store.final_state())
    assert report.ok, f"{algorithm}: {report}\n" + "\n".join(
        str(v) for v in report.violations[:10]
    )
    return model, report


class TestSerializability:
    @pytest.mark.parametrize("algorithm", REAL_ALGORITHMS)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_high_contention_histories_serializable(self, algorithm, seed):
        run_and_check(algorithm, contention_params(), seed)

    @pytest.mark.parametrize("algorithm", REAL_ALGORITHMS)
    def test_finite_resources_histories_serializable(self, algorithm):
        params = contention_params(num_cpus=1, num_disks=2, mpl=8)
        run_and_check(algorithm, params, seed=4)

    @pytest.mark.parametrize("algorithm", REAL_ALGORITHMS)
    def test_write_heavy_histories_serializable(self, algorithm):
        # Write-everything workloads thrash restart-oriented algorithms
        # into near-starvation without a delay (legitimate behavior, but
        # it starves the check of commits); the adaptive delay of
        # Figure 11 keeps them productive without changing correctness.
        params = contention_params(
            write_prob=1.0, db_size=40, restart_delay_mode="adaptive_all"
        )
        run_and_check(algorithm, params, seed=5)

    @pytest.mark.parametrize(
        "algorithm", ["blocking", "optimistic", "basic_to", "mvto"]
    )
    def test_interactive_histories_serializable(self, algorithm):
        params = contention_params(
            int_think_time=0.2, ext_think_time=0.5, num_cpus=1, num_disks=2
        )
        run_and_check(algorithm, params, seed=6)

    def test_basic_to_with_thomas_rule_serializable(self):
        from repro.cc import BasicTimestampOrderingCC

        params = contention_params(
            write_prob=1.0, db_size=40, restart_delay_mode="adaptive_all"
        )
        model = SystemModel(
            params,
            BasicTimestampOrderingCC(thomas_write_rule=True),
            seed=7,
            record_history=True,
        )
        model.run_until(60.0)
        report = check_serializability(
            model.committed_history, model.store.final_state()
        )
        assert report.ok, str(report)

    def test_noop_control_violates_serializability(self):
        # The checker must have teeth: with no concurrency control and
        # heavy write contention, violations are expected.
        params = contention_params(
            write_prob=1.0, db_size=8, min_size=2, max_size=4, mpl=15
        )
        model = SystemModel(params, "noop", seed=8, record_history=True)
        model.run_until(60.0)
        report = check_serializability(
            model.committed_history, model.store.final_state()
        )
        assert not report.ok
        assert report.violations


class TestConflictGraph:
    @pytest.mark.parametrize("algorithm", ["blocking", "optimistic"])
    def test_serialization_graph_acyclic(self, algorithm):
        import networkx as nx

        from repro.analysis import conflict_graph

        model = SystemModel(
            contention_params(), algorithm, seed=9, record_history=True
        )
        model.run_until(40.0)
        edges = conflict_graph(model.committed_history)
        graph = nx.DiGraph(list(edges))
        assert nx.is_directed_acyclic_graph(graph)
