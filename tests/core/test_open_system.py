"""Tests for the open-system (Poisson arrival) source model."""

import pytest

from repro.core import (
    ARRIVAL_OPEN,
    RunConfig,
    SimulationParameters,
    SystemModel,
    run_simulation,
)


def open_params(rate, **overrides):
    base = dict(
        db_size=500,
        min_size=4,
        max_size=8,
        write_prob=0.25,
        num_terms=1,  # ignored in open mode
        mpl=20,
        obj_io=0.010,
        obj_cpu=0.005,
        num_cpus=2,
        num_disks=4,
        arrival_mode=ARRIVAL_OPEN,
        arrival_rate=rate,
    )
    base.update(overrides)
    return SimulationParameters(**base)


class TestValidation:
    def test_mode_names(self):
        with pytest.raises(ValueError):
            SimulationParameters(arrival_mode="poisson")

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulationParameters(arrival_mode=ARRIVAL_OPEN,
                                 arrival_rate=0.0)

    def test_closed_default(self):
        assert SimulationParameters().arrival_mode == "closed"


class TestOpenArrivals:
    def test_throughput_tracks_offered_load_when_underloaded(self):
        # Service demand per transaction ~= 6 * 15 ms of disk+CPU over
        # 2 CPUs/4 disks: capacity far above 5 tps, so the system is
        # lossless and throughput == arrival rate.
        result = run_simulation(
            open_params(rate=5.0),
            "blocking",
            RunConfig(batches=6, batch_time=20.0, warmup_batches=1,
                      seed=8),
        )
        assert result.throughput == pytest.approx(5.0, rel=0.10)

    def test_overload_builds_unbounded_backlog(self):
        # Offered load beyond capacity: a closed model cannot show this;
        # the open model's ready queue must grow without bound.
        model = SystemModel(open_params(rate=200.0), "blocking", seed=9)
        model.run_until(10.0)
        early_backlog = len(model.ready_queue)
        model.run_until(30.0)
        late_backlog = len(model.ready_queue)
        assert late_backlog > early_backlog
        assert late_backlog > 100

    def test_arrival_count_close_to_rate(self):
        model = SystemModel(open_params(rate=50.0), "blocking", seed=10)
        model.run_until(20.0)
        assert model.workload.generated == pytest.approx(1000, rel=0.15)

    def test_no_terminals_spawned(self):
        model = SystemModel(
            open_params(rate=5.0, num_terms=100), "blocking", seed=11
        )
        model.run_until(5.0)
        # All transactions come from the single source; terminal id 0.
        assert model.metrics.commits.total > 0

    def test_mpl_still_enforced(self):
        model = SystemModel(open_params(rate=500.0, mpl=7),
                            "blocking", seed=12)
        violations = []

        def probe(env):
            while True:
                if model.active_count > 7:
                    violations.append(env.now)
                yield env.timeout(0.01)

        model.env.process(probe(model.env))
        model.run_until(5.0)
        assert violations == []
