"""Tests for the hotspot (skewed access) workload extension."""

import pytest

from repro.core import SimulationParameters, SystemModel, WorkloadGenerator
from repro.des import StreamFactory


def skewed_params(**overrides):
    base = dict(
        db_size=1000,
        min_size=4,
        max_size=12,
        write_prob=0.25,
        hot_fraction=0.1,
        hot_access_prob=0.8,
    )
    base.update(overrides)
    return SimulationParameters(**base)


class TestValidation:
    def test_both_fields_required_together(self):
        with pytest.raises(ValueError, match="together"):
            SimulationParameters(hot_fraction=0.1)
        with pytest.raises(ValueError, match="together"):
            SimulationParameters(hot_access_prob=0.5)

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5])
    def test_hot_fraction_bounds(self, fraction):
        with pytest.raises(ValueError):
            skewed_params(hot_fraction=fraction)

    def test_hot_access_prob_bounds(self):
        with pytest.raises(ValueError):
            skewed_params(hot_access_prob=1.5)

    def test_empty_hot_region_rejected(self):
        with pytest.raises(ValueError, match="hot region"):
            skewed_params(db_size=5, hot_fraction=0.1, min_size=1,
                          max_size=2)

    def test_tiny_cold_region_rejected(self):
        with pytest.raises(ValueError, match="cold region"):
            skewed_params(db_size=20, hot_fraction=0.9, min_size=1,
                          max_size=4)

    def test_uniform_default(self):
        params = SimulationParameters()
        assert not params.has_hotspot
        assert params.hot_object_count() == 0


class TestSkewedGeneration:
    def test_objects_distinct_and_in_range(self):
        gen = WorkloadGenerator(skewed_params(), StreamFactory(1))
        for _ in range(300):
            tx = gen.new_transaction(0)
            assert len(set(tx.read_set)) == len(tx.read_set)
            assert all(0 <= obj < 1000 for obj in tx.read_set)

    def test_hot_region_receives_requested_share(self):
        params = skewed_params()
        gen = WorkloadGenerator(params, StreamFactory(2))
        hot_size = params.hot_object_count()
        hot = total = 0
        for _ in range(3000):
            tx = gen.new_transaction(0)
            total += tx.size
            hot += sum(1 for obj in tx.read_set if obj < hot_size)
        assert hot / total == pytest.approx(0.8, abs=0.03)

    def test_extreme_skew_spills_into_cold(self):
        # hot region of 2 objects but up to 4 accesses at prob 1.0:
        # the overflow must come from the cold region, all distinct.
        params = SimulationParameters(
            db_size=100, min_size=4, max_size=4, write_prob=0.0,
            hot_fraction=0.02, hot_access_prob=1.0,
        )
        gen = WorkloadGenerator(params, StreamFactory(3))
        for _ in range(100):
            tx = gen.new_transaction(0)
            assert len(set(tx.read_set)) == 4

    def test_skew_raises_conflict_rate(self):
        uniform = SimulationParameters(
            db_size=1000, min_size=4, max_size=12, write_prob=0.25,
            num_terms=50, mpl=50, ext_think_time=0.2,
            obj_io=0.005, obj_cpu=0.002,
            num_cpus=None, num_disks=None,
        )
        skewed = uniform.with_changes(
            hot_fraction=0.05, hot_access_prob=0.8
        )
        uniform_model = SystemModel(uniform, "blocking", seed=6)
        uniform_model.run_until(30.0)
        skewed_model = SystemModel(skewed, "blocking", seed=6)
        skewed_model.run_until(30.0)

        def block_ratio(model):
            return (
                model.metrics.blocks.total
                / max(1, model.metrics.commits.total)
            )

        assert block_ratio(skewed_model) > 2 * block_ratio(uniform_model)
