"""Unit tests for the metrics collector and running averages."""

import pytest

from repro.core import RunningAverage, SimulationParameters
from repro.core.metrics import MetricsCollector
from repro.resources import PhysicalModel
from repro.core.transaction import Transaction
from repro.des import Environment, StreamFactory


class TestRunningAverage:
    def test_initial_estimate_before_data(self):
        avg = RunningAverage(initial_estimate=2.5)
        assert avg.value == 2.5

    def test_cumulative_mean(self):
        avg = RunningAverage(initial_estimate=99.0)
        for x in (1.0, 2.0, 3.0):
            avg.observe(x)
        assert avg.value == pytest.approx(2.0)


def make_collector():
    env = Environment()
    params = SimulationParameters.table2()
    physical = PhysicalModel(env, params, StreamFactory(1))
    return env, MetricsCollector(env, params, physical)


def committed_tx(submit, commit):
    tx = Transaction(1, 0, read_set=(1,), write_set=())
    tx.first_submit_time = submit
    tx.commit_time = commit
    return tx


class TestMetricsCollector:
    def test_adaptive_seed_is_expected_service_time(self):
        _, metrics = make_collector()
        assert metrics.avg_response.value == pytest.approx(0.5)

    def test_record_commit_updates_everything(self):
        _, metrics = make_collector()
        metrics.record_commit(committed_tx(0.0, 2.0))
        metrics.record_commit(committed_tx(1.0, 5.0))
        assert metrics.commits.total == 2
        assert metrics.response_times.mean == pytest.approx(3.0)
        assert metrics.avg_response.value == pytest.approx(3.0)
        assert metrics.response_p50.count == 2

    def test_restart_reason_breakdown(self):
        _, metrics = make_collector()
        tx = committed_tx(0.0, 1.0)
        metrics.record_restart(tx, "deadlock")
        metrics.record_restart(tx, "deadlock")
        metrics.record_restart(tx, "wounded")
        assert metrics.restarts.total == 3
        assert metrics.restart_reasons == {"deadlock": 2, "wounded": 1}

    def test_batch_values_are_window_deltas(self):
        env, metrics = make_collector()
        env.timeout(100.0)  # something to run against
        metrics.record_commit(committed_tx(0.0, 0.0))
        env.run(until=10.0)
        snapshot = metrics.snapshot()
        metrics.record_commit(committed_tx(5.0, 10.0))
        metrics.record_commit(committed_tx(6.0, 10.0))
        metrics.record_block(None)
        env.run(until=20.0)
        values = metrics.batch_values(snapshot)
        # Only the two post-snapshot commits count, over 10 seconds.
        assert values["throughput"] == pytest.approx(0.2)
        assert values["commits"] == 2.0
        assert values["response_time"] == pytest.approx(4.5)
        assert values["block_ratio"] == pytest.approx(0.5)
        assert values["restart_ratio"] == 0.0

    def test_empty_batch_window_rejected(self):
        _, metrics = make_collector()
        snapshot = metrics.snapshot()
        with pytest.raises(ValueError):
            metrics.batch_values(snapshot)

    def test_zero_commit_batch_ratios_are_zero(self):
        env, metrics = make_collector()
        env.timeout(100.0)
        snapshot = metrics.snapshot()
        metrics.record_block(None)
        env.run(until=10.0)
        values = metrics.batch_values(snapshot)
        assert values["throughput"] == 0.0
        assert values["block_ratio"] == 0.0
