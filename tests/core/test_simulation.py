"""Tests for the batch-means simulation driver and result object."""

import pytest

from repro.core import (
    RunConfig,
    SimulationParameters,
    run_simulation,
)


def quick_run(**overrides):
    run_overrides = overrides.pop("run", {})
    params = SimulationParameters(
        db_size=200,
        min_size=4,
        max_size=8,
        write_prob=0.25,
        num_terms=10,
        mpl=5,
        ext_think_time=0.5,
        obj_io=0.010,
        obj_cpu=0.005,
        num_cpus=1,
        num_disks=2,
        **overrides,
    )
    run = RunConfig(
        batches=4, batch_time=10.0, warmup_batches=1, seed=21,
        **run_overrides,
    )
    return params, run


class TestRunSimulation:
    def test_batches_recorded(self):
        params, run = quick_run()
        result = run_simulation(params, "blocking", run)
        assert result.analyzer.batches_recorded == run.batches
        assert result.algorithm == "blocking"

    def test_throughput_interval_and_mean_agree(self):
        params, run = quick_run()
        result = run_simulation(params, "blocking", run)
        ci = result.interval("throughput")
        assert ci.mean == pytest.approx(result.throughput)
        assert ci.n == run.batches

    def test_output_variables_present(self):
        params, run = quick_run()
        result = run_simulation(params, "optimistic", run)
        names = set(result.analyzer.names())
        expected = {
            "throughput", "response_time", "response_time_std",
            "restart_ratio", "block_ratio", "cpu_util",
            "cpu_util_useful", "disk_util", "disk_util_useful",
            "avg_active", "avg_ready_queue", "commits",
        }
        assert expected <= names

    def test_totals_consistency(self):
        params, run = quick_run()
        result = run_simulation(params, "blocking", run)
        assert result.totals["simulated_time"] == pytest.approx(
            run.total_time
        )
        assert result.totals["commits"] > 0
        assert result.totals["commits"] <= (
            result.totals["transactions_generated"]
        )

    def test_throughput_matches_commit_count(self):
        # throughput per batch * batch_time summed over retained batches
        # should be close to total commits minus warmup commits.
        params, run = quick_run()
        result = run_simulation(params, "blocking", run)
        series = result.analyzer.series("commits")
        per_batch_commits = sum(series.values)
        assert per_batch_commits <= result.totals["commits"]

    def test_seed_override_changes_result(self):
        params, run = quick_run()
        a = run_simulation(params, "blocking", run)
        b = run_simulation(params, "blocking", run, seed=99)
        assert a.totals["commits"] != b.totals["commits"]

    def test_deterministic_for_same_seed(self):
        params, run = quick_run()
        a = run_simulation(params, "blocking", run)
        b = run_simulation(params, "blocking", run)
        assert a.totals["commits"] == b.totals["commits"]
        assert a.throughput == pytest.approx(b.throughput)

    def test_record_history_keeps_model(self):
        params, run = quick_run()
        result = run_simulation(params, "blocking", run, record_history=True)
        assert result.model is not None
        assert result.model.committed_history

    def test_model_dropped_by_default(self):
        params, run = quick_run()
        assert run_simulation(params, "blocking", run).model is None

    def test_describe_mentions_key_numbers(self):
        params, run = quick_run()
        result = run_simulation(params, "blocking", run)
        text = result.describe()
        assert "blocking" in text
        assert "throughput" in text

    def test_default_run_config_used_when_none(self):
        params, _ = quick_run()
        tiny = params.with_changes(num_terms=2, mpl=2)
        result = run_simulation(
            tiny, "noop", RunConfig(batches=1, batch_time=2.0,
                                    warmup_batches=0)
        )
        assert result.analyzer.batches_recorded == 1


class TestClosedFormCalibration:
    """Contention-free runs must match queueing-theory expectations."""

    def test_single_terminal_response_is_pure_service(self):
        # One terminal, fixed 8-object read-only transactions, infinite
        # resources: response time is exactly 8*(obj_io+obj_cpu).
        params = SimulationParameters(
            db_size=1000,
            min_size=8,
            max_size=8,
            write_prob=0.0,
            num_terms=1,
            mpl=1,
            ext_think_time=1.0,
            obj_io=0.035,
            obj_cpu=0.015,
            num_cpus=None,
            num_disks=None,
        )
        run = RunConfig(batches=5, batch_time=20.0, warmup_batches=1)
        result = run_simulation(params, "noop", run)
        assert result.mean("response_time") == pytest.approx(0.4, rel=1e-6)

    def test_closed_system_throughput_law(self):
        # Interactive response time law: X = N / (R + Z) for a closed
        # system with N users, think time Z, response R.
        params = SimulationParameters(
            db_size=10_000,
            min_size=8,
            max_size=8,
            write_prob=0.0,
            num_terms=20,
            mpl=20,
            ext_think_time=1.0,
            obj_io=0.035,
            obj_cpu=0.015,
            num_cpus=None,
            num_disks=None,
        )
        run = RunConfig(batches=8, batch_time=30.0, warmup_batches=2, seed=3)
        result = run_simulation(params, "noop", run)
        R = result.mean("response_time")
        X = result.mean("throughput")
        N = params.num_terms
        Z = params.ext_think_time
        assert X == pytest.approx(N / (R + Z), rel=0.05)

    def test_disk_bound_throughput_ceiling(self):
        # 1 CPU, 2 disks, read-only: peak throughput is bounded by disk
        # capacity: 2 disks / (8 reads * 35 ms) ~= 7.14 tps.
        params = SimulationParameters(
            db_size=10_000,
            min_size=8,
            max_size=8,
            write_prob=0.0,
            num_terms=50,
            mpl=50,
            ext_think_time=0.5,
            obj_io=0.035,
            obj_cpu=0.015,
            num_cpus=1,
            num_disks=2,
        )
        run = RunConfig(batches=5, batch_time=30.0, warmup_batches=1, seed=5)
        result = run_simulation(params, "noop", run)
        ceiling = 2 / (8 * 0.035)
        assert result.throughput <= ceiling * 1.02
        assert result.throughput >= ceiling * 0.80  # near-saturated
        assert result.mean("disk_util") > 0.85
