"""Tests for multiclass workload mixes."""

import pytest

from repro.core import (
    RunConfig,
    SimulationParameters,
    SystemModel,
    TransactionClass,
    WorkloadGenerator,
    run_simulation,
)
from repro.des import StreamFactory

LOOKUP = TransactionClass("lookup", weight=8.0, min_size=1, max_size=2,
                          write_prob=0.0)
ORDER = TransactionClass("order", weight=2.0, min_size=4, max_size=12,
                         write_prob=0.25)
REPORT = TransactionClass("report", weight=0.5, min_size=30, max_size=50,
                          write_prob=0.0)


def mixed_params(**overrides):
    base = dict(
        db_size=1000,
        num_terms=20,
        mpl=10,
        ext_think_time=0.3,
        obj_io=0.005,
        obj_cpu=0.002,
        num_cpus=None,
        num_disks=None,
        workload_mix=(LOOKUP, ORDER, REPORT),
    )
    base.update(overrides)
    return SimulationParameters(**base)


class TestValidation:
    def test_class_validation(self):
        with pytest.raises(ValueError, match="weight"):
            TransactionClass("x", weight=0.0, min_size=1, max_size=2,
                             write_prob=0.0)
        with pytest.raises(ValueError, match="min_size"):
            TransactionClass("x", weight=1.0, min_size=5, max_size=2,
                             write_prob=0.0)
        with pytest.raises(ValueError, match="write_prob"):
            TransactionClass("x", weight=1.0, min_size=1, max_size=2,
                             write_prob=1.5)
        with pytest.raises(ValueError, match="name"):
            TransactionClass("", weight=1.0, min_size=1, max_size=2,
                             write_prob=0.0)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SimulationParameters(workload_mix=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SimulationParameters(workload_mix=(LOOKUP, LOOKUP))

    def test_class_bigger_than_db_rejected(self):
        with pytest.raises(ValueError, match="db_size"):
            SimulationParameters(db_size=20, workload_mix=(REPORT,))

    def test_list_coerced_to_tuple(self):
        params = SimulationParameters(workload_mix=[LOOKUP, ORDER])
        assert isinstance(params.workload_mix, tuple)


class TestDerivedQuantities:
    def test_expected_reads_weighted(self):
        params = SimulationParameters(
            workload_mix=(
                TransactionClass("a", 1.0, 2, 2, 0.0),
                TransactionClass("b", 3.0, 10, 10, 0.5),
            )
        )
        # (1*2 + 3*10) / 4 = 8
        assert params.expected_reads() == pytest.approx(8.0)
        assert params.tran_size == pytest.approx(8.0)
        # writes: (1*0 + 3*10*0.5) / 4 = 3.75
        assert params.expected_writes() == pytest.approx(3.75)

    def test_single_class_unchanged(self):
        params = SimulationParameters.table2()
        assert params.expected_reads() == pytest.approx(8.0)
        assert params.expected_writes() == pytest.approx(2.0)


class TestGeneration:
    def test_class_frequencies_match_weights(self):
        gen = WorkloadGenerator(mixed_params(), StreamFactory(1))
        counts = {"lookup": 0, "order": 0, "report": 0}
        for _ in range(4000):
            counts[gen.new_transaction(0).tx_class] += 1
        total = sum(counts.values())
        assert counts["lookup"] / total == pytest.approx(
            8.0 / 10.5, abs=0.03
        )
        assert counts["report"] / total == pytest.approx(
            0.5 / 10.5, abs=0.02
        )

    def test_bisect_draw_identical_to_linear_scan(self):
        # _draw_class precomputes cumulative weights and bisects; the
        # boundaries are the same left-to-right partial sums the old
        # per-draw loop accumulated, so every seeded draw must map to
        # the same class the linear scan would have picked.
        params = mixed_params()
        gen = WorkloadGenerator(params, StreamFactory(7))
        reference_rng = StreamFactory(7).stream("workload.class")
        mix = params.workload_mix
        total = sum(cls.weight for cls in mix)
        for _ in range(20_000):
            pick = reference_rng.random() * total
            cumulative = 0.0
            expected = mix[-1]
            for cls in mix:
                cumulative += cls.weight
                if pick < cumulative:
                    expected = cls
                    break
            assert gen._draw_class() is expected

    def test_class_parameters_respected(self):
        gen = WorkloadGenerator(mixed_params(), StreamFactory(2))
        for _ in range(500):
            tx = gen.new_transaction(0)
            if tx.tx_class == "lookup":
                assert 1 <= tx.size <= 2
                assert not tx.write_set
            elif tx.tx_class == "order":
                assert 4 <= tx.size <= 12
            else:
                assert 30 <= tx.size <= 50
                assert not tx.write_set

    def test_single_class_has_no_class_name(self):
        gen = WorkloadGenerator(
            SimulationParameters.table2(), StreamFactory(3)
        )
        assert gen.new_transaction(0).tx_class is None


class TestPerClassMetrics:
    def test_per_class_stats_collected(self):
        result = run_simulation(
            mixed_params(),
            "blocking",
            RunConfig(batches=3, batch_time=10.0, warmup_batches=0,
                      seed=4),
        )
        per_class = result.totals["per_class"]
        assert set(per_class) == {"lookup", "order", "report"}
        for stats in per_class.values():
            assert stats["commits"] > 0
            assert stats["response_mean"] > 0
        # Tiny lookups respond much faster than the big reports.
        assert per_class["lookup"]["response_mean"] < (
            per_class["report"]["response_mean"]
        )
        # Class throughputs sum to the total.
        total = sum(s["throughput"] for s in per_class.values())
        overall = result.totals["commits"] / result.totals[
            "simulated_time"
        ]
        assert total == pytest.approx(overall, rel=1e-6)

    def test_single_class_per_class_empty(self):
        result = run_simulation(
            SimulationParameters.table2(mpl=5, num_terms=5),
            "blocking",
            RunConfig(batches=2, batch_time=5.0, warmup_batches=0,
                      seed=5),
        )
        assert result.totals["per_class"] == {}


class TestMultiversionAdvantage:
    def test_long_readers_hurt_writers_under_2pl_not_mvto(self):
        # The classic multiversion pitch: long read-only reports
        # blocking short writers under 2PL; MVTO reads never block.
        params = mixed_params(
            db_size=200,
            workload_mix=(
                TransactionClass("writer", 5.0, 2, 6, 0.8),
                TransactionClass("report", 1.0, 40, 60, 0.0),
            ),
            int_think_time=0.0,
        )
        locking = SystemModel(params, "blocking", seed=6)
        locking.run_until(40.0)
        mvto = SystemModel(params, "mvto", seed=6)
        mvto.run_until(40.0)
        # MVTO never blocks at all; blocking does, heavily.
        assert mvto.metrics.blocks.total == 0
        assert locking.metrics.blocks.total > 100