"""Workload tapes: draw-identity, chunking, and cross-point sharing.

A tape must replay the model-owned :class:`WorkloadGenerator`
byte-for-byte — same read sets, write sets, class tags, ids — for every
workload shape the paper uses (uniform, hotspot, multi-class mix), no
matter how the tape was grown or how many consumers share it.
"""

import pytest

from repro.core import SimulationParameters
from repro.core.params import TransactionClass
from repro.core.workload import WorkloadGenerator
from repro.des import StreamFactory
from repro.fastlane import (
    TapeStore,
    WorkloadTape,
    workload_signature,
)
from repro.fastlane.tapes import TAPE_CHUNK

PARAMS = SimulationParameters(
    db_size=200, min_size=2, max_size=8, write_prob=0.25,
    num_terms=10, mpl=5, ext_think_time=0.5,
    obj_io=0.02, obj_cpu=0.01, num_cpus=1, num_disks=2,
)
HOTSPOT = PARAMS.with_changes(hot_fraction=0.1, hot_access_prob=0.8)
MIXED = PARAMS.with_changes(workload_mix=(
    TransactionClass(
        name="small", weight=0.7, min_size=1, max_size=4, write_prob=0.1
    ),
    TransactionClass(
        name="large", weight=0.3, min_size=8, max_size=16, write_prob=0.5
    ),
))


class TestDrawIdentity:
    @pytest.mark.parametrize(
        "params", [PARAMS, HOTSPOT, MIXED],
        ids=["uniform", "hotspot", "mixed"],
    )
    def test_tape_replays_the_generator_byte_for_byte(self, params):
        reference = WorkloadGenerator(params, StreamFactory(101))
        taped = TapeStore().workload(params, 101)
        draws = 2 * TAPE_CHUNK + 10  # crosses two chunk boundaries
        for k in range(draws):
            want = reference.new_transaction(terminal_id=k % 7)
            got = taped.new_transaction(terminal_id=k % 7)
            assert got.id == want.id == k + 1
            assert got.terminal_id == want.terminal_id
            assert got.read_set == want.read_set
            assert got.write_set == want.write_set
            assert got.tx_class == want.tx_class
        assert taped.generated == reference.generated == draws

    def test_consumers_have_independent_cursors(self):
        store = TapeStore()
        first = store.workload(PARAMS, 11)
        second = store.workload(PARAMS, 11)
        head = first.new_transaction(terminal_id=1)
        for _ in range(5):
            first.new_transaction(terminal_id=1)
        # The second consumer still starts at the head of the tape.
        twin = second.new_transaction(terminal_id=9)
        assert twin.id == head.id == 1
        assert twin.read_set == head.read_set
        assert twin.write_set == head.write_set
        assert twin.terminal_id == 9


class TestChunking:
    def test_tape_extends_in_chunks_on_demand(self):
        tape = WorkloadTape(PARAMS, 7)
        assert len(tape) == 0
        tape.spec(0)
        assert len(tape) == TAPE_CHUNK
        tape.spec(TAPE_CHUNK)
        assert len(tape) == 2 * TAPE_CHUNK
        # A far jump extends through every intervening chunk.
        tape.spec(4 * TAPE_CHUNK + 3)
        assert len(tape) == 5 * TAPE_CHUNK

    def test_contents_independent_of_growth_pattern(self):
        incremental = WorkloadTape(PARAMS, 7)
        for k in range(2 * TAPE_CHUNK):
            incremental.spec(k)
        jumped = WorkloadTape(PARAMS, 7)
        jumped.spec(2 * TAPE_CHUNK - 1)
        assert incremental.specs == jumped.specs


class TestSignature:
    def test_ignores_everything_the_workload_streams_cannot_see(self):
        base = workload_signature(PARAMS, 11)
        for variant in (
            PARAMS.with_changes(mpl=200, num_terms=300),
            PARAMS.with_changes(num_cpus=None, num_disks=None),
            PARAMS.with_changes(obj_io=0.5, obj_cpu=0.2),
            PARAMS.with_changes(ext_think_time=10.0),
        ):
            assert workload_signature(variant, 11) == base

    def test_tracks_every_workload_knob(self):
        base = workload_signature(PARAMS, 11)
        variants = [
            workload_signature(PARAMS, 12),
            workload_signature(PARAMS.with_changes(db_size=1000), 11),
            workload_signature(PARAMS.with_changes(min_size=1), 11),
            workload_signature(PARAMS.with_changes(max_size=16), 11),
            workload_signature(PARAMS.with_changes(write_prob=0.5), 11),
            workload_signature(HOTSPOT, 11),
            workload_signature(MIXED, 11),
        ]
        assert base not in variants
        assert len(set(variants)) == len(variants)

    def test_tracks_the_workload_model(self):
        # Two grid points differing only in workload_model draw
        # different content sequences and must never share a tape.
        base = workload_signature(PARAMS, 11)
        heavy = workload_signature(
            PARAMS.with_changes(workload_model="heavy_tailed"), 11
        )
        assert heavy != base

    def test_tracks_the_workload_spec(self):
        heavy = PARAMS.with_changes(workload_model="heavy_tailed")
        base = workload_signature(heavy, 11)
        tweaked = workload_signature(
            heavy.with_changes(workload_spec={"size_cv": 4.0}), 11
        )
        assert tweaked != base

    def test_legacy_open_spelling_keys_like_open_poisson(self):
        # arrival_mode="open" resolves to the open_poisson model; the
        # signature must not distinguish the two spellings (identical
        # content draws), but arrival timing knobs stay invisible.
        legacy = workload_signature(
            PARAMS.with_changes(arrival_mode="open", arrival_rate=5.0),
            11,
        )
        explicit = workload_signature(
            PARAMS.with_changes(workload_model="open_poisson"), 11
        )
        assert legacy == explicit


class TestTapeStore:
    def test_grid_points_share_one_tape(self):
        store = TapeStore()
        low = store.workload(PARAMS, 11)
        # Another mpl of the same experiment: same signature.
        high = store.workload(
            PARAMS.with_changes(mpl=50, num_terms=60), 11
        )
        assert high.tape is low.tape
        assert (store.hits, store.misses) == (1, 1)
        # A different workload gets its own tape.
        other = store.workload(PARAMS.with_changes(write_prob=0.5), 11)
        assert other.tape is not low.tape
        assert (store.hits, store.misses) == (1, 2)

    def test_different_seeds_never_share(self):
        store = TapeStore()
        a = store.workload(PARAMS, 11)
        b = store.workload(PARAMS, 12)
        assert a.tape is not b.tape
        assert store.hits == 0 and store.misses == 2

    def test_different_workload_models_never_share(self):
        store = TapeStore()
        classic = store.workload(PARAMS, 11)
        heavy = store.workload(
            PARAMS.with_changes(workload_model="heavy_tailed"), 11
        )
        assert heavy.tape is not classic.tape
        assert store.hits == 0 and store.misses == 2
        # And the heavy-tailed tape really carries heavy-tailed
        # content: its size draws differ from the uniform tape's.
        sizes = lambda w: [  # noqa: E731
            len(w.new_transaction(terminal_id=0).read_set)
            for _ in range(64)
        ]
        assert sizes(heavy) != sizes(classic)

    def test_non_tapeable_models_are_refused(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"reads": [1, 2], "writes": [2]}\n')
        params = PARAMS.with_changes(
            workload_model="trace",
            workload_spec={"path": str(trace)},
        )
        with pytest.raises(ValueError, match="not .*tapeable"):
            WorkloadTape(params, 11)
