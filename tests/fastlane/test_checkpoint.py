"""Checkpoint <-> backend binding for the fast lane.

The two lanes are result-identical but *retry*-identical they are not
(a batched retry reseeds the whole fused point, a classic retry
reseeds one replication), so a checkpoint written by one lane must
never be silently continued by the other. Headers therefore record the
backend and the replication count; any disagreement on resume is a
:class:`CheckpointMismatchError`, and headers written before the fast
lane existed resume as explicit classic/1 runs.
"""

import pytest

from repro.chaos import truncate_tail
from repro.experiments import CheckpointMismatchError, run_sweep
from repro.experiments.persistence import (
    decode_checkpoint_line,
    encode_checkpoint_line,
)

from tests.fastlane.grid import GRID_RUN, grid_config, sweep_fingerprints


def read_lines(path):
    with open(path) as f:
        return f.read().splitlines()


class TestHeaderBinding:
    def test_header_records_backend_and_replications(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        run_sweep(
            grid_config(), run=GRID_RUN, backend="batched",
            replications=2, checkpoint=path,
        )
        header = decode_checkpoint_line(read_lines(path)[0])
        assert header["backend"] == "batched"
        assert header["replications"] == 2

    def test_classic_header_still_says_classic(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        run_sweep(grid_config(), run=GRID_RUN, checkpoint=path)
        header = decode_checkpoint_line(read_lines(path)[0])
        assert header["backend"] == "classic"
        assert header["replications"] == 1

    def test_rep_key_only_on_nonzero_replications(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        run_sweep(
            grid_config(), run=GRID_RUN, backend="batched",
            replications=3, checkpoint=path,
        )
        points = [decode_checkpoint_line(raw) for raw in read_lines(path)[1:]]
        recorded = {
            (p["algorithm"], p["mpl"], p.get("rep", 0)) for p in points
        }
        config = grid_config()
        assert recorded == {
            (algorithm, mpl, rep)
            for algorithm in config.algorithms
            for mpl in config.mpls
            for rep in range(3)
        }
        # Replication 0 omits the key, keeping non-replicated
        # checkpoints byte-compatible with the historical layout.
        for point in points:
            assert point.get("rep", 0) != 0 or "rep" not in point


class TestResumeMismatch:
    def test_backend_mismatch_refused_both_ways(self, tmp_path):
        classic_path = tmp_path / "classic.ckpt"
        run_sweep(grid_config(), run=GRID_RUN, checkpoint=classic_path)
        with pytest.raises(CheckpointMismatchError, match="--backend"):
            run_sweep(
                grid_config(), run=GRID_RUN, backend="batched",
                checkpoint=classic_path, resume=True,
            )
        batched_path = tmp_path / "batched.ckpt"
        run_sweep(
            grid_config(), run=GRID_RUN, backend="batched",
            checkpoint=batched_path,
        )
        with pytest.raises(CheckpointMismatchError, match="--backend"):
            run_sweep(
                grid_config(), run=GRID_RUN,
                checkpoint=batched_path, resume=True,
            )

    def test_replication_count_mismatch_refused(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        run_sweep(
            grid_config(), run=GRID_RUN, backend="batched",
            replications=2, checkpoint=path,
        )
        with pytest.raises(CheckpointMismatchError, match="replication"):
            run_sweep(
                grid_config(), run=GRID_RUN, backend="batched",
                replications=3, checkpoint=path, resume=True,
            )

    def test_legacy_header_defaults_to_classic(self, tmp_path):
        # Headers written before the fast lane existed carry neither
        # key: they must resume as classic/1 and refuse batched.
        path = tmp_path / "sweep.ckpt"
        run_sweep(grid_config(), run=GRID_RUN, checkpoint=path)
        lines = read_lines(path)
        header = decode_checkpoint_line(lines[0])
        del header["backend"]
        del header["replications"]
        with open(path, "w") as f:
            f.write(encode_checkpoint_line(header))
            f.write("\n".join(lines[1:]) + "\n")
        resumed = run_sweep(
            grid_config(), run=GRID_RUN, checkpoint=path, resume=True
        )
        fresh = run_sweep(grid_config(), run=GRID_RUN)
        assert sweep_fingerprints(resumed) == sweep_fingerprints(fresh)
        with pytest.raises(CheckpointMismatchError, match="--backend"):
            run_sweep(
                grid_config(), run=GRID_RUN, backend="batched",
                checkpoint=path, resume=True,
            )


class TestBatchedResume:
    def test_completed_checkpoint_reloads_identically(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        fresh = run_sweep(
            grid_config(), run=GRID_RUN, backend="batched",
            replications=3, checkpoint=path,
        )
        resumed = run_sweep(
            grid_config(), run=GRID_RUN, backend="batched",
            replications=3, checkpoint=path, resume=True,
        )
        assert sweep_fingerprints(resumed) == sweep_fingerprints(fresh)

    def test_torn_checkpoint_resumes_byte_identically(self, tmp_path):
        # Kill-mid-write crash model: chop the checkpoint's tail, then
        # resume; the re-simulated points must reproduce the fault-free
        # sweep exactly (a partially lost point refuses nothing — the
        # fused trajectory re-runs from its own seed).
        path = tmp_path / "sweep.ckpt"
        fresh = run_sweep(
            grid_config(), run=GRID_RUN, backend="batched",
            replications=3, checkpoint=path,
        )
        truncate_tail(path, 200)
        resumed = run_sweep(
            grid_config(), run=GRID_RUN, backend="batched",
            replications=3, checkpoint=path, resume=True,
        )
        assert sweep_fingerprints(resumed) == sweep_fingerprints(fresh)
