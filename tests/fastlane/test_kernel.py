"""``drain_until`` is exactly ``env.run(until=deadline)``, minus dispatch.

Twin environments run identical schedules — one through the reference
:meth:`Environment.run`, one through the fast-lane drain — and must
observe the same wakeups in the same order at every boundary, including
re-entry across multiple drains (the fused driver calls once per batch
boundary).
"""

import pytest

from repro.des import Environment
from repro.des.errors import EmptySchedule
from repro.fastlane import drain_until, peek_time


def _ticker(env, log, label, period, count):
    for _ in range(count):
        yield env.timeout(period)
        log.append((label, env.now))


def _twin():
    env = Environment()
    log = []
    env.process(_ticker(env, log, "fast", 0.7, 20))
    env.process(_ticker(env, log, "slow", 1.1, 20))
    return env, log


class TestDrainUntil:
    def test_matches_reference_run_across_boundaries(self):
        reference, reference_log = _twin()
        drained, drained_log = _twin()
        for boundary in (2.0, 2.0, 5.5, 13.0):
            reference.run(until=boundary)
            drain_until(drained, boundary)
            assert drained.now == reference.now == boundary
            assert drained_log == reference_log

    def test_event_on_the_deadline_stays_queued(self):
        # Same strict-inequality contract as the reference loop: the
        # clock lands on the deadline, the deadline's own events wait.
        reference, reference_log = _twin()
        drained, drained_log = _twin()
        reference.run(until=0.7)
        drain_until(drained, 0.7)
        assert drained_log == reference_log == []
        assert peek_time(drained) == 0.7

    def test_deadline_in_the_past_raises(self):
        env, _ = _twin()
        drain_until(env, 3.0)
        with pytest.raises(ValueError, match="must not be before"):
            drain_until(env, 1.0)

    def test_drain_to_now_is_a_no_op(self):
        env, log = _twin()
        drain_until(env, 3.0)
        snapshot = list(log)
        drain_until(env, 3.0)
        assert log == snapshot and env.now == 3.0

    def test_uncaught_failure_propagates(self):
        def bomb(env):
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        env = Environment()
        env.process(bomb(env))
        with pytest.raises(RuntimeError, match="boom"):
            drain_until(env, 2.0)


class TestPeekTime:
    def test_peeks_the_next_wakeup(self):
        env, _ = _twin()
        assert peek_time(env) == 0.0  # the process-start events
        drain_until(env, 1.0)
        assert peek_time(env) == 1.1

    def test_empty_schedule_raises(self):
        with pytest.raises(EmptySchedule):
            peek_time(Environment())
