"""Shared tiny sweep grid for the fast-lane tests.

Small enough that a full classic-vs-batched comparison (two algorithms,
two mpls, a few replications each) stays in test-suite territory, big
enough that blocking and optimistic actually conflict at the higher
mpl.
"""

import hashlib
import json

from repro.core import RunConfig, SimulationParameters
from repro.experiments import ExperimentConfig

GRID_RUN = RunConfig(batches=2, batch_time=5.0, warmup_batches=1, seed=11)


def grid_params():
    return SimulationParameters(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )


def grid_config(**overrides):
    defaults = dict(
        experiment_id="fastlane-grid",
        title="Fast-lane parity grid",
        figures=(0,),
        params=grid_params(),
        algorithms=("blocking", "optimistic"),
        mpls=(2, 5),
        metrics=("throughput",),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def result_fingerprint(result):
    """sha256 over every total and every per-batch series value."""
    payload = {
        "totals": result.totals,
        "series": {
            name: list(result.analyzer.series(name).values)
            for name in sorted(result.analyzer.names())
        },
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def sweep_fingerprints(sweep):
    """{(algorithm, mpl, rep): fingerprint} over every replicate."""
    out = {}
    for (algorithm, mpl), reps in sweep.replicates.items():
        for rep, result in reps.items():
            out[(algorithm, mpl, rep)] = result_fingerprint(result)
    return out
