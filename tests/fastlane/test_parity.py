"""Bit-parity of the batched fast lane against the classic lane.

The fast lane's whole claim is "same numbers, less work": every
replication carved from a fused trajectory must be bit-identical to
the independent ``run_simulation`` call the classic lane would have
made for it. These tests pin that claim three ways:

* against the checked-in golden sha256 digests (all three paper
  algorithms, finite and infinite resources) for a single replication;
* per replication against the classic lane's definition
  (``warmup_batches = w + r * B``) for multi-replication points;
* at the ``run_sweep`` level against both the sequential and the
  multiprocess classic drivers, replicate for replicate.
"""

import pytest

from repro.core.simulation import run_simulation
from repro.experiments import run_sweep
from repro.fastlane import TapeStore, run_point_replications

from tests.fastlane.grid import (
    GRID_RUN,
    grid_config,
    result_fingerprint,
    sweep_fingerprints,
)
from tests.resources.test_golden_parity import (
    FINITE,
    GOLDEN,
    INFINITE,
    RUN,
    _fingerprint,
)

ALGORITHMS = ("blocking", "immediate_restart", "optimistic")


def _params(resources):
    return FINITE if resources == "finite" else INFINITE


def classic_replication(params, algorithm, run, rep):
    """The classic lane's definition of replication ``rep``."""
    segment = run.with_changes(
        warmup_batches=run.warmup_batches + rep * run.batches
    )
    return run_simulation(params, algorithm=algorithm, run=segment)


class TestFusedTrajectoryParity:
    @pytest.mark.parametrize("algorithm,resources", sorted(GOLDEN))
    def test_single_replication_matches_golden(self, algorithm, resources):
        result = run_point_replications(
            _params(resources), algorithm, RUN, 1
        )[0]
        assert _fingerprint(result) == GOLDEN[(algorithm, resources)]

    @pytest.mark.parametrize("algorithm,resources", sorted(GOLDEN))
    def test_every_carved_replication_matches_classic(
        self, algorithm, resources
    ):
        params = _params(resources)
        carved = run_point_replications(params, algorithm, RUN, 3)
        for rep, result in enumerate(carved):
            classic = classic_replication(params, algorithm, RUN, rep)
            assert _fingerprint(result) == _fingerprint(classic)
            assert result.run == classic.run
            assert result.algorithm == classic.algorithm

    def test_tape_fed_classic_run_matches_golden(self):
        # Tape injection alone changes nothing: the tape replays the
        # very sequence the model-owned generator would draw.
        store = TapeStore()
        for algorithm in ALGORITHMS:
            result = run_simulation(
                FINITE, algorithm=algorithm, run=RUN,
                workload=store.workload(FINITE, RUN.seed),
            )
            assert _fingerprint(result) == GOLDEN[(algorithm, "finite")]


class TestSweepParity:
    def test_batched_matches_sequential_classic(self):
        classic = run_sweep(grid_config(), run=GRID_RUN, replications=3)
        batched = run_sweep(
            grid_config(), run=GRID_RUN, replications=3, backend="batched"
        )
        assert sweep_fingerprints(batched) == sweep_fingerprints(classic)
        # Replication 0 keeps its historical home in ``results``.
        for pair, result in classic.results.items():
            assert result_fingerprint(batched.results[pair]) == (
                result_fingerprint(result)
            )
        # Same statuses (all clean first-attempt successes)...
        assert set(batched.replicate_statuses) == set(
            classic.replicate_statuses
        )
        for status in batched.replicate_statuses.values():
            assert status.status == "ok"
            assert status.attempts == 1
        # ...and identical cross-replication aggregates.
        for algorithm, mpl in classic.results:
            assert batched.cross_replication(
                "throughput", algorithm, mpl
            ) == classic.cross_replication("throughput", algorithm, mpl)

    def test_batched_matches_multiprocess_classic(self):
        fanned = run_sweep(
            grid_config(), run=GRID_RUN, replications=2, workers=2
        )
        batched = run_sweep(
            grid_config(), run=GRID_RUN, replications=2, backend="batched"
        )
        assert sweep_fingerprints(batched) == sweep_fingerprints(fanned)

    def test_spot_invariants_change_no_results(self):
        plain = run_sweep(
            grid_config(), run=GRID_RUN, replications=2, backend="batched",
            invariants="off",
        )
        spotted = run_sweep(
            grid_config(), run=GRID_RUN, replications=2, backend="batched",
            invariants="spot",
        )
        assert sweep_fingerprints(spotted) == sweep_fingerprints(plain)

    def test_single_replication_sweep_is_the_classic_sweep(self):
        # backend="batched" with replications=1 must still match the
        # plain historical sweep byte for byte, results dict included.
        classic = run_sweep(grid_config(), run=GRID_RUN)
        batched = run_sweep(
            grid_config(), run=GRID_RUN, backend="batched"
        )
        assert set(batched.results) == set(classic.results)
        for pair, result in classic.results.items():
            assert result_fingerprint(batched.results[pair]) == (
                result_fingerprint(result)
            )


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_sweep(grid_config(), run=GRID_RUN, backend="turbo")

    def test_replications_must_be_positive(self):
        with pytest.raises(ValueError, match="replications"):
            run_sweep(grid_config(), run=GRID_RUN, replications=0)

    def test_batched_refuses_worker_fanout(self):
        with pytest.raises(ValueError, match="single-process"):
            run_sweep(
                grid_config(), run=GRID_RUN, backend="batched", workers=2
            )

    def test_batched_refuses_per_point_observability(self, tmp_path):
        with pytest.raises(ValueError, match="timeseries/trace"):
            run_sweep(
                grid_config(), run=GRID_RUN, backend="batched",
                timeseries=1.0,
            )
        with pytest.raises(ValueError, match="timeseries/trace"):
            run_sweep(
                grid_config(), run=GRID_RUN, backend="batched",
                trace=str(tmp_path),
            )

    def test_spot_invariants_require_batched_backend(self):
        with pytest.raises(ValueError, match="spot"):
            run_sweep(grid_config(), run=GRID_RUN, invariants="spot")
