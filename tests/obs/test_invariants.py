"""Tests for the runtime invariant checker.

Two acceptance bars from opposite directions:

* **No false positives** — strict checking across every paper algorithm
  on both finite and infinite resources reports zero violations, and
  the checked run stays bit-identical to a bare one (the checker is a
  pure observer).
* **No false negatives** — deliberately broken engines (double commit
  emission, duplicated commit points) are caught at the violating event
  with a structured :class:`InvariantViolationError`, and the synthetic
  automaton tests pin each invariant individually.
"""

import pytest

from repro.core import RunConfig, SimulationParameters, run_simulation
from repro.core.engine import SystemModel
from repro.obs import (
    INVARIANT_MODES,
    InvariantChecker,
    InvariantViolationError,
    resolve_invariant_mode,
)
from repro.obs.events import (
    CC_GRANT,
    RESOURCE_BUSY,
    RESOURCE_IDLE,
    TX_ADMIT,
    TX_COMMIT_POINT,
    TX_COMPLETE,
    TX_SUBMIT,
)
from repro.obs.invariants import MAX_RECORDED_VIOLATIONS

ALGORITHMS = ["blocking", "immediate_restart", "optimistic"]

FINITE = SimulationParameters(
    db_size=60, min_size=2, max_size=6, write_prob=0.5,
    num_terms=10, mpl=8, ext_think_time=0.2,
    obj_io=0.01, obj_cpu=0.005, num_cpus=1, num_disks=2,
)
INFINITE = FINITE.with_changes(num_cpus=None, num_disks=None)
RUN = RunConfig(batches=3, batch_time=5.0, warmup_batches=1, seed=1234)


class _Tx:
    """Minimal stand-in for a Transaction in synthetic-event tests."""

    def __init__(self, tx_id):
        self.id = tx_id


def drive(checker, kind, time, **fields):
    """Deliver one synthetic event straight to the checker's handler."""
    checker.handlers()[kind](time, fields)


class TestCleanRuns:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("params", [FINITE, INFINITE],
                             ids=["finite", "infinite"])
    def test_strict_run_has_zero_violations(self, algorithm, params):
        result = run_simulation(
            params, algorithm=algorithm, run=RUN, invariants="strict"
        )
        report = result.diagnostics["invariants"]
        assert report["mode"] == "strict"
        assert report["violations"] == []
        assert report["suppressed"] == 0
        # The checker actually saw the run, not an empty stream.
        assert report["events_checked"] > result.totals["commits"]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_checked_run_is_bit_identical_to_bare(self, algorithm):
        bare = run_simulation(INFINITE, algorithm=algorithm, run=RUN)
        checked = run_simulation(
            INFINITE, algorithm=algorithm, run=RUN, invariants="strict"
        )
        assert checked.totals == bare.totals
        assert checked.summary() == bare.summary()

    def test_off_leaves_diagnostics_untouched(self):
        result = run_simulation(
            INFINITE, algorithm="blocking", run=RUN, invariants="off"
        )
        assert result.diagnostics is None

    def test_warn_mode_reports_through_diagnostics(self):
        result = run_simulation(
            FINITE, algorithm="blocking", run=RUN, invariants="warn"
        )
        report = result.diagnostics["invariants"]
        assert report["mode"] == "warn"
        assert report["violations"] == []


class _DoubleCompleteModel(SystemModel):
    """Broken engine: announces every commit twice."""

    def _complete_commit(self, tx):
        super()._complete_commit(tx)
        self.bus.emit(TX_COMPLETE, tx=tx)


class _DoubleCommitPointModel(SystemModel):
    """Broken engine: emits a second commit point per commit."""

    def _install_writes(self, tx):
        super()._install_writes(tx)
        if self.bus.wants_commit_point:
            self.bus.emit(TX_COMMIT_POINT, tx=tx)


class TestBrokenEngineCaught:
    def _run_broken(self, model_class, mode="strict"):
        checker = InvariantChecker(mode=mode)
        model = model_class(
            FINITE, algorithm="blocking", seed=1234,
            subscribers=(checker,),
        )
        model.run_until(10.0)
        return checker

    def test_double_complete_raises_structured_error(self):
        with pytest.raises(InvariantViolationError) as excinfo:
            self._run_broken(_DoubleCompleteModel)
        violation = excinfo.value.violation
        assert violation.invariant == "conservation"
        assert violation.details["event"] == "commit"
        assert violation.time >= 0.0
        # The violation record is JSON-shaped for diagnostics.
        assert set(violation.to_dict()) == {
            "time", "invariant", "message", "details",
        }

    def test_double_commit_point_raises(self):
        with pytest.raises(InvariantViolationError) as excinfo:
            self._run_broken(_DoubleCommitPointModel)
        assert excinfo.value.violation.invariant == (
            "commit_point_ordering"
        )

    def test_violations_are_assertion_errors(self):
        # The taxonomy exempts AssertionError from retry/degradation;
        # a broken engine must never be retried into silence.
        with pytest.raises(AssertionError):
            self._run_broken(_DoubleCompleteModel)

    def test_warn_mode_records_and_finishes(self):
        checker = self._run_broken(_DoubleCompleteModel, mode="warn")
        assert checker.violation_count > 0
        assert all(
            v.invariant == "conservation" for v in checker.violations
        )


class TestAutomatonUnit:
    def test_admit_before_submit_violates_conservation(self):
        checker = InvariantChecker(mode="strict")
        with pytest.raises(InvariantViolationError) as excinfo:
            drive(checker, TX_ADMIT, 1.0, tx=_Tx(7))
        assert excinfo.value.violation.invariant == "conservation"

    def test_commit_without_commit_point_violates_ordering(self):
        checker = InvariantChecker(mode="strict")
        tx = _Tx(1)
        drive(checker, TX_SUBMIT, 0.0, tx=tx)
        drive(checker, TX_ADMIT, 0.1, tx=tx)
        with pytest.raises(InvariantViolationError) as excinfo:
            drive(checker, TX_COMPLETE, 0.2, tx=tx)
        assert excinfo.value.violation.invariant == (
            "commit_point_ordering"
        )

    def test_clean_lifecycle_accepted(self):
        checker = InvariantChecker(mode="strict")
        tx = _Tx(1)
        drive(checker, TX_SUBMIT, 0.0, tx=tx)
        drive(checker, TX_ADMIT, 0.1, tx=tx)
        drive(checker, TX_COMMIT_POINT, 0.2, tx=tx)
        drive(checker, TX_COMPLETE, 0.3, tx=tx)
        assert checker.violation_count == 0
        assert checker.events_checked == 4

    def test_clock_regression_detected(self):
        checker = InvariantChecker(mode="strict")
        drive(checker, TX_SUBMIT, 5.0, tx=_Tx(1))
        with pytest.raises(InvariantViolationError) as excinfo:
            drive(checker, TX_SUBMIT, 4.0, tx=_Tx(2))
        assert excinfo.value.violation.invariant == (
            "clock_monotonicity"
        )

    def test_idle_before_busy_violates_pairing(self):
        checker = InvariantChecker(mode="strict")
        with pytest.raises(InvariantViolationError) as excinfo:
            drive(checker, RESOURCE_IDLE, 0.0, resource="cpu")
        assert excinfo.value.violation.invariant == "resource_pairing"

    def test_busy_idle_pairs_accepted(self):
        checker = InvariantChecker(mode="strict")
        drive(checker, RESOURCE_BUSY, 0.0, resource="disk", disk=0)
        drive(checker, RESOURCE_BUSY, 0.1, resource="disk", disk=1)
        drive(checker, RESOURCE_IDLE, 0.2, resource="disk", disk=0)
        drive(checker, RESOURCE_IDLE, 0.3, resource="disk", disk=1)
        assert checker.violation_count == 0

    def test_warn_mode_caps_recorded_violations(self):
        checker = InvariantChecker(mode="warn")
        for index in range(MAX_RECORDED_VIOLATIONS + 5):
            drive(checker, RESOURCE_IDLE, float(index), resource="cpu")
        assert len(checker.violations) == MAX_RECORDED_VIOLATIONS
        assert checker.suppressed == 5
        assert checker.violation_count == MAX_RECORDED_VIOLATIONS + 5


class TestLockExclusivity:
    def _checker(self):
        return InvariantChecker(mode="strict", check_locks=True)

    def _admit(self, checker, tx, time):
        drive(checker, TX_SUBMIT, time, tx=tx)
        drive(checker, TX_ADMIT, time, tx=tx)

    def test_conflicting_write_grants_violate(self):
        checker = self._checker()
        a, b = _Tx(1), _Tx(2)
        self._admit(checker, a, 0.0)
        self._admit(checker, b, 0.0)
        drive(checker, CC_GRANT, 0.1, tx=a, obj=5, op="write")
        with pytest.raises(InvariantViolationError) as excinfo:
            drive(checker, CC_GRANT, 0.2, tx=b, obj=5, op="write")
        assert excinfo.value.violation.invariant == "lock_exclusivity"

    def test_read_while_foreign_write_violates(self):
        checker = self._checker()
        a, b = _Tx(1), _Tx(2)
        self._admit(checker, a, 0.0)
        self._admit(checker, b, 0.0)
        drive(checker, CC_GRANT, 0.1, tx=a, obj=5, op="write")
        with pytest.raises(InvariantViolationError):
            drive(checker, CC_GRANT, 0.2, tx=b, obj=5, op="read")

    def test_commit_releases_for_the_next_holder(self):
        checker = self._checker()
        a, b = _Tx(1), _Tx(2)
        self._admit(checker, a, 0.0)
        self._admit(checker, b, 0.0)
        drive(checker, CC_GRANT, 0.1, tx=a, obj=5, op="write")
        drive(checker, TX_COMMIT_POINT, 0.2, tx=a)
        drive(checker, TX_COMPLETE, 0.3, tx=a)
        drive(checker, CC_GRANT, 0.4, tx=b, obj=5, op="write")
        assert checker.violation_count == 0

    def test_shared_reads_allowed(self):
        checker = self._checker()
        a, b = _Tx(1), _Tx(2)
        self._admit(checker, a, 0.0)
        self._admit(checker, b, 0.0)
        drive(checker, CC_GRANT, 0.1, tx=a, obj=5, op="read")
        drive(checker, CC_GRANT, 0.2, tx=b, obj=5, op="read")
        assert checker.violation_count == 0

    def test_lock_checks_auto_enabled_only_for_blocking(self):
        for algorithm, expected in [("blocking", True),
                                    ("optimistic", False)]:
            checker = InvariantChecker(mode="strict")
            SystemModel(
                INFINITE, algorithm=algorithm, seed=1,
                subscribers=(checker,),
            )
            assert checker.check_locks is expected


class TestModeResolution:
    def test_explicit_mode_wins(self):
        assert resolve_invariant_mode("warn", environ={}) == "warn"

    def test_env_fallback(self):
        env = {"REPRO_INVARIANTS": "strict"}
        assert resolve_invariant_mode(None, environ=env) == "strict"

    def test_default_is_off(self):
        assert resolve_invariant_mode(None, environ={}) == "off"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="invariants mode"):
            resolve_invariant_mode("loud", environ={})
        with pytest.raises(ValueError):
            InvariantChecker(mode="off")  # off means "don't build one"

    def test_modes_are_closed_set(self):
        assert INVARIANT_MODES == ("strict", "warn", "off")

    def test_env_variable_reaches_run_simulation(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "warn")
        result = run_simulation(
            INFINITE, algorithm="blocking",
            run=RunConfig(batches=1, batch_time=2.0, warmup_batches=0,
                          seed=7),
        )
        assert result.diagnostics["invariants"]["mode"] == "warn"
