"""Tests for the built-in bus subscribers."""

import pytest

from repro.core import SimulationParameters, SystemModel
from repro.core.history import CommittedRecord
from repro.core.transaction import Transaction
from repro.des import Environment, TraceRecorder
from repro.obs import FaultAccountingSubscriber, InstrumentationBus, scalar_fields


def small_params(**overrides):
    defaults = dict(
        db_size=60, min_size=2, max_size=6, write_prob=0.5,
        num_terms=10, mpl=8, ext_think_time=0.2,
        obj_io=0.01, obj_cpu=0.005, num_cpus=None, num_disks=None,
    )
    defaults.update(overrides)
    return SimulationParameters(**defaults)


class TestScalarFields:
    def test_transactions_collapse_to_ids(self):
        tx = Transaction(7, 0, read_set=(1, 2), write_set=(2,))
        flat = scalar_fields({"tx": tx, "reason": "deadlock", "n": 3})
        assert flat == {"tx": 7, "reason": "deadlock", "n": 3}

    def test_plain_fields_pass_through_unchanged(self):
        assert scalar_fields({"a": 1.5, "b": None}) == {"a": 1.5, "b": None}


class TestMetricsSubscriber:
    """The engine attaches this by default; its output *is* the
    MetricsCollector the rest of the system reads, so the strongest
    check is cross-consistency on a real run."""

    @pytest.fixture(scope="class")
    def model(self):
        model = SystemModel(small_params(), "blocking", seed=9)
        model.run_until(20.0)
        return model

    def test_levels_reflect_admission_state(self, model):
        assert model.metrics.active_level.value == model.active_count
        assert model.metrics.ready_queue_level.value == len(
            model.ready_queue
        )

    def test_counters_are_populated(self, model):
        assert model.metrics.commits.total > 0
        assert model.metrics.blocks.total > 0


class TestTraceSubscriber:
    @pytest.fixture(scope="class")
    def traced(self):
        tracer = TraceRecorder()
        model = SystemModel(small_params(), "blocking", seed=9,
                            tracer=tracer)
        model.run_until(20.0)
        return model, tracer

    def test_legacy_field_layouts(self, traced):
        model, tracer = traced
        submit = next(iter(tracer.query(kind="submit")))
        assert isinstance(submit.tx, int)
        assert set(submit.fields) == {"tx", "terminal", "reads", "writes"}
        commit = next(iter(tracer.query(kind="commit")))
        assert set(commit.fields) == {"tx", "attempt", "response"}
        assert commit.response > 0.0

    def test_counts_match_metrics(self, traced):
        model, tracer = traced
        assert tracer.counts["commit"] == model.metrics.commits.total
        assert tracer.counts["block"] == model.metrics.blocks.total

    def test_unfiltered_tracer_sees_optional_kinds(self, traced):
        # With a tracer subscribed to every kind, the engine's guarded
        # emissions (commit points, CC grants, resource busy/idle) must
        # actually fire.
        model, tracer = traced
        assert tracer.counts["commit_point"] == model.metrics.commits.total
        assert tracer.counts["cc_grant"] > 0
        assert tracer.counts["resource_busy"] > 0
        # Holds still in progress at the horizon have emitted busy but
        # not yet idle; each active transaction holds at most one
        # resource at a time, so the gap is bounded by the MPL.
        in_flight = (
            tracer.counts["resource_busy"] - tracer.counts["resource_idle"]
        )
        assert 0 <= in_flight <= model.params.mpl

    def test_recorder_kind_filter_suppresses_emission(self):
        tracer = TraceRecorder(kinds={"restart", "commit"})
        model = SystemModel(small_params(), "blocking", seed=9,
                            tracer=tracer)
        model.run_until(10.0)
        assert set(tracer.counts) <= {"restart", "commit"}
        # The source filter must also keep the optional fast-path
        # emissions off entirely.
        assert not model.bus.wants_commit_point
        assert not model.bus.wants_resource
        assert not model.bus.wants_cc


class TestHistorySubscriber:
    def test_committed_history_records_commit_points(self):
        model = SystemModel(small_params(), "blocking", seed=9,
                            record_history=True)
        model.run_until(15.0)
        history = model.committed_history
        assert history
        assert all(isinstance(r, CommittedRecord) for r in history)
        # Commit points are recorded in commit order.
        times = [r.commit_time for r in history]
        assert times == sorted(times)
        assert len(history) >= model.metrics.commits.total

    def test_without_record_history_property_is_none(self):
        model = SystemModel(small_params(), "blocking", seed=9)
        assert model.committed_history is None


class TestFaultAccountingSubscriber:
    def test_accumulates_from_events(self):
        bus = InstrumentationBus(Environment())
        accounting = bus.attach(FaultAccountingSubscriber())
        bus.emit("disk_fail", disk=0)
        assert accounting.disk_failures == 1
        assert accounting.disks_down == 1
        bus.emit("disk_repair", disk=0, downtime=2.5)
        assert accounting.disks_down == 0
        assert accounting.disk_downtime == pytest.approx(2.5)
        bus.emit("cpu_degrade", factor=2.0)
        bus.emit("cpu_restore", duration=1.5)
        assert accounting.cpu_degradations == 1
        assert accounting.cpu_degraded_time == pytest.approx(1.5)
        bus.emit("access_fault", tx=3, attempt=1)
        assert accounting.access_faults == 1

    def test_ignores_non_fault_kinds(self):
        bus = InstrumentationBus(Environment())
        accounting = bus.attach(FaultAccountingSubscriber())
        bus.emit("commit", tx=1)
        bus.emit("submit", tx=2)
        assert accounting.disk_failures == 0
        assert accounting.access_faults == 0
