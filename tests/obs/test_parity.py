"""Observer-neutrality: subscribers must never perturb results.

The bus's core contract is that every subscriber is a pure observer —
attaching all of them at once (tracer, history, sampler, JSONL sink)
must leave a fixed-seed run bit-identical to a bare run. This is what
lets diagnostics be turned on for a misbehaving sweep point without
invalidating the comparison against its neighbors.
"""

import io

import pytest

from repro.core import RunConfig, SimulationParameters, run_simulation
from repro.des import TraceRecorder
from repro.obs import JsonlSink, TimeSeriesSampler


PARAMS = SimulationParameters(
    db_size=60, min_size=2, max_size=6, write_prob=0.5,
    num_terms=10, mpl=8, ext_think_time=0.2,
    obj_io=0.01, obj_cpu=0.005, num_cpus=None, num_disks=None,
)
RUN = RunConfig(batches=3, batch_time=5.0, warmup_batches=1, seed=1234)


def run_bare(algorithm):
    return run_simulation(PARAMS, algorithm=algorithm, run=RUN)


def run_observed(algorithm):
    sampler = TimeSeriesSampler(interval=0.25)
    sink = JsonlSink(io.StringIO())
    tracer = TraceRecorder(capacity=500)
    return run_simulation(
        PARAMS, algorithm=algorithm, run=RUN,
        record_history=True, tracer=tracer,
        subscribers=(sampler, sink),
    )


@pytest.mark.parametrize(
    "algorithm", ["blocking", "immediate_restart", "optimistic"]
)
def test_full_observation_is_bit_identical(algorithm):
    bare = run_bare(algorithm)
    observed = run_observed(algorithm)

    assert observed.totals == bare.totals
    assert observed.summary() == bare.summary()
    for name in ("throughput", "response_time", "restart_ratio",
                 "block_ratio"):
        assert observed.analyzer.series(name).values == (
            bare.analyzer.series(name).values
        )


def test_repeated_observed_runs_are_deterministic():
    first = run_observed("blocking")
    second = run_observed("blocking")
    assert first.totals == second.totals
    assert first.summary() == second.summary()
