"""Tests of repro.obs: the unified instrumentation bus and subscribers."""
