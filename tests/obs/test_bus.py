"""Tests for the InstrumentationBus dispatch machinery."""

import pytest

from repro.des import Environment
from repro.obs import InstrumentationBus, Subscriber
from repro.obs.events import ALL_KINDS, CC_GRANT, RESOURCE_BUSY, TX_COMMIT_POINT


class Recording(Subscriber):
    """Collects (time, kind, fields) tuples for assertions."""

    def __init__(self, kinds=None, name=""):
        self.kinds = kinds
        self.name = name
        self.seen = []

    def on_event(self, time, kind, fields):
        self.seen.append((time, kind, dict(fields)))


class TestDispatch:
    def test_emit_without_subscribers_is_noop(self):
        bus = InstrumentationBus(Environment())
        bus.emit("commit", tx=1)  # must not raise

    def test_emit_reaches_subscribed_kind_only(self):
        bus = InstrumentationBus(Environment())
        sub = bus.attach(Recording(kinds=("commit",)))
        bus.emit("commit", tx=1)
        bus.emit("restart", tx=2, reason="deadlock")
        assert [(k, f) for _, k, f in sub.seen] == [("commit", {"tx": 1})]

    def test_handlers_receive_environment_time(self):
        env = Environment()
        bus = InstrumentationBus(env)
        sub = bus.attach(Recording(kinds=("tick",)))

        def proc(env):
            yield env.timeout(3.5)
            bus.emit("tick")

        env.process(proc(env))
        env.run()
        assert sub.seen == [(3.5, "tick", {})]

    def test_dispatch_order_is_attach_order(self):
        bus = InstrumentationBus(Environment())
        order = []

        class Ordered(Subscriber):
            kinds = ("commit",)

            def __init__(self, tag):
                self.tag = tag

            def on_event(self, time, kind, fields):
                order.append(self.tag)

        bus.attach(Ordered("first"))
        bus.attach(Ordered("second"))
        bus.emit("commit", tx=1)
        assert order == ["first", "second"]

    def test_default_kinds_cover_the_whole_taxonomy(self):
        bus = InstrumentationBus(Environment())
        sub = bus.attach(Recording())  # kinds=None -> ALL_KINDS
        for kind in sorted(ALL_KINDS):
            bus.emit(kind)
        assert {k for _, k, _ in sub.seen} == set(ALL_KINDS)


class TestSubscription:
    def test_attach_returns_subscriber(self):
        bus = InstrumentationBus(Environment())
        sub = Recording(kinds=("commit",))
        assert bus.attach(sub) is sub

    def test_on_attach_hook_receives_bus_and_model(self):
        bus = InstrumentationBus(Environment())
        calls = []

        class Hooked(Recording):
            def on_attach(self, bus, model):
                calls.append((bus, model))

        marker = object()
        bus.attach(Hooked(kinds=()), model=marker)
        assert calls == [(bus, marker)]

    def test_detach_stops_delivery(self):
        bus = InstrumentationBus(Environment())
        sub = bus.attach(Recording(kinds=("commit",)))
        bus.emit("commit", tx=1)
        bus.detach(sub)
        bus.emit("commit", tx=2)
        assert len(sub.seen) == 1

    def test_detach_unknown_subscriber_raises(self):
        bus = InstrumentationBus(Environment())
        with pytest.raises(ValueError):
            bus.detach(Recording())


class TestFastPathFlags:
    def test_flags_start_false(self):
        bus = InstrumentationBus(Environment())
        assert not bus.wants_commit_point
        assert not bus.wants_resource
        assert not bus.wants_cc
        assert not bus.wants("commit")

    def test_flags_track_subscriptions(self):
        bus = InstrumentationBus(Environment())
        sub = bus.attach(
            Recording(kinds=(TX_COMMIT_POINT, RESOURCE_BUSY, CC_GRANT))
        )
        assert bus.wants_commit_point
        assert bus.wants_resource
        assert bus.wants_cc
        assert bus.wants(TX_COMMIT_POINT)
        bus.detach(sub)
        assert not bus.wants_commit_point
        assert not bus.wants_resource
        assert not bus.wants_cc

    def test_lifecycle_subscriber_leaves_optional_kinds_cold(self):
        # The default engine configuration: a metrics-style subscriber
        # listening to lifecycle kinds must not force the high-volume
        # optional emissions on.
        bus = InstrumentationBus(Environment())
        bus.attach(Recording(kinds=("submit", "admit", "commit")))
        assert not bus.wants_commit_point
        assert not bus.wants_resource
        assert not bus.wants_cc
