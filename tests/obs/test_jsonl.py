"""Tests for the JsonlSink subscriber and read_jsonl loader."""

import io
import json

from repro.core import SystemModel
from repro.des import Environment
from repro.obs import InstrumentationBus, JsonlSink, read_jsonl

from tests.obs.test_subscribers import small_params


class TestRoundTrip:
    def test_model_run_round_trips_through_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path), kinds=("submit", "commit", "restart"))
        try:
            model = SystemModel(small_params(), "blocking", seed=5,
                                subscribers=(sink,))
            model.run_until(10.0)
        finally:
            sink.close()

        events = read_jsonl(str(path))
        assert len(events) == sink.events_written > 0
        assert {e["kind"] for e in events} <= {"submit", "commit", "restart"}
        commits = [e for e in events if e["kind"] == "commit"]
        assert len(commits) == model.metrics.commits.total
        for e in events:
            # Transactions must be flattened to plain ids.
            assert isinstance(e["tx"], int)
            assert isinstance(e["time"], float)
        times = [e["time"] for e in events]
        assert times == sorted(times)

    def test_kinds_none_subscribes_everything(self, tmp_path):
        path = tmp_path / "all.jsonl"
        with JsonlSink(str(path)) as sink:
            model = SystemModel(small_params(), "blocking", seed=5,
                                subscribers=(sink,))
            model.run_until(2.0)
        kinds = {e["kind"] for e in read_jsonl(str(path))}
        # Unrestricted sinks turn the optional fast-path kinds on.
        assert "cc_grant" in kinds
        assert "resource_busy" in kinds
        assert "commit_point" in kinds


class TestDestinations:
    def test_path_destination_is_owned_and_closed(self, tmp_path):
        path = tmp_path / "owned.jsonl"
        with JsonlSink(str(path)) as sink:
            assert sink.path == str(path)
            sink.on_event(1.0, "commit", {"tx": 1})
        # close() ran via __exit__; the file handle must be closed.
        assert sink._file.closed
        assert read_jsonl(str(path)) == [
            {"time": 1.0, "kind": "commit", "tx": 1}
        ]

    def test_file_like_destination_is_not_closed(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer, kinds=("commit",))
        sink.on_event(2.0, "commit", {"tx": 7})
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue()) == {
            "time": 2.0, "kind": "commit", "tx": 7,
        }

    def test_non_json_values_fall_back_to_repr(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.on_event(0.0, "custom", {"payload": {1, 2}})
        record = json.loads(buffer.getvalue())
        assert record["payload"] == repr({1, 2})


class TestEventCounting:
    def test_events_written_tracks_dispatch(self):
        env = Environment()
        bus = InstrumentationBus(env)
        buffer = io.StringIO()
        sink = bus.attach(JsonlSink(buffer, kinds=("commit",)))
        bus.emit("commit", tx=1)
        bus.emit("restart", tx=2, reason="deadlock")  # filtered out
        bus.emit("commit", tx=3)
        assert sink.events_written == 2
