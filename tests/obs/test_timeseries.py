"""Tests for the TimeSeriesSampler subscriber."""

import pytest

from repro.core import SystemModel
from repro.obs import InstrumentationBus, Subscriber, TimeSeriesSampler
from repro.obs.events import SAMPLE
from repro.obs.timeseries import SAMPLE_FIELDS
from repro.des import Environment

from tests.obs.test_subscribers import small_params


class TestValidation:
    @pytest.mark.parametrize("interval", [0.0, -1.0])
    def test_nonpositive_interval_rejected(self, interval):
        with pytest.raises(ValueError, match="interval"):
            TimeSeriesSampler(interval=interval)

    def test_attach_without_model_rejected(self):
        bus = InstrumentationBus(Environment())
        with pytest.raises(ValueError, match="SystemModel"):
            bus.attach(TimeSeriesSampler())


class TestSampling:
    @pytest.fixture(scope="class")
    def sampled(self):
        sampler = TimeSeriesSampler(interval=0.5)
        model = SystemModel(small_params(), "blocking", seed=4,
                            subscribers=(sampler,))
        model.run_until(10.0)
        return model, sampler

    def test_ticks_land_on_interval_grid(self, sampled):
        _, sampler = sampled
        times = sampler.series()["time"]
        assert times[0] == 0.0
        expected = [i * 0.5 for i in range(len(times))]
        assert times == pytest.approx(expected)
        # 10s horizon at 0.5s spacing: sample at t=0 plus one per tick.
        assert len(sampler) >= 20

    def test_columns_are_aligned(self, sampled):
        _, sampler = sampled
        series = sampler.series()
        assert set(series) == set(SAMPLE_FIELDS)
        lengths = {field: len(values) for field, values in series.items()}
        assert len(set(lengths.values())) == 1

    def test_cumulative_counters_are_nondecreasing(self, sampled):
        _, sampler = sampled
        series = sampler.series()
        for field in ("commits", "restarts", "blocks"):
            values = series[field]
            assert values == sorted(values)
        assert series["commits"][-1] > 0

    def test_rows_match_series(self, sampled):
        _, sampler = sampled
        series = sampler.series()
        rows = sampler.rows()
        assert len(rows) == len(sampler)
        for i, row in enumerate(rows):
            assert row == {f: series[f][i] for f in SAMPLE_FIELDS}

    def test_series_returns_copies(self, sampled):
        _, sampler = sampled
        first = sampler.series()
        first["time"].append(-1.0)
        assert sampler.series()["time"][-1] != -1.0


class TestSampleEvents:
    def test_sample_events_reach_other_subscribers(self):
        class Collect(Subscriber):
            kinds = (SAMPLE,)

            def __init__(self):
                self.rows = []

            def on_event(self, time, kind, fields):
                self.rows.append(dict(fields))

        sampler = TimeSeriesSampler(interval=1.0)
        collector = Collect()
        model = SystemModel(small_params(), "blocking", seed=4,
                            subscribers=(sampler, collector))
        model.run_until(5.0)
        assert len(collector.rows) == len(sampler)
        assert collector.rows == sampler.rows()

    def test_emit_events_false_stays_silent(self):
        class Collect(Subscriber):
            kinds = (SAMPLE,)

            def __init__(self):
                self.rows = []

            def on_event(self, time, kind, fields):
                self.rows.append(dict(fields))

        sampler = TimeSeriesSampler(interval=1.0, emit_events=False)
        collector = Collect()
        model = SystemModel(small_params(), "blocking", seed=4,
                            subscribers=(sampler, collector))
        model.run_until(5.0)
        assert len(sampler) > 0
        assert collector.rows == []
