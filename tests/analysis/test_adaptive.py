"""Tests for the adaptive multiprogramming-level controller."""

import pytest

from repro.analysis import AdaptiveMplController
from repro.core import SimulationParameters, SystemModel


def model(mpl=5, **overrides):
    base = dict(
        db_size=200,
        min_size=4,
        max_size=8,
        write_prob=0.25,
        num_terms=20,
        mpl=mpl,
        ext_think_time=0.5,
        obj_io=0.010,
        obj_cpu=0.005,
        num_cpus=1,
        num_disks=2,
    )
    base.update(overrides)
    return SystemModel(SimulationParameters(**base), "blocking", seed=7)


class TestController:
    def test_requires_system_model(self):
        with pytest.raises(TypeError):
            AdaptiveMplController("not a model")

    def test_run_produces_trace(self):
        controller = AdaptiveMplController(model(), initial_step=2)
        result = controller.run(epochs=6, epoch_time=5.0, warmup_time=5.0)
        assert result.epochs == 6
        assert result.best_throughput > 0
        assert result.final_mpl >= 1

    def test_mpl_stays_within_bounds(self):
        m = model(mpl=5)
        controller = AdaptiveMplController(
            m, min_mpl=2, max_mpl=8, initial_step=10
        )
        controller.run(epochs=8, epoch_time=3.0)
        assert 2 <= m.mpl_limit <= 8

    def test_trace_records_mpl_in_effect(self):
        m = model(mpl=4)
        controller = AdaptiveMplController(m, initial_step=1)
        result = controller.run(epochs=3, epoch_time=3.0)
        first_epoch = result.trace[0]
        assert first_epoch[0] == 0
        assert first_epoch[1] == 4

    def test_degradation_reverses_direction(self):
        m = model()
        controller = AdaptiveMplController(m, initial_step=4)
        controller._last_throughput = 100.0  # previous epoch was great
        controller._adjust(throughput=1.0, values={
            "disk_util": 0.5, "disk_util_useful": 0.5,
        })
        assert controller.direction == -1
        assert controller.step == 2

    def test_waste_guard_blocks_increase(self):
        m = model()
        controller = AdaptiveMplController(m, initial_step=2,
                                           waste_guard=0.3)
        before = m.mpl_limit
        controller._adjust(throughput=5.0, values={
            "disk_util": 1.0, "disk_util_useful": 0.2,  # 80% waste
        })
        assert m.mpl_limit < before + 2  # increase was refused
        assert controller.direction == -1
