"""Unit tests for the serial-replay serializability checker."""


from repro.analysis import (
    check_serializability,
    conflict_graph,
)


class Record:
    """Hand-built committed record for checker unit tests."""

    def __init__(self, tx_id, serial_key, reads=(), writes=(),
                 reads_seen=None):
        self.tx_id = tx_id
        self.serial_key = serial_key
        self.read_set = tuple(reads)
        self.write_set = frozenset(writes)
        self.installed_writes = frozenset(writes)
        self.reads_seen = dict(reads_seen or {})


class TestChecker:
    def test_empty_history_ok(self):
        report = check_serializability([])
        assert report.ok
        assert report.transactions_checked == 0

    def test_consistent_chain_ok(self):
        history = [
            Record(1, 1, reads=("x",), writes=("x",),
                   reads_seen={"x": None}),
            Record(2, 2, reads=("x",), writes=("x",), reads_seen={"x": 1}),
            Record(3, 3, reads=("x",), reads_seen={"x": 2}),
        ]
        report = check_serializability(history)
        assert report.ok
        assert report.reads_checked == 3

    def test_stale_read_detected(self):
        history = [
            Record(1, 1, reads=("x",), writes=("x",),
                   reads_seen={"x": None}),
            Record(2, 2, reads=("x",), reads_seen={"x": None}),  # stale!
        ]
        report = check_serializability(history)
        assert not report.ok
        assert len(report.violations) == 1
        violation = report.violations[0]
        assert violation.tx_id == 2
        assert violation.expected_writer == 1
        assert violation.observed_writer is None
        assert "replay expects" in str(violation)

    def test_order_independent_of_input_sequence(self):
        history = [
            Record(2, 2, reads=("x",), reads_seen={"x": 1}),
            Record(1, 1, reads=("x",), writes=("x",),
                   reads_seen={"x": None}),
        ]
        assert check_serializability(history).ok

    def test_future_read_detected(self):
        # tx 1 (earlier key) claims to have read tx 2's write.
        history = [
            Record(1, 1, reads=("x",), reads_seen={"x": 2}),
            Record(2, 2, reads=(), writes=("x",)),
        ]
        report = check_serializability(history)
        assert not report.ok

    def test_final_state_match(self):
        history = [
            Record(1, 1, writes=("x",)),
            Record(2, 2, writes=("x", "y")),
        ]
        ok_state = {"x": 2, "y": 2}
        report = check_serializability(history, final_state=ok_state)
        assert report.final_state_matches
        assert report.ok

    def test_final_state_mismatch(self):
        history = [Record(1, 1, writes=("x",))]
        report = check_serializability(history, final_state={"x": 99})
        assert report.final_state_matches is False
        assert not report.ok

    def test_skipped_installs_respected(self):
        # Thomas write rule: write_set contains x, but it was not
        # installed; replay must not expect it.
        record = Record(1, 1, writes=("x",))
        record.installed_writes = frozenset()
        later = Record(2, 2, reads=("x",), reads_seen={"x": None})
        assert check_serializability([record, later]).ok

    def test_report_str(self):
        report = check_serializability([])
        assert "OK" in str(report)
        bad = check_serializability(
            [Record(1, 1, reads=("x",), reads_seen={"x": 5})]
        )
        assert "VIOLATED" in str(bad)


class TestConflictGraph:
    def test_edges_from_conflicts(self):
        history = [
            Record(1, 1, reads=("x",), writes=("x",),
                   reads_seen={"x": None}),
            Record(2, 2, reads=("x",), reads_seen={"x": 1}),
            Record(3, 3, writes=("x",)),
        ]
        edges = conflict_graph(history)
        assert (1, 2) in edges  # wr
        assert (1, 3) in edges  # ww
        assert (2, 3) in edges  # rw

    def test_no_self_edges(self):
        history = [
            Record(1, 1, reads=("x",), writes=("x",),
                   reads_seen={"x": None}),
        ]
        assert conflict_graph(history) == set()

    def test_disjoint_objects_no_edges(self):
        history = [
            Record(1, 1, writes=("x",)),
            Record(2, 2, writes=("y",)),
        ]
        assert conflict_graph(history) == set()
