"""Tests for one-factor-at-a-time sensitivity sweeps."""

import pytest

from repro.analysis import parameter_sweep
from repro.core import RunConfig, SimulationParameters

TINY_RUN = RunConfig(batches=2, batch_time=8.0, warmup_batches=1, seed=19)


def base_params():
    return SimulationParameters(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=15, mpl=10, ext_think_time=0.3,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )


class TestParameterSweep:
    def test_series_in_sweep_order(self):
        sweep = parameter_sweep(
            base_params(), "blocking", field="mpl",
            values=[2, 5, 10], run=TINY_RUN,
        )
        series = sweep.series("throughput")
        assert [value for value, _ in series] == [2, 5, 10]
        assert all(mean > 0 for _, mean in series)

    def test_values_are_validated(self):
        with pytest.raises(ValueError):
            parameter_sweep(
                base_params(), "blocking", field="mpl",
                values=[0], run=TINY_RUN,
            )

    def test_best_maximize_and_minimize(self):
        sweep = parameter_sweep(
            base_params(), "blocking", field="mpl",
            values=[1, 10], run=TINY_RUN,
        )
        best_mpl, best_tps = sweep.best("throughput")
        assert best_mpl == 10  # serial execution cannot win
        worst_mpl, _ = sweep.best("throughput", maximize=False)
        assert worst_mpl == 1

    def test_relative_range(self):
        sweep = parameter_sweep(
            base_params(), "blocking", field="mpl",
            values=[1, 10], run=TINY_RUN,
        )
        assert 0.0 < sweep.relative_range("throughput") < 1.0

    def test_obj_io_sensitivity_direction(self):
        # Slower disks must reduce throughput on a disk-bound system.
        sweep = parameter_sweep(
            base_params(), "blocking", field="obj_io",
            values=[0.005, 0.040], run=TINY_RUN,
        )
        series = dict(sweep.series("throughput"))
        assert series[0.005] > series[0.040]

    def test_describe(self):
        sweep = parameter_sweep(
            base_params(), "blocking", field="mpl",
            values=[2, 5], run=TINY_RUN,
        )
        text = sweep.describe("throughput")
        assert "mpl" in text
        assert "relative range" in text
