"""Tests for operational-analysis bounds and their use as oracles."""

import math

import pytest

from repro.analysis import (
    check_result_against_bounds,
    operational_bounds,
)
from repro.core import RunConfig, SimulationParameters, run_simulation


class TestBoundsComputation:
    def test_table2_demands(self):
        bounds = operational_bounds(SimulationParameters.table2())
        # 8 * 1.25 = 10 accesses: 150 ms CPU, 350 ms disk.
        assert bounds.cpu_demand == pytest.approx(0.150)
        assert bounds.disk_demand == pytest.approx(0.350)
        # 2 disks -> per-disk demand 175 ms; 1 CPU -> 150 ms.
        assert bounds.max_server_demand == pytest.approx(0.175)
        assert bounds.bottleneck_throughput == pytest.approx(1 / 0.175)
        assert bounds.min_response_time == pytest.approx(0.5)
        # 200 terminals, 1 s thinking.
        assert bounds.population_throughput == pytest.approx(200 / 1.5)
        # The disks bind long before the population does.
        assert bounds.throughput_ceiling == pytest.approx(
            bounds.bottleneck_throughput
        )

    def test_infinite_resources_bound_by_population(self):
        params = SimulationParameters.table2(
            num_cpus=None, num_disks=None
        )
        bounds = operational_bounds(params)
        assert bounds.max_server_demand == 0.0
        assert bounds.bottleneck_throughput == math.inf
        assert bounds.throughput_ceiling == pytest.approx(200 / 1.5)

    def test_internal_think_raises_response_floor(self):
        params = SimulationParameters.table2(int_think_time=5.0)
        bounds = operational_bounds(params)
        assert bounds.min_response_time == pytest.approx(5.5)

    def test_describe(self):
        text = operational_bounds(SimulationParameters.table2()).describe()
        assert "X <=" in text
        assert "R0=" in text


class TestBoundsAsOracles:
    RUN = RunConfig(batches=4, batch_time=15.0, warmup_batches=1, seed=6)

    @pytest.mark.parametrize(
        "algorithm", ["blocking", "optimistic", "noop"]
    )
    def test_every_algorithm_respects_bounds(self, algorithm):
        params = SimulationParameters.table2(mpl=50)
        result = run_simulation(params, algorithm, self.RUN)
        bounds = check_result_against_bounds(result)
        assert result.throughput <= bounds.throughput_ceiling * 1.05

    def test_contention_free_baseline_approaches_ceiling(self):
        # noop with plenty of active transactions should saturate the
        # bottleneck: within 15% of the asymptotic ceiling.
        params = SimulationParameters.table2(mpl=100, write_prob=0.0)
        result = run_simulation(params, "noop", self.RUN)
        bounds = operational_bounds(params)
        assert result.throughput > 0.85 * bounds.throughput_ceiling

    def test_violation_detected(self):
        # Feed the checker a doctored result and make sure it fires.
        params = SimulationParameters.table2(mpl=10)
        result = run_simulation(params, "noop", self.RUN)
        result.analyzer.series("throughput").values[:] = [1e9] * 4
        with pytest.raises(AssertionError, match="ceiling"):
            check_result_against_bounds(result)

    def test_response_floor_violation_detected(self):
        params = SimulationParameters.table2(mpl=10)
        result = run_simulation(params, "noop", self.RUN)
        result.totals["response_time_overall_mean"] = 1e-6
        with pytest.raises(AssertionError, match="floor"):
            check_result_against_bounds(result)
