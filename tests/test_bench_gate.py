"""Tests for the CI benchmark regression gate."""

import importlib.util
import json
import os

spec = importlib.util.spec_from_file_location(
    "check_bench_regression",
    os.path.join(
        os.path.dirname(__file__), os.pardir,
        "benchmarks", "check_bench_regression.py",
    ),
)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def bench_json(path, means):
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def test_within_threshold_passes(self):
        failures, _ = gate.compare(
            {gate.GATED_BENCHMARK: 0.105},
            {gate.GATED_BENCHMARK: 0.100},
            threshold=0.10,
        )
        assert failures == []

    def test_gated_regression_fails(self):
        failures, lines = gate.compare(
            {gate.GATED_BENCHMARK: 0.150},
            {gate.GATED_BENCHMARK: 0.100},
            threshold=0.10,
        )
        assert failures == [gate.GATED_BENCHMARK]
        assert any("FAIL" in line for line in lines)

    def test_ungated_regression_only_warns(self):
        failures, _ = gate.compare(
            {gate.GATED_BENCHMARK: 0.100, "test_event_loop": 9.0},
            {gate.GATED_BENCHMARK: 0.100, "test_event_loop": 1.0},
            threshold=0.10,
        )
        assert failures == []

    def test_speedup_never_fails(self):
        failures, _ = gate.compare(
            {gate.GATED_BENCHMARK: 0.050},
            {gate.GATED_BENCHMARK: 0.100},
            threshold=0.10,
        )
        assert failures == []

    def test_one_sided_benchmarks_are_reported_not_failed(self):
        failures, lines = gate.compare(
            {gate.GATED_BENCHMARK: 0.1, "new_bench": 1.0},
            {gate.GATED_BENCHMARK: 0.1, "old_bench": 1.0},
        )
        assert failures == []
        assert any("new benchmark" in line for line in lines)
        assert any("missing from current" in line for line in lines)


class TestMain:
    def test_pass_exit_zero(self, tmp_path, capsys):
        current = bench_json(
            tmp_path / "cur.json", {gate.GATED_BENCHMARK: 0.10}
        )
        baseline = bench_json(
            tmp_path / "base.json", {gate.GATED_BENCHMARK: 0.10}
        )
        assert gate.main([current, "--baseline", baseline]) == 0
        assert "bench-gate: OK" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        current = bench_json(
            tmp_path / "cur.json", {gate.GATED_BENCHMARK: 0.20}
        )
        baseline = bench_json(
            tmp_path / "base.json", {gate.GATED_BENCHMARK: 0.10}
        )
        assert gate.main([current, "--baseline", baseline]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_missing_file_exit_two(self, tmp_path):
        baseline = bench_json(
            tmp_path / "base.json", {gate.GATED_BENCHMARK: 0.10}
        )
        assert gate.main(
            [str(tmp_path / "nope.json"), "--baseline", baseline]
        ) == 2

    def test_missing_gated_benchmark_exit_two(self, tmp_path):
        current = bench_json(tmp_path / "cur.json", {"other": 1.0})
        baseline = bench_json(
            tmp_path / "base.json", {gate.GATED_BENCHMARK: 0.10}
        )
        assert gate.main([current, "--baseline", baseline]) == 2

    def test_custom_threshold(self, tmp_path):
        current = bench_json(
            tmp_path / "cur.json", {gate.GATED_BENCHMARK: 0.115}
        )
        baseline = bench_json(
            tmp_path / "base.json", {gate.GATED_BENCHMARK: 0.10}
        )
        assert gate.main([current, "--baseline", baseline]) == 1
        assert gate.main(
            [current, "--baseline", baseline, "--threshold", "0.20"]
        ) == 0
