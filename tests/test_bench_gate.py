"""Tests for the CI benchmark regression gate."""

import importlib.util
import json
import os

spec = importlib.util.spec_from_file_location(
    "check_bench_regression",
    os.path.join(
        os.path.dirname(__file__), os.pardir,
        "benchmarks", "check_bench_regression.py",
    ),
)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)

#: The engine-lane gated benchmark, used wherever any gate will do.
ENGINE_GATE = "test_full_model_bus_fast_path"


def bench_json(path, means):
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def test_within_threshold_passes(self):
        failures, _ = gate.compare(
            {ENGINE_GATE: 0.105},
            {ENGINE_GATE: 0.100},
            threshold=0.10,
        )
        assert failures == []

    def test_gated_regression_fails(self):
        failures, lines = gate.compare(
            {ENGINE_GATE: 0.150},
            {ENGINE_GATE: 0.100},
            threshold=0.10,
        )
        assert failures == [ENGINE_GATE]
        assert any("FAIL" in line for line in lines)

    def test_every_present_gated_benchmark_is_enforced(self):
        # The sweep benchmarks gate exactly like the engine one; a run
        # can regress on any of them independently.
        failures, _ = gate.compare(
            {
                "test_sweep_batched_lane_r4": 0.200,
                "test_sweep_batched_lane_r12": 0.100,
            },
            {
                "test_sweep_batched_lane_r4": 0.100,
                "test_sweep_batched_lane_r12": 0.100,
            },
            threshold=0.10,
        )
        assert failures == ["test_sweep_batched_lane_r4"]

    def test_ungated_regression_only_warns(self):
        failures, _ = gate.compare(
            {ENGINE_GATE: 0.100, "test_event_loop": 9.0},
            {ENGINE_GATE: 0.100, "test_event_loop": 1.0},
            threshold=0.10,
        )
        assert failures == []

    def test_classic_lane_is_not_gated(self):
        # The classic sweeps are speedup denominators, not gates: a
        # slower classic lane must not fail the build.
        failures, _ = gate.compare(
            {"test_sweep_classic_lane_r4": 9.0},
            {"test_sweep_classic_lane_r4": 1.0},
            threshold=0.10,
        )
        assert failures == []

    def test_speedup_never_fails(self):
        failures, _ = gate.compare(
            {ENGINE_GATE: 0.050},
            {ENGINE_GATE: 0.100},
            threshold=0.10,
        )
        assert failures == []

    def test_one_sided_benchmarks_are_reported_not_failed(self):
        failures, lines = gate.compare(
            {ENGINE_GATE: 0.1, "new_bench": 1.0},
            {ENGINE_GATE: 0.1, "old_bench": 1.0},
        )
        assert failures == []
        assert any("new benchmark" in line for line in lines)
        assert any("missing from current" in line for line in lines)


class TestSpeedupReport:
    def test_reports_ratio_per_grid_shape(self):
        lines = gate.speedup_lines({
            "test_sweep_classic_lane_r4": 4.0,
            "test_sweep_batched_lane_r4": 1.6,
            "test_sweep_classic_lane_r12": 6.0,
            "test_sweep_batched_lane_r12": 1.0,
        })
        assert len(lines) == 2
        assert "2.50x" in lines[0]
        assert "6.00x" in lines[1]

    def test_silent_when_a_side_is_missing(self):
        assert gate.speedup_lines({ENGINE_GATE: 0.1}) == []
        assert gate.speedup_lines(
            {"test_sweep_batched_lane_r4": 1.0}
        ) == []


class TestMain:
    def test_pass_exit_zero(self, tmp_path, capsys):
        current = bench_json(tmp_path / "cur.json", {ENGINE_GATE: 0.10})
        baseline = bench_json(tmp_path / "base.json", {ENGINE_GATE: 0.10})
        assert gate.main([current, "--baseline", baseline]) == 0
        assert "bench-gate: OK" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        current = bench_json(tmp_path / "cur.json", {ENGINE_GATE: 0.20})
        baseline = bench_json(tmp_path / "base.json", {ENGINE_GATE: 0.10})
        assert gate.main([current, "--baseline", baseline]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_sweep_lane_run_gates_and_reports_speedup(
        self, tmp_path, capsys
    ):
        means = {
            "test_sweep_classic_lane_r4": 4.0,
            "test_sweep_batched_lane_r4": 1.5,
        }
        current = bench_json(tmp_path / "cur.json", means)
        baseline = bench_json(tmp_path / "base.json", means)
        assert gate.main([current, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "batched-lane speedup" in out
        assert "2.67x" in out

    def test_missing_file_exit_two(self, tmp_path):
        baseline = bench_json(tmp_path / "base.json", {ENGINE_GATE: 0.10})
        assert gate.main(
            [str(tmp_path / "nope.json"), "--baseline", baseline]
        ) == 2

    def test_missing_gated_benchmark_exit_two(self, tmp_path):
        current = bench_json(tmp_path / "cur.json", {"other": 1.0})
        baseline = bench_json(tmp_path / "base.json", {ENGINE_GATE: 0.10})
        assert gate.main([current, "--baseline", baseline]) == 2

    def test_custom_threshold(self, tmp_path):
        current = bench_json(tmp_path / "cur.json", {ENGINE_GATE: 0.115})
        baseline = bench_json(tmp_path / "base.json", {ENGINE_GATE: 0.10})
        assert gate.main([current, "--baseline", baseline]) == 1
        assert gate.main(
            [current, "--baseline", baseline, "--threshold", "0.20"]
        ) == 0
