"""Tests for the event loop: ordering, run bounds, determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des import EmptySchedule, Environment, NORMAL, URGENT


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=7.5).now == 7.5

    def test_run_until_time_advances_clock(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)


class TestEventOrdering:
    def test_time_order(self):
        env = Environment()
        fired = []
        for delay in (3.0, 1.0, 2.0):
            env.timeout(delay).callbacks.append(
                lambda ev, d=delay: fired.append(d)
            )
        env.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_fifo_within_same_time(self):
        env = Environment()
        fired = []
        for tag in "abc":
            env.timeout(1.0).callbacks.append(
                lambda ev, t=tag: fired.append(t)
            )
        env.run()
        assert fired == ["a", "b", "c"]

    def test_urgent_preempts_normal_at_same_time(self):
        env = Environment()
        fired = []
        normal = env.event()
        urgent = env.event()
        normal.callbacks.append(lambda ev: fired.append("normal"))
        urgent.callbacks.append(lambda ev: fired.append("urgent"))
        normal.succeed(priority=NORMAL)
        urgent.succeed(priority=URGENT)
        env.run()
        assert fired == ["urgent", "normal"]

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=50,
        )
    )
    def test_processing_order_is_nondecreasing(self, delays):
        env = Environment()
        seen = []
        for d in delays:
            env.timeout(d).callbacks.append(
                lambda ev: seen.append(env.now)
            )
        env.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)


class TestRunModes:
    def test_step_on_empty_raises(self):
        with pytest.raises(EmptySchedule):
            Environment().step()

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2.0)
            return "done"

        result = env.run(until=env.process(proc(env)))
        assert result == "done"
        assert env.now == 2.0

    def test_run_until_already_processed_event(self):
        env = Environment()
        ev = env.timeout(1.0, value="v")
        env.run()
        assert env.run(until=ev) == "v"

    def test_run_until_event_never_fires_raises(self):
        env = Environment()
        never = env.event()
        env.timeout(1.0)
        with pytest.raises(RuntimeError, match="until-event"):
            env.run(until=never)

    def test_run_until_time_sets_now_when_queue_drains_early(self):
        # The queue runs dry at t=1 but the caller asked for t=10: the
        # clock must land on the requested deadline, not on the last
        # event, so back-to-back windowed runs tile time seamlessly.
        env = Environment()
        env.timeout(1.0)
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_time_on_empty_queue_advances_clock(self):
        env = Environment()
        env.run(until=7.5)
        assert env.now == 7.5

    def test_run_until_never_firing_event_leaves_clock_at_last_event(self):
        env = Environment()
        never = env.event()
        env.timeout(1.0)
        env.timeout(3.0)
        with pytest.raises(RuntimeError, match="until-event"):
            env.run(until=never)
        assert env.now == 3.0

    def test_run_until_never_firing_event_with_empty_queue(self):
        env = Environment()
        with pytest.raises(RuntimeError, match="until-event"):
            env.run(until=env.event())

    def test_urgent_band_is_fifo_before_the_normal_band(self):
        # Same-time events: every URGENT event fires before any NORMAL
        # event, and each band is FIFO in scheduling order — even when
        # the bands are scheduled interleaved.
        env = Environment()
        fired = []
        for tag, priority in (
            ("n1", NORMAL), ("u1", URGENT),
            ("n2", NORMAL), ("u2", URGENT),
        ):
            event = env.event()
            event.callbacks.append(lambda ev, t=tag: fired.append(t))
            event.succeed(priority=priority)
        env.run()
        assert fired == ["u1", "u2", "n1", "n2"]

    def test_run_until_time_excludes_boundary_events(self):
        env = Environment()
        fired = []
        env.timeout(5.0).callbacks.append(lambda ev: fired.append(1))
        env.run(until=5.0)
        assert fired == []  # events at exactly t are left for the next run
        env.run(until=6.0)
        assert fired == [1]

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(4.0)
        assert env.peek() == 4.0

    def test_unwaited_failure_surfaces_at_run_loop(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("lost failure"))
        with pytest.raises(RuntimeError, match="lost failure"):
            env.run()


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def build_trace():
            from repro.des import StreamFactory

            env = Environment()
            rng = StreamFactory(42).stream("arrivals")
            trace = []

            def proc(env):
                for _ in range(20):
                    yield env.timeout(rng.exponential(1.0))
                    trace.append(round(env.now, 12))

            env.process(proc(env))
            env.run()
            return trace

        assert build_trace() == build_trace()
