"""Edge-case tests for the DES kernel's less-traveled paths."""

import pytest

from repro.des import (
    AnyOf,
    Environment,
    Interrupt,
    Resource,
    StreamFactory,
)


class TestEventEdges:
    def test_appending_callback_after_processing_fails_loudly(self):
        env = Environment()
        event = env.event().succeed()
        env.run()
        with pytest.raises(AttributeError):
            event.callbacks.append(lambda ev: None)

    def test_any_of_failure_before_success(self):
        env = Environment()
        bad = env.event()
        slow = env.timeout(10.0)

        def failer(env):
            yield env.timeout(1.0)
            bad.fail(RuntimeError("first"))

        def waiter(env):
            yield AnyOf(env, [bad, slow])

        env.process(failer(env))
        process = env.process(waiter(env))
        with pytest.raises(RuntimeError, match="first"):
            env.run(until=process)

    def test_condition_value_preserves_fire_order(self):
        env = Environment()
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(2.0, value="slow")

        def waiter(env):
            got = yield env.all_of([slow, fast])
            return list(got.values())

        # Values ordered by firing, not by declaration.
        assert env.run(until=env.process(waiter(env))) == [
            "fast", "slow"
        ]


class TestProcessEdges:
    def test_active_process_visible_during_execution(self):
        env = Environment()
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1.0)
            seen.append(env.active_process)

        process = env.process(proc(env))
        env.run()
        assert seen == [process, process]
        assert env.active_process is None

    def test_target_exposed_while_waiting(self):
        env = Environment()
        gate = env.event()

        def proc(env):
            yield gate

        process = env.process(proc(env))
        env.run(until=0.0)
        env.step()  # run the initializer
        assert process.target is gate
        gate.succeed()
        env.run()
        assert process.target is None

    def test_interrupt_cause_none(self):
        env = Environment()

        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt as interrupt:
                return interrupt.cause

        process = env.process(victim(env))

        def killer(env):
            yield env.timeout(1.0)
            process.interrupt()

        env.process(killer(env))
        assert env.run(until=process) is None

    def test_process_chain_same_instant(self):
        # A chain of already-fired events resumes synchronously without
        # advancing time.
        env = Environment()

        def quick(env):
            for _ in range(100):
                yield env.timeout(0.0)
            return env.now

        assert env.run(until=env.process(quick(env))) == 0.0


class TestResourceEdges:
    def test_release_of_never_granted_request_is_safe(self):
        env = Environment()
        pool = Resource(env, capacity=1)
        first = pool.request()
        queued = pool.request()
        pool.release(queued)   # withdraw from queue
        pool.release(queued)   # and again: idempotent
        pool.release(first)
        assert pool.in_use == 0
        assert pool.queue_length == 0

    def test_interrupted_holder_releases_via_context_manager(self):
        env = Environment()
        pool = Resource(env, capacity=1)
        order = []

        def holder(env):
            with pool.request() as grant:
                yield grant
                order.append("held")
                try:
                    yield env.timeout(100.0)
                except Interrupt:
                    order.append("interrupted")
                    return

        def waiter(env):
            with pool.request() as grant:
                yield grant
                order.append("waiter-in")

        victim = env.process(holder(env))
        env.process(waiter(env))

        def killer(env):
            yield env.timeout(1.0)
            victim.interrupt()

        env.process(killer(env))
        env.run()
        assert order == ["held", "interrupted", "waiter-in"]
        assert pool.in_use == 0


class TestStreamEdges:
    def test_shuffle_is_deterministic(self):
        def shuffled():
            stream = StreamFactory(3).stream("s")
            items = list(range(20))
            stream.shuffle(items)
            return items

        assert shuffled() == shuffled()

    def test_choice(self):
        stream = StreamFactory(4).stream("c")
        assert stream.choice(["only"]) == "only"
