"""Tests for the trace recorder and its engine integration."""

import pytest

from repro.des import TraceRecorder
from repro.des.trace import TraceRecord


class TestTraceRecorder:
    def test_record_and_iterate(self):
        tracer = TraceRecorder()
        tracer.record(1.0, "commit", tx=7)
        tracer.record(2.0, "restart", tx=8, reason="deadlock")
        assert len(tracer) == 2
        kinds = [record.kind for record in tracer]
        assert kinds == ["commit", "restart"]

    def test_field_access(self):
        record = TraceRecord(1.5, "block", {"tx": 3, "obj": 9})
        assert record.tx == 3
        assert record.obj == 9
        with pytest.raises(AttributeError):
            record.nonexistent

    def test_repr_contains_fields(self):
        tracer = TraceRecorder()
        tracer.record(1.0, "commit", tx=7)
        text = repr(next(iter(tracer)))
        assert "commit" in text
        assert "tx=7" in text

    def test_capacity_bounds_memory(self):
        tracer = TraceRecorder(capacity=10)
        for i in range(25):
            tracer.record(float(i), "tick", n=i)
        assert len(tracer) == 10
        assert tracer.dropped == 15
        assert [record.n for record in tracer] == list(range(15, 25))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_kind_filter_at_source(self):
        tracer = TraceRecorder(kinds={"restart"})
        tracer.record(1.0, "commit", tx=1)
        tracer.record(2.0, "restart", tx=2)
        assert len(tracer) == 1
        assert tracer.counts == {"restart": 1}

    def test_query_by_kind_time_and_fields(self):
        tracer = TraceRecorder()
        tracer.record(1.0, "block", tx=1)
        tracer.record(2.0, "block", tx=2)
        tracer.record(3.0, "commit", tx=1)
        assert len(list(tracer.query(kind="block"))) == 2
        assert len(list(tracer.query(since=2.5))) == 1
        assert len(list(tracer.query(until=1.5))) == 1
        assert len(list(tracer.query(tx=1))) == 2

    def test_transaction_timeline(self):
        tracer = TraceRecorder()
        tracer.record(1.0, "submit", tx=5)
        tracer.record(2.0, "commit", tx=5)
        tracer.record(1.5, "submit", tx=6)
        timeline = tracer.transaction_timeline(5)
        assert [record.kind for record in timeline] == ["submit", "commit"]

    def test_render(self):
        tracer = TraceRecorder()
        tracer.record(1.0, "submit", tx=5)
        assert "submit" in tracer.render()


class TestRingBufferEviction:
    """Interplay between the bounded ring and counts/query."""

    @pytest.fixture
    def evicting(self):
        tracer = TraceRecorder(capacity=5)
        for i in range(12):
            kind = "commit" if i % 2 == 0 else "block"
            tracer.record(float(i), kind, tx=i % 3, n=i)
        return tracer

    def test_counts_include_evicted_records(self, evicting):
        # counts tallies everything ever recorded, not just what the
        # ring still holds.
        assert evicting.counts == {"commit": 6, "block": 6}
        assert evicting.dropped == 7
        assert len(evicting) == 5

    def test_query_sees_only_retained_window(self, evicting):
        retained = [record.n for record in evicting]
        assert retained == list(range(7, 12))
        assert [r.n for r in evicting.query(kind="commit")] == [8, 10]

    def test_query_field_filters_after_eviction(self, evicting):
        # tx cycles 0,1,2; of the retained n=7..11 only n=7 and n=10
        # have tx == 1.
        assert [r.n for r in evicting.query(tx=1)] == [7, 10]

    def test_query_time_bounds_are_inclusive(self, evicting):
        assert [r.n for r in evicting.query(since=9.0, until=10.0)] == [9, 10]
        assert list(evicting.query(since=12.5)) == []
        # Everything before the retained window was evicted.
        assert list(evicting.query(until=6.0)) == []

    def test_eviction_preserves_timeline_order(self, evicting):
        times = [record.time for record in evicting]
        assert times == sorted(times)

    def test_capacity_one_keeps_latest(self):
        tracer = TraceRecorder(capacity=1)
        for i in range(4):
            tracer.record(float(i), "tick", n=i)
        assert [r.n for r in tracer] == [3]
        assert tracer.dropped == 3
        assert tracer.counts == {"tick": 4}


class TestEngineIntegration:
    @pytest.fixture
    def traced_model(self):
        from repro.core import SimulationParameters, SystemModel

        params = SimulationParameters(
            db_size=50, min_size=2, max_size=6, write_prob=0.5,
            num_terms=10, mpl=8, ext_think_time=0.2,
            obj_io=0.01, obj_cpu=0.005, num_cpus=None, num_disks=None,
        )
        tracer = TraceRecorder()
        model = SystemModel(params, "blocking", seed=3, tracer=tracer)
        model.run_until(20.0)
        return model, tracer

    def test_lifecycle_kinds_present(self, traced_model):
        model, tracer = traced_model
        assert tracer.counts["submit"] > 0
        assert tracer.counts["admit"] > 0
        assert tracer.counts["commit"] > 0
        assert tracer.counts["block"] > 0

    def test_counts_match_metrics(self, traced_model):
        model, tracer = traced_model
        assert tracer.counts["commit"] == model.metrics.commits.total
        assert tracer.counts["block"] == model.metrics.blocks.total
        assert tracer.counts["restart"] == model.metrics.restarts.total

    def test_timeline_is_causally_ordered(self, traced_model):
        model, tracer = traced_model
        some_commit = next(iter(tracer.query(kind="commit")))
        timeline = tracer.transaction_timeline(some_commit.tx)
        assert timeline[0].kind == "submit"
        assert timeline[-1].kind == "commit"
        times = [record.time for record in timeline]
        assert times == sorted(times)

    def test_no_tracer_no_overhead_path(self):
        from repro.core import SimulationParameters, SystemModel

        params = SimulationParameters(
            db_size=50, min_size=2, max_size=4, write_prob=0.2,
            num_terms=5, mpl=5, ext_think_time=0.2,
            obj_io=0.01, obj_cpu=0.005, num_cpus=None, num_disks=None,
        )
        model = SystemModel(params, "blocking", seed=3)
        model.run_until(5.0)
        assert model.tracer is None
