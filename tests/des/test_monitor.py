"""Tests for environment-bound measurement instruments."""

import pytest

from repro.des import BusyTracker, Counter, Environment, LevelMonitor, Tally


class TestCounter:
    def test_increment_and_delta(self):
        c = Counter("commits")
        c.increment()
        c.increment(4)
        assert c.total == 5
        snap = c.total
        c.increment(2)
        assert c.delta_since(snap) == 2

    def test_delta_across_successive_snapshots(self):
        # The batch-means idiom: snapshot the total at each batch
        # boundary; deltas against successive snapshots partition the
        # cumulative count.
        c = Counter("commits")
        start = c.total
        c.increment(3)
        boundary = c.total
        assert c.delta_since(start) == 3
        c.increment(7)
        assert c.delta_since(boundary) == 7
        assert c.delta_since(start) == 10
        assert c.delta_since(c.total) == 0


class TestTally:
    def test_is_welford_with_name(self):
        t = Tally("response_time")
        t.add(2.0)
        t.add(4.0)
        assert t.name == "response_time"
        assert t.mean == pytest.approx(3.0)

    def test_snapshot_is_independent_copy(self):
        t = Tally("response_time")
        for x in (1.0, 2.0, 3.0):
            t.add(x)
        snap = t.snapshot()
        t.add(100.0)
        # The snapshot must be frozen at the moment it was taken.
        assert snap.count == 3
        assert snap.mean == pytest.approx(2.0)
        assert t.count == 4

    def test_delta_since_recovers_batch_statistics(self):
        t = Tally("response_time")
        warmup = (5.0, 7.0, 9.0)
        batch = (1.0, 2.0, 3.0, 4.0)
        for x in warmup:
            t.add(x)
        snap = t.snapshot()
        for x in batch:
            t.add(x)
        delta = t.delta_since(snap)
        assert delta.count == len(batch)
        assert delta.mean == pytest.approx(2.5)
        # Sample variance of 1..4 is 5/3.
        assert delta.variance == pytest.approx(5.0 / 3.0)

    def test_delta_since_empty_window(self):
        t = Tally("x")
        t.add(1.0)
        snap = t.snapshot()
        delta = t.delta_since(snap)
        assert delta.count == 0
        assert delta.mean == 0.0

    def test_delta_since_rejects_newer_snapshot(self):
        t = Tally("x")
        t.add(1.0)
        snap = t.snapshot()
        snap.add(2.0)  # snapshot now "ahead" of the accumulator
        with pytest.raises(ValueError):
            t.delta_since(snap)


class TestLevelMonitor:
    def test_time_average_follows_clock(self):
        env = Environment()
        level = LevelMonitor(env, "mpl", initial=0.0)

        def proc(env):
            level.set(10.0)
            yield env.timeout(2.0)
            level.set(20.0)
            yield env.timeout(2.0)

        env.process(proc(env))
        env.run()
        # 10 for [0,2), 20 for [2,4) -> average 15 over [0,4]
        assert level.time_average() == pytest.approx(15.0)

    def test_add(self):
        env = Environment()
        level = LevelMonitor(env, "queue")
        level.add(3)
        level.add(-1)
        assert level.value == 2

    def test_window_average(self):
        env = Environment()
        level = LevelMonitor(env, "x", initial=4.0)

        def proc(env):
            yield env.timeout(10.0)

        env.process(proc(env))
        env.run(until=2.0)
        area = level.area()
        env.run(until=6.0)
        assert level.window_average(area, 2.0) == pytest.approx(4.0)

    def test_window_average_isolates_batches(self):
        # Three batches of 2s each with the level changing mid-run:
        # window deltas must recover each batch's own time average,
        # unpolluted by earlier batches.
        env = Environment()
        level = LevelMonitor(env, "q", initial=0.0)

        def proc(env):
            level.set(2.0)
            yield env.timeout(2.0)   # batch 1: 2.0 throughout
            level.set(6.0)
            yield env.timeout(1.0)
            level.set(10.0)
            yield env.timeout(1.0)   # batch 2: 6 for 1s, 10 for 1s
            yield env.timeout(2.0)   # batch 3: 10 throughout

        env.process(proc(env))
        averages = []
        for boundary in (2.0, 4.0, 6.0):
            start = env.now
            area = level.area()
            env.run(until=boundary)
            averages.append(level.window_average(area, start))
        assert averages == [
            pytest.approx(2.0), pytest.approx(8.0), pytest.approx(10.0)
        ]

    def test_window_average_empty_window_is_zero(self):
        env = Environment()
        level = LevelMonitor(env, "q", initial=3.0)
        # Zero-length window: no area has accrued; the average must not
        # divide by zero (it reports 0.0 by convention).
        assert level.window_average(level.area(), env.now) == 0.0


class TestBusyTracker:
    def test_utilization_single_server(self):
        env = Environment()
        disk = BusyTracker(env, "disk", capacity=1)

        def proc(env):
            disk.acquire()
            yield env.timeout(3.0)
            disk.release()
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        # busy 3 of 4 seconds on one server
        assert disk.utilization(0.0, 0.0) == pytest.approx(0.75)

    def test_utilization_multi_server(self):
        env = Environment()
        cpu = BusyTracker(env, "cpu", capacity=2)

        def proc(env):
            cpu.acquire()
            cpu.acquire()
            yield env.timeout(1.0)
            cpu.release()
            yield env.timeout(1.0)
            cpu.release()

        env.process(proc(env))
        env.run()
        # busy-server-seconds = 2*1 + 1*1 = 3 over 2 servers * 2 seconds
        assert cpu.utilization(0.0, 0.0) == pytest.approx(0.75)

    def test_useful_vs_wasted(self):
        env = Environment()
        disk = BusyTracker(env, "disk", capacity=1)

        def proc(env):
            disk.acquire()
            yield env.timeout(4.0)
            disk.release()
            disk.record_outcome(3.0, useful=True)
            disk.record_outcome(1.0, useful=False)

        env.process(proc(env))
        env.run()
        assert disk.utilization(0.0, 0.0) == pytest.approx(1.0)
        assert disk.useful_utilization(0.0, 0.0) == pytest.approx(0.75)
        assert disk.wasted_time == pytest.approx(1.0)

    def test_infinite_capacity_reports_zero_utilization(self):
        env = Environment()
        pool = BusyTracker(env, "cpu", capacity=float("inf"))
        pool.acquire()

        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert pool.utilization(0.0, 0.0) == 0.0

    def test_empty_window(self):
        env = Environment()
        pool = BusyTracker(env, "cpu", capacity=1)
        assert pool.utilization(0.0, 0.0) == 0.0
