"""Tests for seeded random streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des import RandomStream, StreamFactory


class TestRandomStream:
    def test_reproducible(self):
        a = RandomStream(7)
        b = RandomStream(7)
        assert [a.exponential(2.0) for _ in range(10)] == [
            b.exponential(2.0) for _ in range(10)
        ]

    def test_exponential_mean(self):
        rng = RandomStream(1)
        n = 20000
        mean = sum(rng.exponential(3.0) for _ in range(n)) / n
        assert mean == pytest.approx(3.0, rel=0.05)

    def test_exponential_zero_mean(self):
        assert RandomStream(1).exponential(0.0) == 0.0

    def test_exponential_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).exponential(-1.0)

    def test_uniform_int_bounds(self):
        rng = RandomStream(2)
        draws = [rng.uniform_int(4, 12) for _ in range(2000)]
        assert min(draws) == 4
        assert max(draws) == 12

    def test_uniform_int_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).uniform_int(5, 4)

    def test_bernoulli_probability(self):
        rng = RandomStream(3)
        n = 20000
        hits = sum(rng.bernoulli(0.25) for _ in range(n))
        assert hits / n == pytest.approx(0.25, abs=0.02)

    def test_bernoulli_rejects_bad_p(self):
        with pytest.raises(ValueError):
            RandomStream(1).bernoulli(1.5)

    def test_sample_without_replacement_distinct(self):
        rng = RandomStream(4)
        sample = rng.sample_without_replacement(1000, 12)
        assert len(sample) == 12
        assert len(set(sample)) == 12
        assert all(0 <= x < 1000 for x in sample)

    def test_sample_too_many_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).sample_without_replacement(5, 6)

    @given(st.integers(min_value=1, max_value=100))
    def test_sample_full_population(self, n):
        sample = RandomStream(5).sample_without_replacement(n, n)
        assert sorted(sample) == list(range(n))


class TestStreamFactory:
    def test_streams_are_cached(self):
        f = StreamFactory(99)
        assert f.stream("disks") is f.stream("disks")

    def test_different_names_different_sequences(self):
        f = StreamFactory(99)
        a = [f.stream("a").random() for _ in range(5)]
        b = [f.stream("b").random() for _ in range(5)]
        assert a != b

    def test_stable_across_factories(self):
        xs = [StreamFactory(1).stream("terminals").random() for _ in range(1)]
        ys = [StreamFactory(1).stream("terminals").random() for _ in range(1)]
        assert xs == ys

    def test_independent_of_creation_order(self):
        f1 = StreamFactory(5)
        f1.stream("first")
        seq1 = [f1.stream("target").random() for _ in range(5)]
        f2 = StreamFactory(5)
        seq2 = [f2.stream("target").random() for _ in range(5)]
        assert seq1 == seq2

    def test_different_root_seeds_differ(self):
        a = StreamFactory(1).stream("x").random()
        b = StreamFactory(2).stream("x").random()
        assert a != b
