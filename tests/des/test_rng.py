"""Tests for seeded random streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des import RandomStream, StreamFactory


class TestRandomStream:
    def test_reproducible(self):
        a = RandomStream(7)
        b = RandomStream(7)
        assert [a.exponential(2.0) for _ in range(10)] == [
            b.exponential(2.0) for _ in range(10)
        ]

    def test_exponential_mean(self):
        rng = RandomStream(1)
        n = 20000
        mean = sum(rng.exponential(3.0) for _ in range(n)) / n
        assert mean == pytest.approx(3.0, rel=0.05)

    def test_exponential_zero_mean(self):
        assert RandomStream(1).exponential(0.0) == 0.0

    def test_exponential_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).exponential(-1.0)

    def test_uniform_int_bounds(self):
        rng = RandomStream(2)
        draws = [rng.uniform_int(4, 12) for _ in range(2000)]
        assert min(draws) == 4
        assert max(draws) == 12

    def test_uniform_int_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).uniform_int(5, 4)

    def test_bernoulli_probability(self):
        rng = RandomStream(3)
        n = 20000
        hits = sum(rng.bernoulli(0.25) for _ in range(n))
        assert hits / n == pytest.approx(0.25, abs=0.02)

    def test_bernoulli_rejects_bad_p(self):
        with pytest.raises(ValueError):
            RandomStream(1).bernoulli(1.5)

    def test_sample_without_replacement_distinct(self):
        rng = RandomStream(4)
        sample = rng.sample_without_replacement(1000, 12)
        assert len(sample) == 12
        assert len(set(sample)) == 12
        assert all(0 <= x < 1000 for x in sample)

    def test_sample_too_many_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).sample_without_replacement(5, 6)

    @given(st.integers(min_value=1, max_value=100))
    def test_sample_full_population(self, n):
        sample = RandomStream(5).sample_without_replacement(n, n)
        assert sorted(sample) == list(range(n))


class TestStreamFactory:
    def test_streams_are_cached(self):
        f = StreamFactory(99)
        assert f.stream("disks") is f.stream("disks")

    def test_different_names_different_sequences(self):
        f = StreamFactory(99)
        a = [f.stream("a").random() for _ in range(5)]
        b = [f.stream("b").random() for _ in range(5)]
        assert a != b

    def test_stable_across_factories(self):
        xs = [StreamFactory(1).stream("terminals").random() for _ in range(1)]
        ys = [StreamFactory(1).stream("terminals").random() for _ in range(1)]
        assert xs == ys

    def test_independent_of_creation_order(self):
        f1 = StreamFactory(5)
        f1.stream("first")
        seq1 = [f1.stream("target").random() for _ in range(5)]
        f2 = StreamFactory(5)
        seq2 = [f2.stream("target").random() for _ in range(5)]
        assert seq1 == seq2

    def test_different_root_seeds_differ(self):
        a = StreamFactory(1).stream("x").random()
        b = StreamFactory(2).stream("x").random()
        assert a != b


class TestBatchDraws:
    """The ``*_many`` variants are the loop of single draws, verbatim."""

    def test_uniform_int_many_matches_single_draw_loop(self):
        batched = RandomStream(42)
        looped = RandomStream(42)
        assert batched.uniform_int_many(3, 9, 100) == [
            looped.uniform_int(3, 9) for _ in range(100)
        ]
        # Both consumed identical generator state: follow-up draws agree.
        assert batched.uniform_int(0, 10**6) == looped.uniform_int(0, 10**6)

    def test_bernoulli_many_matches_single_draw_loop(self):
        batched = RandomStream(42)
        looped = RandomStream(42)
        assert batched.bernoulli_many(0.3, 100) == [
            looped.bernoulli(0.3) for _ in range(100)
        ]
        assert batched.random() == looped.random()

    def test_zero_draws_consume_no_state(self):
        stream = RandomStream(7)
        assert stream.uniform_int_many(1, 6, 0) == []
        assert stream.bernoulli_many(0.5, 0) == []
        assert stream.uniform_int(1, 6) == RandomStream(7).uniform_int(1, 6)

    def test_single_draw_batch(self):
        assert RandomStream(7).uniform_int_many(1, 6, 1) == [
            RandomStream(7).uniform_int(1, 6)
        ]
        assert RandomStream(7).bernoulli_many(0.5, 1) == [
            RandomStream(7).bernoulli(0.5)
        ]

    def test_degenerate_single_value_range(self):
        assert RandomStream(7).uniform_int_many(4, 4, 5) == [4] * 5

    def test_empty_range_rejected_even_for_zero_draws(self):
        stream = RandomStream(7)
        with pytest.raises(ValueError, match="empty range"):
            stream.uniform_int(5, 4)
        with pytest.raises(ValueError, match="empty range"):
            stream.uniform_int_many(5, 4, 0)
        with pytest.raises(ValueError, match="empty range"):
            stream.uniform_int_many(5, 4, 10)

    def test_bernoulli_probability_validated(self):
        stream = RandomStream(7)
        with pytest.raises(ValueError):
            stream.bernoulli_many(-0.1, 3)
        with pytest.raises(ValueError):
            stream.bernoulli_many(1.1, 3)
