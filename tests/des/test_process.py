"""Tests for generator-based processes: waiting, returning, interrupts."""

import pytest

from repro.des import Environment, Interrupt


class TestProcessBasics:
    def test_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_runs_at_creation_time(self):
        env = Environment()
        log = []

        def proc(env):
            log.append(env.now)
            yield env.timeout(1.0)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [0.0, 1.0]

    def test_return_value_becomes_event_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            return 42

        assert env.run(until=env.process(proc(env))) == 42

    def test_processes_wait_on_each_other(self):
        env = Environment()

        def child(env):
            yield env.timeout(3.0)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return result

        assert env.run(until=env.process(parent(env))) == "child-result"
        assert env.now == 3.0

    def test_wait_on_already_finished_process(self):
        env = Environment()

        def child(env):
            yield env.timeout(1.0)
            return 7

        child_proc = env.process(child(env))

        def parent(env):
            yield env.timeout(5.0)
            value = yield child_proc
            return value

        assert env.run(until=env.process(parent(env))) == 7
        assert env.now == 5.0

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def proc(env):
            yield "not an event"

        p = env.process(proc(env))
        with pytest.raises(TypeError, match="non-event"):
            env.run(until=p)

    def test_exception_in_process_propagates_to_waiter(self):
        env = Environment()

        def child(env):
            yield env.timeout(1.0)
            raise ValueError("child failed")

        def parent(env):
            yield env.process(child(env))

        with pytest.raises(ValueError, match="child failed"):
            env.run(until=env.process(parent(env)))

    def test_unwaited_process_exception_surfaces(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            raise RuntimeError("unobserved")

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="unobserved"):
            env.run()

    def test_is_alive(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_name_defaults_to_function_name(self):
        env = Environment()

        def my_transaction(env):
            yield env.timeout(1.0)

        p = env.process(my_transaction(env))
        assert p.name == "my_transaction"
        env.run()


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        p = env.process(victim(env))

        def killer(env):
            yield env.timeout(2.0)
            p.interrupt(cause="deadlock")

        env.process(killer(env))
        assert env.run(until=p) == ("interrupted", "deadlock", 2.0)

    def test_interrupted_process_can_continue(self):
        env = Environment()

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            return env.now

        p = env.process(victim(env))

        def killer(env):
            yield env.timeout(5.0)
            p.interrupt()

        env.process(killer(env))
        assert env.run(until=p) == 6.0

    def test_uncaught_interrupt_fails_process(self):
        env = Environment()

        def victim(env):
            yield env.timeout(100.0)

        p = env.process(victim(env))

        def killer(env):
            yield env.timeout(1.0)
            p.interrupt("boom")

        env.process(killer(env))
        with pytest.raises(Interrupt):
            env.run(until=p)

    def test_interrupting_finished_process_is_error(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_interrupt_race_with_completion_is_dropped(self):
        # Victim finishes at t=1; interrupt issued at t=1 from another
        # process. Whichever order the queue resolves, nothing blows up.
        env = Environment()

        def victim(env):
            yield env.timeout(1.0)
            return "done"

        p = env.process(victim(env))

        def killer(env):
            yield env.timeout(1.0)
            if p.is_alive:
                p.interrupt()

        env.process(killer(env))
        env.run()
        assert p.triggered
