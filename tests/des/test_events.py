"""Tests for event primitives: triggering, failure, conditions."""

import pytest

from repro.des import AllOf, AnyOf, Environment


class TestEventLifecycle:
    def test_fresh_event_state(self):
        env = Environment()
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed
        with pytest.raises(AttributeError):
            ev.value
        with pytest.raises(AttributeError):
            ev.ok

    def test_succeed_carries_value(self):
        env = Environment()
        ev = env.event().succeed("payload")
        assert ev.triggered
        assert ev.ok
        assert ev.value == "payload"

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event().succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()
        with pytest.raises(RuntimeError):
            ev.fail(ValueError("x"))

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_of_failed_event_raises(self):
        env = Environment()
        ev = env.event()
        ev.fail(ValueError("boom"))
        ev._defused = True
        with pytest.raises(ValueError, match="boom"):
            ev.value

    def test_trigger_copies_outcome(self):
        env = Environment()
        src = env.event().succeed(5)
        dst = env.event().trigger(src)
        assert dst.value == 5

    def test_callbacks_none_after_processing(self):
        env = Environment()
        ev = env.event().succeed()
        env.run()
        assert ev.processed
        assert ev.callbacks is None

    def test_repr_reflects_state(self):
        env = Environment()
        ev = env.event()
        assert "pending" in repr(ev)
        ev.succeed()
        assert "triggered" in repr(ev)
        env.run()
        assert "processed" in repr(ev)


class TestTimeout:
    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_delay_fires_now(self):
        env = Environment()
        ev = env.timeout(0.0, value=1)
        env.run()
        assert ev.processed
        assert env.now == 0.0

    def test_timeout_value(self):
        env = Environment()

        def proc(env):
            got = yield env.timeout(1.0, value="tick")
            return got

        assert env.run(until=env.process(proc(env))) == "tick"


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        env = Environment()
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        cond = AllOf(env, [t1, t2])

        def proc(env):
            results = yield cond
            return sorted(results.values())

        assert env.run(until=env.process(proc(env))) == ["a", "b"]
        assert env.now == 2.0

    def test_any_of_fires_on_first(self):
        env = Environment()
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")

        def proc(env):
            results = yield AnyOf(env, [t1, t2])
            return list(results.values())

        assert env.run(until=env.process(proc(env))) == ["fast"]
        assert env.now == 1.0

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        cond = env.all_of([])
        assert cond.triggered

    def test_condition_failure_propagates(self):
        env = Environment()
        bad = env.event()

        def failer(env):
            yield env.timeout(1.0)
            bad.fail(RuntimeError("inner"))

        def waiter(env):
            yield env.all_of([bad, env.timeout(10.0)])

        env.process(failer(env))
        p = env.process(waiter(env))
        with pytest.raises(RuntimeError, match="inner"):
            env.run(until=p)

    def test_condition_with_already_processed_event(self):
        env = Environment()
        done = env.timeout(0.0, value=1)
        env.run()
        cond = env.all_of([done])
        assert cond.triggered

    def test_cross_environment_events_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(ValueError):
            AllOf(env1, [env1.event(), env2.event()])
