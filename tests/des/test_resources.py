"""Tests for resource pools: capacity, FCFS and priority order, stores."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des import Environment, InfiniteResource, Resource, Store


def hold(env, resource, log, tag, duration, priority=0):
    with resource.request(priority=priority) as req:
        yield req
        log.append((tag, "start", env.now))
        yield env.timeout(duration)
    log.append((tag, "end", env.now))


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_grants_up_to_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        log = []
        for tag in "abc":
            env.process(hold(env, res, log, tag, 10.0))
        env.run(until=1.0)
        started = [t for t, kind, _ in log if kind == "start"]
        assert started == ["a", "b"]
        assert res.in_use == 2
        assert res.queue_length == 1

    def test_fcfs_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []
        for i, tag in enumerate("abcd"):
            env.process(hold(env, res, log, tag, 1.0))
        env.run()
        starts = [(t, at) for t, kind, at in log if kind == "start"]
        assert starts == [("a", 0.0), ("b", 1.0), ("c", 2.0), ("d", 3.0)]

    def test_priority_served_first(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def scenario(env):
            env.process(hold(env, res, log, "running", 5.0))
            yield env.timeout(1.0)
            env.process(hold(env, res, log, "low", 1.0, priority=1))
            yield env.timeout(1.0)
            env.process(hold(env, res, log, "high", 1.0, priority=0))

        env.process(scenario(env))
        env.run()
        starts = [t for t, kind, _ in log if kind == "start"]
        # "high" arrived later but has a better priority class than "low"
        assert starts == ["running", "high", "low"]

    def test_release_via_context_manager(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []
        env.process(hold(env, res, log, "a", 2.0))
        env.run()
        assert res.in_use == 0

    def test_double_release_is_noop(self):
        env = Environment()
        res = Resource(env, capacity=1)
        req = res.request()
        env.run()
        res.release(req)
        res.release(req)
        assert res.in_use == 0

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        first = res.request()
        queued = res.request()
        assert res.queue_length == 1
        queued.cancel()
        assert res.queue_length == 0
        res.release(first)
        assert res.in_use == 0

    def test_no_overtaking_when_queue_nonempty(self):
        # Even if capacity is momentarily free, a new request must not jump
        # ahead of the queue.
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def releaser(env, req):
            yield env.timeout(1.0)
            res.release(req)

        first = res.request()
        env.process(hold(env, res, log, "queued", 1.0))
        env.process(releaser(env, first))
        env.process(hold(env, res, log, "late", 1.0))
        env.run()
        starts = [t for t, kind, _ in log if kind == "start"]
        assert starts == ["queued", "late"]

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=20))
    def test_never_exceeds_capacity(self, capacity, n_procs):
        env = Environment()
        res = Resource(env, capacity=capacity)
        max_seen = []

        def proc(env):
            with res.request() as req:
                yield req
                max_seen.append(res.in_use)
                yield env.timeout(1.0)

        for _ in range(n_procs):
            env.process(proc(env))
        env.run()
        assert max(max_seen) <= capacity
        assert res.in_use == 0


class TestLazyDeletion:
    """Withdrawn queued requests are tombstoned, not eagerly removed.

    Regressions for the lazy-deletion queue: a withdrawn request must
    never be granted (even when it sits at the heap top as capacity
    frees), and tombstones — including a compaction pass — must not
    disturb the (priority, FIFO) grant discipline.
    """

    def test_withdrawn_request_is_never_granted(self):
        env = Environment()
        res = Resource(env, capacity=1)
        holder = res.request()
        withdrawn = res.request()
        waiter = res.request()
        withdrawn.cancel()  # tombstoned at the front of the queue
        res.release(holder)
        env.run()
        assert withdrawn.triggered is False
        assert waiter.triggered is True
        assert res.in_use == 1

    def test_withdrawn_then_released_again_is_noop(self):
        env = Environment()
        res = Resource(env, capacity=1)
        holder = res.request()
        withdrawn = res.request()
        withdrawn.cancel()
        withdrawn.cancel()  # idempotent: still one tombstone
        assert res.queue_length == 0
        res.release(holder)
        env.run()
        assert withdrawn.triggered is False
        assert res.in_use == 0

    def test_priority_order_survives_tombstones(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def scenario(env):
            env.process(hold(env, res, log, "running", 5.0))
            yield env.timeout(1.0)
            doomed = res.request(priority=0)
            env.process(hold(env, res, log, "low", 1.0, priority=1))
            yield env.timeout(1.0)
            env.process(hold(env, res, log, "high", 1.0, priority=0))
            doomed.cancel()

        env.process(scenario(env))
        env.run()
        starts = [t for t, kind, _ in log if kind == "start"]
        assert starts == ["running", "high", "low"]

    def test_fifo_preserved_across_compaction(self):
        # Overfill the queue past the compaction threshold, withdraw
        # enough to trigger a rebuild, and check the survivors are
        # still granted in arrival order.
        env = Environment()
        res = Resource(env, capacity=1)
        holder = res.request()
        requests = [res.request() for _ in range(200)]
        for i, req in enumerate(requests):
            if i % 4 != 0:
                req.cancel()
        survivors = [req for i, req in enumerate(requests) if i % 4 == 0]
        assert res.queue_length == len(survivors)
        assert len(res._queue) < 200  # compaction actually ran
        granted = []

        def driver(env):
            yield env.timeout(1.0)
            res.release(holder)
            for _ in survivors:
                yield env.timeout(1.0)
                grantee = next(
                    req for req in survivors if req in res.users
                )
                granted.append(grantee)
                res.release(grantee)

        env.process(driver(env))
        env.run()
        assert granted == survivors

    def test_queue_length_counts_only_live_requests(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        queued = [res.request() for _ in range(5)]
        queued[1].cancel()
        queued[3].cancel()
        assert res.queue_length == 3


class TestInfiniteResource:
    def test_everything_granted_instantly(self):
        env = Environment()
        res = InfiniteResource(env)
        log = []
        for tag in range(50):
            env.process(hold(env, res, log, tag, 5.0))
        env.run(until=1.0)
        starts = [t for t, kind, _ in log if kind == "start"]
        assert len(starts) == 50
        assert res.in_use == 50
        assert res.queue_length == 0

    def test_release(self):
        env = Environment()
        res = InfiniteResource(env)
        log = []
        env.process(hold(env, res, log, "a", 1.0))
        env.run()
        assert res.in_use == 0


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")

        def getter(env):
            item = yield store.get()
            return item

        assert env.run(until=env.process(getter(env))) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def getter(env):
            item = yield store.get()
            return (item, env.now)

        def putter(env):
            yield env.timeout(3.0)
            store.put("late")

        env.process(putter(env))
        assert env.run(until=env.process(getter(env))) == ("late", 3.0)

    def test_fifo_items_and_getters(self):
        env = Environment()
        store = Store(env)
        results = []

        def getter(env, tag):
            item = yield store.get()
            results.append((tag, item))

        env.process(getter(env, "g1"))
        env.process(getter(env, "g2"))

        def putter(env):
            yield env.timeout(1.0)
            store.put("first")
            store.put("second")

        env.process(putter(env))
        env.run()
        assert results == [("g1", "first"), ("g2", "second")]

    def test_len_and_items(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == [1, 2]
