"""trace playback: parsing, determinism, feedback re-entry, invariants."""

import json

import pytest

from repro.core import (
    RunConfig,
    SimulationParameters,
    SystemModel,
    run_simulation,
)
from repro.obs.events import TX_SUBMIT
from repro.obs.subscribers import Subscriber
from repro.workloads import (
    create_workload_model,
    load_workload_trace,
    save_workload_trace,
)

RUN = RunConfig(batches=3, batch_time=10.0, warmup_batches=0, seed=61)


def trace_params(path, **spec):
    options = {"path": str(path)}
    options.update(spec)
    return SimulationParameters(
        db_size=200, min_size=1, max_size=8, write_prob=0.25,
        num_terms=1, mpl=10, obj_io=0.010, obj_cpu=0.005,
        num_cpus=1, num_disks=2,
        workload_model="trace", workload_spec=options,
    )


def write_trace(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return str(path)


class SubmitLog(Subscriber):
    kinds = (TX_SUBMIT,)

    def __init__(self):
        self.rows = []  # (time, read_set, write_set, reentry_of)

    def on_event(self, time, kind, fields):
        tx = fields["tx"]
        self.rows.append((time, tx.read_set, tx.write_set, tx.reentry_of))


class TestParsing:
    def test_round_trip(self, tmp_path):
        records = [
            (0.5, (1, 2, 3), frozenset({2}), "small"),
            (1.0, (7,), frozenset(), None),
            (None, (4, 5), frozenset({4, 5}), "large"),
        ]
        path = tmp_path / "trace.jsonl"
        save_workload_trace(str(path), records)
        assert load_workload_trace(str(path)) == records

    def test_rejects_empty_reads(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [{"reads": []}])
        with pytest.raises(ValueError, match="empty read set"):
            load_workload_trace(path)

    def test_rejects_duplicate_reads(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [{"reads": [1, 1]}])
        with pytest.raises(ValueError, match="duplicate"):
            load_workload_trace(path)

    def test_rejects_writes_outside_reads(self, tmp_path):
        path = write_trace(
            tmp_path / "t.jsonl", [{"reads": [1], "writes": [2]}]
        )
        with pytest.raises(ValueError, match="subset"):
            load_workload_trace(path)

    def test_rejects_decreasing_arrival_times(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [
            {"reads": [1], "at": 2.0},
            {"reads": [2], "at": 1.0},
        ])
        with pytest.raises(ValueError, match="nondecreasing"):
            load_workload_trace(path)

    def test_rejects_invalid_json_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"reads": [1]}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_workload_trace(str(path))

    def test_rejects_empty_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no records"):
            load_workload_trace(str(path))


class TestValidation:
    def test_path_is_required(self, tmp_path):
        params = SimulationParameters(
            db_size=200, min_size=1, max_size=8,
            workload_model="trace",
        )
        with pytest.raises(ValueError, match="path"):
            create_workload_model(params)

    def test_feedback_prob_below_one(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [{"reads": [1]}])
        with pytest.raises(ValueError, match="feedback_prob"):
            create_workload_model(
                trace_params(path, feedback_prob=1.0)
            )

    def test_missing_file_fails_at_construction(self, tmp_path):
        with pytest.raises(OSError):
            create_workload_model(trace_params(tmp_path / "nope.jsonl"))


class TestPlayback:
    def test_replays_sets_and_times_exactly(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [
            {"reads": [3, 4], "writes": [4], "at": 0.25},
            {"reads": [9], "at": 1.5},
            {"reads": [1, 2, 5], "writes": [1, 5], "at": 1.5},
        ])
        log = SubmitLog()
        model = SystemModel(trace_params(path), "blocking", seed=5,
                            subscribers=(log,))
        model.run_until(10.0)
        assert [(t, r, set(w)) for t, r, w, _ in log.rows] == [
            (0.25, (3, 4), {4}),
            (1.5, (9,), set()),
            (1.5, (1, 2, 5), {1, 5}),
        ]
        # Finite trace, no cycling: playback stops at the end.
        assert model.workload.exhausted

    def test_records_without_times_arrive_on_the_rate_grid(
            self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [
            {"reads": [1]}, {"reads": [2]}, {"reads": [3]},
        ])
        log = SubmitLog()
        model = SystemModel(trace_params(path, rate=4.0), "blocking",
                            seed=5, subscribers=(log,))
        model.run_until(10.0)
        assert [t for t, _, _, _ in log.rows] == [0.25, 0.5, 0.75]

    def test_cycling_replays_the_trace_forever(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [
            {"reads": [1]}, {"reads": [2]},
        ])
        result = run_simulation(
            trace_params(path, rate=5.0, cycle=True), "blocking",
            run=RUN,
        )
        assert result.totals["commits"] > 2
        assert result.totals["open_system"]["trace_records"] == 2

    def test_playback_is_deterministic(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [
            {"reads": [1, 2], "writes": [2]}, {"reads": [3]},
        ])
        params = trace_params(path, rate=5.0, cycle=True,
                              feedback_prob=0.3, feedback_delay=0.5)
        first = run_simulation(params, "optimistic", run=RUN)
        second = run_simulation(params, "optimistic", run=RUN)
        assert first.totals == second.totals


class TestFeedback:
    def test_reentries_happen_and_are_flow_balanced(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [
            {"reads": [i + 1, i + 50]} for i in range(40)
        ])
        params = trace_params(path, rate=10.0, cycle=True,
                              feedback_prob=0.4, feedback_delay=0.2)
        # strict invariants: the checker's flow-balance rule audits
        # every re-entry against completions as the run progresses.
        result = run_simulation(params, "blocking", run=RUN,
                                invariants="strict")
        open_totals = result.totals["open_system"]
        assert open_totals["reentries"] > 0
        assert open_totals["feedback_prob"] == 0.4
        # Re-entries are fresh transactions: ids keep counting up, and
        # each one records its parent.
        assert result.totals["commits"] >= open_totals["reentries"]

    def test_reentry_transactions_carry_their_parent(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [
            {"reads": [1]}, {"reads": [2]},
        ])
        params = trace_params(path, rate=20.0, cycle=True,
                              feedback_prob=0.5, feedback_delay=0.0)
        log = SubmitLog()
        model = SystemModel(params, "blocking", seed=5,
                            subscribers=(log,))
        model.run_until(30.0)
        reentries = [row for row in log.rows if row[3] is not None]
        assert reentries  # p=0.5 over dozens of completions
        firsts = [row for row in log.rows if row[3] is None]
        assert len(firsts) + len(reentries) == len(log.rows)

    def test_zero_feedback_means_no_reentries(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [
            {"reads": [1]}, {"reads": [2]},
        ])
        result = run_simulation(
            trace_params(path, rate=5.0, cycle=True), "blocking",
            run=RUN,
        )
        assert result.totals["open_system"]["reentries"] == 0
