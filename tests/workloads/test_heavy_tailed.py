"""heavy_tailed: presets, validation, size clamping, end-to-end runs."""

import pytest

from repro.core import RunConfig, SimulationParameters, run_simulation
from repro.core.workload import WorkloadGenerator
from repro.des import StreamFactory
from repro.workloads import create_workload_model
from repro.workloads.heavy_tailed import PRESETS

RUN = RunConfig(batches=3, batch_time=10.0, warmup_batches=1, seed=51)


def heavy_params(**overrides):
    base = dict(
        db_size=1000, min_size=4, max_size=12, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=1.0,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
        workload_model="heavy_tailed",
    )
    base.update(overrides)
    return SimulationParameters(**base)


class TestValidation:
    def test_unknown_preset_lists_choices(self):
        with pytest.raises(ValueError, match="oltp_tail"):
            create_workload_model(
                heavy_params(workload_spec={"preset": "bogus"})
            )

    def test_presets_are_complete_parameterizations(self):
        for preset in PRESETS:
            model = create_workload_model(
                heavy_params(workload_spec={"preset": preset})
            )
            assert model.think_dist in ("lognormal", "pareto")
            assert model.size_dist in ("lognormal", "pareto")

    def test_explicit_keys_override_the_preset(self):
        model = create_workload_model(heavy_params(workload_spec={
            "preset": "web_sessions", "size_alpha": 2.5,
        }))
        assert model.size_alpha == 2.5
        assert model.think_cv == PRESETS["web_sessions"]["think_cv"]

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="lognormal"):
            create_workload_model(
                heavy_params(workload_spec={"size_dist": "weibull"})
            )

    def test_pareto_shape_must_have_finite_mean(self):
        with pytest.raises(ValueError, match="> 1"):
            create_workload_model(heavy_params(workload_spec={
                "size_dist": "pareto", "size_alpha": 1.0,
            }))

    def test_size_cap_bounded_by_the_database(self):
        with pytest.raises(ValueError, match="size_cap"):
            create_workload_model(
                heavy_params(workload_spec={"size_cap": 100_000})
            )


class TestSizeDraws:
    def _sizes(self, spec, n=2000, seed=9):
        params = heavy_params(workload_spec=spec)
        model = create_workload_model(params)
        generator = model.build_generator(params, StreamFactory(seed))
        return [
            len(generator.new_transaction(terminal_id=0).read_set)
            for _ in range(n)
        ]

    def test_sizes_stay_within_one_and_the_cap(self):
        sizes = self._sizes({"size_dist": "pareto", "size_alpha": 1.2,
                             "size_cap": 64})
        assert min(sizes) >= 1
        assert max(sizes) <= 64

    def test_lognormal_sizes_center_on_the_classic_mean(self):
        # Mean parameterization: (min_size+max_size)/2 = 8, mild tail.
        sizes = self._sizes({"size_dist": "lognormal", "size_cv": 0.5},
                            n=20_000)
        assert sum(sizes) / len(sizes) == pytest.approx(8.0, rel=0.05)

    def test_draws_differ_from_the_uniform_generator(self):
        params = heavy_params()
        uniform = WorkloadGenerator(
            params.with_changes(workload_model="closed_classic"),
            StreamFactory(9),
        )
        heavy = self._sizes({"size_cv": 2.0}, n=64)
        classic = [
            len(uniform.new_transaction(terminal_id=0).read_set)
            for _ in range(64)
        ]
        assert heavy != classic

    def test_object_draws_reuse_the_base_streams(self):
        # Only the size draw changes; hotspot skew composes unchanged.
        sizes = self._sizes({"size_cv": 2.0})
        params = heavy_params(hot_fraction=0.1, hot_access_prob=0.9,
                              workload_spec={"size_cv": 2.0})
        model = create_workload_model(params)
        generator = model.build_generator(params, StreamFactory(9))
        hot_objects = params.db_size * 0.1
        hot = total = 0
        for _ in range(500):
            tx = generator.new_transaction(terminal_id=0)
            total += len(tx.read_set)
            hot += sum(1 for obj in tx.read_set if obj < hot_objects)
        assert hot / total > 0.5  # ~0.9 requested, far above uniform 0.1
        assert sizes  # the unskewed draw stream was valid too


class TestEndToEnd:
    def test_presets_run_under_every_paper_algorithm(self):
        for algorithm in ("blocking", "immediate_restart", "optimistic"):
            result = run_simulation(
                heavy_params(workload_spec={"preset": "oltp_tail"}),
                algorithm, run=RUN,
            )
            assert result.totals["commits"] > 0

    def test_closed_loop_totals_stay_classic_shaped(self):
        # heavy_tailed is a closed model: no open-system totals block.
        result = run_simulation(heavy_params(), "blocking", run=RUN)
        assert "open_system" not in result.totals
