"""open_poisson: legacy parity, MMPP validation, saturation reporting."""

import pytest

from repro.core import (
    ARRIVAL_OPEN,
    RunConfig,
    SimulationParameters,
    run_simulation,
)
from repro.workloads import create_workload_model

RUN = RunConfig(batches=4, batch_time=15.0, warmup_batches=1, seed=31)


def open_params(**overrides):
    base = dict(
        db_size=500, min_size=4, max_size=8, write_prob=0.25,
        num_terms=1, mpl=20,
        obj_io=0.010, obj_cpu=0.005, num_cpus=2, num_disks=4,
        workload_model="open_poisson",
    )
    base.update(overrides)
    return SimulationParameters(**base)


class TestLegacyParity:
    def test_bit_identical_to_arrival_mode_open(self):
        legacy = run_simulation(
            open_params(workload_model="closed_classic",
                        arrival_mode=ARRIVAL_OPEN, arrival_rate=5.0),
            "blocking", run=RUN,
        )
        explicit = run_simulation(
            open_params(workload_spec={"rate": 5.0}),
            "blocking", run=RUN,
        )
        # Same "open_arrivals" stream, same draws: every counter and
        # statistic coincides exactly.
        assert explicit.throughput == legacy.throughput
        assert explicit.totals == legacy.totals

    def test_rate_defaults_to_params_arrival_rate(self):
        model = create_workload_model(open_params(arrival_rate=7.5))
        assert model.rate == 7.5
        assert model.mean_rate() == 7.5


class TestMmppValidation:
    def test_requires_rates_and_sojourns(self):
        with pytest.raises(ValueError, match="rates"):
            create_workload_model(
                open_params(workload_spec={"process": "mmpp"})
            )

    def test_rates_and_sojourns_must_pair_up(self):
        with pytest.raises(ValueError, match="pair up"):
            create_workload_model(open_params(workload_spec={
                "process": "mmpp", "rates": (1.0, 5.0),
                "sojourns": (2.0,),
            }))

    def test_needs_two_phases_with_positive_dwell(self):
        with pytest.raises(ValueError, match="two phase"):
            create_workload_model(open_params(workload_spec={
                "process": "mmpp", "rates": (1.0,), "sojourns": (2.0,),
            }))
        with pytest.raises(ValueError, match="sojourns"):
            create_workload_model(open_params(workload_spec={
                "process": "mmpp", "rates": (1.0, 2.0),
                "sojourns": (2.0, 0.0),
            }))

    def test_some_phase_must_emit(self):
        with pytest.raises(ValueError, match="at least one"):
            create_workload_model(open_params(workload_spec={
                "process": "mmpp", "rates": (0.0, 0.0),
                "sojourns": (1.0, 1.0),
            }))

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="poisson.*mmpp"):
            create_workload_model(
                open_params(workload_spec={"process": "weibull"})
            )

    def test_mean_rate_is_sojourn_weighted(self):
        model = create_workload_model(open_params(workload_spec={
            "process": "mmpp", "rates": (0.0, 9.0),
            "sojourns": (2.0, 1.0),
        }))
        assert model.mean_rate() == pytest.approx(3.0)


class TestMmppRuns:
    def test_bursty_source_carries_its_mean_rate_when_stable(self):
        # ON/OFF phases averaging 3 tx/s against ~10 tx/s of capacity:
        # throughput tracks the offered mean.
        result = run_simulation(
            open_params(workload_spec={
                "process": "mmpp", "rates": (6.0, 0.0),
                "sojourns": (5.0, 5.0),
            }),
            "blocking",
            RunConfig(batches=6, batch_time=30.0, warmup_batches=1,
                      seed=8),
        )
        assert not result.saturated
        open_totals = result.totals["open_system"]
        assert open_totals["process"] == "mmpp"
        assert open_totals["offered_rate"] == pytest.approx(3.0)
        assert result.throughput == pytest.approx(3.0, rel=0.15)


class TestSaturationReporting:
    def test_underloaded_run_reports_stable(self):
        result = run_simulation(
            open_params(workload_spec={"rate": 5.0}), "blocking",
            run=RUN,
        )
        open_totals = result.totals["open_system"]
        assert result.saturated is False
        assert open_totals["saturated"] is False
        assert open_totals["arrival_rate"] == pytest.approx(5.0, rel=0.2)
        assert open_totals["drain_ratio"] > 0.9
        assert "stable" in result.describe()

    def test_overloaded_run_is_flagged_saturated(self):
        # ~50 tx/s offered against ~10 tx/s of capacity: the backlog
        # grows without bound and the verdict must say so.
        result = run_simulation(
            open_params(workload_spec={"rate": 50.0}), "blocking",
            run=RUN,
        )
        open_totals = result.totals["open_system"]
        assert result.saturated is True
        assert open_totals["saturated"] is True
        assert open_totals["in_system"] > 2 * 20
        assert open_totals["drain_ratio"] < 0.95
        assert "SATURATED" in result.describe()
