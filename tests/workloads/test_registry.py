"""The workload-model registry: names, resolution, plug-in points."""

import pytest

from repro.core import ARRIVAL_OPEN, SimulationParameters
from repro.workloads import (
    WorkloadModel,
    create_workload_model,
    register_workload_model,
    resolve_workload_model,
    workload_model_names,
)
from repro.workloads import registry as registry_module


def params(**overrides):
    base = dict(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )
    base.update(overrides)
    return SimulationParameters(**base)


class TestNames:
    def test_all_four_models_registered(self):
        names = workload_model_names()
        assert names == sorted(names)
        for expected in ("closed_classic", "open_poisson",
                         "heavy_tailed", "trace"):
            assert expected in names


class TestResolution:
    def test_default_is_closed_classic(self):
        assert resolve_workload_model(params()) == "closed_classic"

    def test_legacy_open_mode_resolves_to_open_poisson(self):
        legacy = params(arrival_mode=ARRIVAL_OPEN, arrival_rate=5.0)
        assert resolve_workload_model(legacy) == "open_poisson"

    def test_explicit_model_wins(self):
        explicit = params(workload_model="heavy_tailed")
        assert resolve_workload_model(explicit) == "heavy_tailed"

    def test_open_mode_conflicts_with_other_models(self):
        # arrival_mode="open" is the legacy spelling of open_poisson;
        # combining it with a different model is contradictory.
        with pytest.raises(ValueError, match="legacy"):
            params(arrival_mode=ARRIVAL_OPEN, arrival_rate=5.0,
                   workload_model="heavy_tailed")


class TestCreate:
    def test_creates_the_resolved_model(self):
        model = create_workload_model(params())
        assert model.name == "closed_classic"
        assert not model.open_system

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="choose from"):
            create_workload_model(params(workload_model="bogus"))

    def test_unknown_spec_keys_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown workload_spec"):
            create_workload_model(
                params(workload_spec={"bogus": 1})
            )

    def test_missing_required_option_names_the_key(self):
        with pytest.raises(ValueError, match="workload_spec\\['path'\\]"):
            create_workload_model(params(workload_model="trace"))


class TestRegisterPlugin:
    def test_third_party_model_plugs_in(self):
        @register_workload_model
        class Custom(WorkloadModel):
            name = "custom_test_only"

            def start(self, model):  # pragma: no cover - never run
                pass

        try:
            assert "custom_test_only" in workload_model_names()
            created = create_workload_model(
                params(workload_model="custom_test_only")
            )
            assert isinstance(created, Custom)
        finally:
            del registry_module._MODELS["custom_test_only"]

    def test_nameless_class_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):
            register_workload_model(type("Anon", (WorkloadModel,), {}))
