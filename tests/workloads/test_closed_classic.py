"""closed_classic: the paper's terminal pool, bit-for-bit.

The registry refactor moved ``SystemModel._terminal`` into
``ClosedClassicWorkload`` verbatim; these tests pin the seeding scheme
that makes the move invisible — the ``terminal.<id>`` stream names, the
initial stagger draw, and the resulting terminal draw order — plus
whole-run parity between the explicit and implicit spellings.
"""

from repro.core import RunConfig, SimulationParameters, SystemModel, run_simulation
from repro.des import StreamFactory
from repro.obs.events import TX_SUBMIT
from repro.obs.subscribers import Subscriber

RUN = RunConfig(batches=3, batch_time=10.0, warmup_batches=1, seed=21)


def small_params(**overrides):
    base = dict(
        db_size=200, min_size=4, max_size=8, write_prob=0.25,
        num_terms=10, mpl=5, ext_think_time=0.5,
        obj_io=0.010, obj_cpu=0.005, num_cpus=1, num_disks=2,
    )
    base.update(overrides)
    return SimulationParameters(**base)


class SubmitLog(Subscriber):
    kinds = (TX_SUBMIT,)

    def __init__(self):
        self.submissions = []  # (time, terminal_id, tx_id)

    def on_event(self, time, kind, fields):
        tx = fields["tx"]
        self.submissions.append((time, tx.terminal_id, tx.id))


class TestInitialStagger:
    """The first draw on each ``terminal.<id>`` stream is the initial
    stagger — a think-time sample taken before the submit loop. This
    draw is part of the pinned seeding scheme (DESIGN.md): removing or
    reordering it would shift every terminal's think sequence."""

    def test_first_submissions_land_exactly_on_the_stagger_draws(self):
        seed = 77
        params = small_params()
        # The stagger each terminal must show: the first exponential
        # draw of its name-derived stream, independently re-derived.
        expected = {
            terminal_id: StreamFactory(seed)
            .stream(f"terminal.{terminal_id}")
            .exponential(params.ext_think_time)
            for terminal_id in range(params.num_terms)
        }
        log = SubmitLog()
        model = SystemModel(params, "blocking", seed=seed,
                            subscribers=(log,))
        model.run_until(max(expected.values()) + 1e-9)
        first = {}
        for time, terminal_id, _ in log.submissions:
            first.setdefault(terminal_id, time)
        assert first == expected

    def test_terminals_draw_transactions_in_stagger_order(self):
        # Transaction ids are handed out in generation order, so the
        # k-th smallest stagger must own transaction id k+1.
        seed = 78
        params = small_params()
        staggers = [
            (
                StreamFactory(seed)
                .stream(f"terminal.{terminal_id}")
                .exponential(params.ext_think_time),
                terminal_id,
            )
            for terminal_id in range(params.num_terms)
        ]
        log = SubmitLog()
        model = SystemModel(params, "blocking", seed=seed,
                            subscribers=(log,))
        model.run_until(max(s for s, _ in staggers) + 1e-9)
        first_tx_id = {}
        for _, terminal_id, tx_id in log.submissions:
            first_tx_id.setdefault(terminal_id, tx_id)
        # Fast terminals may submit their *second* transaction before a
        # slow terminal's first, so only the relative order of first
        # submissions is pinned: smaller stagger => smaller first id.
        want_order = [
            terminal_id for _, terminal_id in sorted(staggers)
        ]
        got_order = sorted(first_tx_id, key=first_tx_id.get)
        assert got_order == want_order


class TestSpellingParity:
    def test_explicit_model_matches_the_default_bit_for_bit(self):
        implicit = run_simulation(small_params(), "optimistic", run=RUN)
        explicit = run_simulation(
            small_params(workload_model="closed_classic"),
            "optimistic", run=RUN,
        )
        assert explicit.totals == implicit.totals
        assert explicit.throughput == implicit.throughput

    def test_closed_totals_carry_no_open_system_keys(self):
        result = run_simulation(small_params(), "blocking", run=RUN)
        assert "open_system" not in result.totals
        assert result.saturated is False
