"""Heavy-tailed samplers: moments, degenerate cases, batched parity.

The lognormal and Pareto samplers are parameterized by *mean* (and CV
or shape), so the moment checks below pin the parameter translation —
getting sigma/mu or x_m wrong shifts the mean by factors, far outside
these tolerances.
"""

import math

import pytest

from repro.des import StreamFactory


def stream(name="s", seed=1234):
    return StreamFactory(seed).stream(name)


def mean_cv(values):
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var) / mean


N = 100_000


class TestLognormalMoments:
    def test_mean_and_cv_match_the_parameterization(self):
        values = stream().lognormal_many(2.0, 2.0, N)
        mean, cv = mean_cv(values)
        assert mean == pytest.approx(2.0, rel=0.05)
        # The CV estimator converges slowly under a heavy tail; a
        # loose band still catches a wrong sigma translation (CV 1 or
        # CV 4 would land far outside).
        assert cv == pytest.approx(2.0, rel=0.25)

    def test_mild_tail_is_tight(self):
        values = stream().lognormal_many(10.0, 0.5, N)
        mean, cv = mean_cv(values)
        assert mean == pytest.approx(10.0, rel=0.02)
        assert cv == pytest.approx(0.5, rel=0.05)

    def test_cv_zero_is_deterministic_and_consumes_no_state(self):
        a, b = stream(seed=7), stream(seed=7)
        assert a.lognormal(3.0, 0.0) == 3.0
        # b drew nothing either: the streams stay in lockstep.
        assert a.exponential(1.0) == b.exponential(1.0)

    def test_all_draws_positive(self):
        assert all(v > 0 for v in stream().lognormal_many(1.0, 3.0, 1000))


class TestParetoMoments:
    def test_mean_matches_the_parameterization(self):
        # alpha=2.5 keeps the variance finite, so the sample mean
        # converges at the usual rate.
        values = stream().pareto_many(2.5, 1.0, N)
        mean, cv = mean_cv(values)
        assert mean == pytest.approx(1.0, rel=0.05)
        # Theoretical CV = sqrt(alpha/(alpha-2))/alpha ~= 0.89; only
        # sanity-band it (the 4th moment is infinite, so the sample CV
        # converges slowly and sits below theory at this n).
        assert 0.6 < cv < 1.2

    def test_draws_never_fall_below_the_scale(self):
        # x_m = mean*(alpha-1)/alpha is the distribution's lower bound.
        values = stream().pareto_many(1.5, 3.0, 1000)
        assert min(values) >= 3.0 * (1.5 - 1.0) / 1.5

    def test_shape_at_or_below_one_rejected(self):
        with pytest.raises(ValueError, match="> 1"):
            stream().pareto(1.0, 2.0)
        with pytest.raises(ValueError, match="> 1"):
            stream().pareto_many(0.5, 2.0, 10)


class TestBatchedParity:
    """x_many(n) must equal n single draws, including the state left
    behind — the batched fastlane and the classic lane share streams."""

    def test_lognormal_many_matches_single_draws(self):
        single, batched = stream(seed=42), stream(seed=42)
        want = [single.lognormal(2.0, 1.5) for _ in range(257)]
        got = batched.lognormal_many(2.0, 1.5, 257)
        assert got == want
        assert batched.exponential(1.0) == single.exponential(1.0)

    def test_pareto_many_matches_single_draws(self):
        single, batched = stream(seed=43), stream(seed=43)
        want = [single.pareto(1.5, 2.0) for _ in range(257)]
        got = batched.pareto_many(1.5, 2.0, 257)
        assert got == want
        assert batched.exponential(1.0) == single.exponential(1.0)
