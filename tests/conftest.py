"""Suite-wide configuration: a stable hypothesis profile.

Several property tests drive whole simulations; the default 200 ms
deadline would make them flaky on slow machines, so deadlines are
disabled and example counts kept moderate.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
