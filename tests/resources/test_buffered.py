"""Tests for the buffered resource model (buffer pool in front of disks)."""

import pytest

from repro.core import RunConfig, SimulationParameters, run_simulation
from repro.core.transaction import Transaction
from repro.des import Environment, StreamFactory
from repro.resources import create_resource_model


def build(**overrides):
    params = SimulationParameters.table2(
        resource_model="buffered", **overrides
    )
    env = Environment()
    model = create_resource_model(
        "buffered", env, params, StreamFactory(5)
    )
    return env, model, params


def tx():
    return Transaction(1, 0, read_set=(1,), write_set=())


def drive(env, generator):
    done = env.process(generator)
    env.run(until=done)


class TestLruPolicy:
    def test_first_read_misses_and_fills(self):
        env, model, params = build(buffer_capacity=10)
        t = tx()
        drive(env, model.read_access(t, 7))
        assert model.accounting.misses == 1
        assert model.accounting.hits == 0
        # Full disk + CPU service consumed on the miss.
        assert t.attempt_disk_time == pytest.approx(params.obj_io)
        assert t.attempt_cpu_time == pytest.approx(params.obj_cpu)

    def test_reread_hits_and_skips_disk(self):
        env, model, params = build(buffer_capacity=10)
        first, second = tx(), tx()
        drive(env, model.read_access(first, 7))
        drive(env, model.read_access(second, 7))
        assert model.accounting.hits == 1
        assert second.attempt_disk_time == 0.0
        assert second.attempt_cpu_time == pytest.approx(params.obj_cpu)

    def test_lru_eviction(self):
        env, model, _ = build(buffer_capacity=2)
        t = tx()
        for obj in (1, 2, 3):  # 3 evicts 1 (capacity 2)
            drive(env, model.read_access(t, obj))
        drive(env, model.read_access(t, 2))  # still resident
        assert model.accounting.hits == 1
        drive(env, model.read_access(t, 1))  # evicted: miss again
        assert model.accounting.misses == 4

    def test_writeback_charges_disk_and_fills(self):
        env, model, params = build(buffer_capacity=10)
        writer, reader = tx(), tx()
        drive(env, model.deferred_update(writer, 9))
        assert model.accounting.writebacks == 1
        assert writer.attempt_disk_time == pytest.approx(params.obj_io)
        drive(env, model.read_access(reader, 9))
        assert model.accounting.hits == 1  # written page is resident

    def test_object_blind_calls_never_hit(self):
        env, model, _ = build(buffer_capacity=10)
        t = tx()
        drive(env, model.read_access(t))
        drive(env, model.read_access(t))
        assert model.accounting.hits == 0
        assert model.accounting.misses == 2

    def test_default_capacity_is_a_tenth_of_db(self):
        _, model, params = build()
        assert model.capacity == params.db_size // 10


class TestFixedPolicy:
    def test_requires_hit_ratio(self):
        with pytest.raises(ValueError, match="buffer_hit_ratio"):
            build(buffer_policy="fixed")

    def test_realized_ratio_tracks_configured(self):
        env, model, _ = build(
            buffer_policy="fixed", buffer_hit_ratio=0.7
        )
        t = tx()
        for obj in range(500):
            drive(env, model.read_access(t, obj))
        ratio = model.accounting.hit_ratio
        assert ratio == pytest.approx(0.7, abs=0.08)

    def test_all_hits_consume_no_disk(self):
        env, model, _ = build(
            buffer_policy="fixed", buffer_hit_ratio=1.0
        )
        t = tx()
        for obj in range(20):
            drive(env, model.read_access(t, obj))
        assert t.attempt_disk_time == 0.0
        assert model.accounting.hits == 20


class TestReporting:
    RUN = RunConfig(batches=2, batch_time=8.0, warmup_batches=0, seed=11)
    PARAMS = SimulationParameters(
        db_size=200, min_size=2, max_size=8, num_terms=25, mpl=8,
        ext_think_time=0.5, obj_io=0.02, obj_cpu=0.01,
        num_cpus=1, num_disks=2,
        resource_model="buffered", buffer_capacity=50,
    )

    def test_counts_reach_totals_and_diagnostics(self):
        result = run_simulation(
            self.PARAMS, algorithm="blocking", run=self.RUN
        )
        buffer = result.totals["buffer"]
        assert buffer["hits"] + buffer["misses"] > 0
        assert buffer["policy"] == "lru"
        assert buffer["capacity"] == 50
        assert result.diagnostics["buffer"] == buffer

    def test_buffer_summary_shape(self):
        _, model, _ = build(buffer_capacity=10)
        summary = model.buffer_summary()
        assert set(summary) == {
            "policy", "capacity", "hits", "misses", "hit_ratio",
            "writebacks",
        }
        assert summary["hit_ratio"] is None  # no probes yet

    def test_hit_ratio_reduces_disk_demand(self):
        """The point of the model: hits shed disk load end to end."""
        cached = run_simulation(
            self.PARAMS.with_changes(
                buffer_policy="fixed", buffer_hit_ratio=0.9,
                buffer_capacity=None,
            ),
            algorithm="blocking", run=self.RUN,
        )
        uncached = run_simulation(
            self.PARAMS.with_changes(
                buffer_policy="fixed", buffer_hit_ratio=0.0,
                buffer_capacity=None,
            ),
            algorithm="blocking", run=self.RUN,
        )
        assert (
            cached.analyzer.mean("disk_util")
            < uncached.analyzer.mean("disk_util")
        )
