"""Tests for the skewed-disks resource model (object→disk placement)."""

import pytest

from repro.core import RunConfig, SimulationParameters, run_simulation
from repro.core.transaction import Transaction
from repro.des import Environment, StreamFactory
from repro.resources import create_resource_model


def build(**overrides):
    params = SimulationParameters.table2(
        resource_model="skewed_disks", **overrides
    )
    env = Environment()
    model = create_resource_model(
        "skewed_disks", env, params, StreamFactory(5)
    )
    return env, model, params


def tx():
    return Transaction(1, 0, read_set=(1,), write_set=())


class TestPlacement:
    def test_contiguous_maps_id_runs_to_disks(self):
        _, model, params = build(num_disks=4)  # db_size=1000 -> runs of 250
        assert model.disk_for(0) == 0
        assert model.disk_for(249) == 0
        assert model.disk_for(250) == 1
        assert model.disk_for(999) == 3

    def test_striped_is_round_robin(self):
        _, model, _ = build(num_disks=4, disk_placement="striped")
        assert [model.disk_for(obj) for obj in range(6)] == [
            0, 1, 2, 3, 0, 1,
        ]

    def test_requires_finite_disks(self):
        with pytest.raises(ValueError, match="finite disks"):
            build(num_disks=None)

    def test_placement_is_deterministic(self):
        """Placement never consumes RNG draws: two models with different
        seeds place identically."""
        env = Environment()
        params = SimulationParameters.table2(
            resource_model="skewed_disks", num_disks=4
        )
        a = create_resource_model(
            "skewed_disks", env, params, StreamFactory(1)
        )
        b = create_resource_model(
            "skewed_disks", Environment(), params, StreamFactory(2)
        )
        for obj in range(0, 1000, 97):
            assert a.disk_for(obj) == b.disk_for(obj)

    def test_read_access_queues_on_the_placed_disk(self):
        env, model, params = build(num_disks=2)
        finish = []

        def proc(obj):
            t = tx()
            yield from model.read_access(t, obj)
            finish.append((obj, env.now))

        # Objects 0 and 1 both live on disk 0 (contiguous): serialized.
        env.process(proc(0))
        env.process(proc(1))
        env.run()
        times = dict(finish)
        assert times[1] - times[0] == pytest.approx(params.obj_io)


class TestEndToEnd:
    RUN = RunConfig(batches=2, batch_time=8.0, warmup_batches=0, seed=13)
    BASE = SimulationParameters(
        db_size=200, min_size=2, max_size=8, num_terms=25, mpl=10,
        ext_think_time=0.5, obj_io=0.02, obj_cpu=0.01,
        num_cpus=1, num_disks=4,
        hot_fraction=0.1, hot_access_prob=0.7,
    )

    def test_hotspot_on_contiguous_placement_hurts_throughput(self):
        """Data skew becomes resource skew: the hot region's spindle
        bottlenecks contiguous placement, while striping (round-robin)
        spreads the same accesses over all disks."""
        contiguous = run_simulation(
            self.BASE.with_changes(resource_model="skewed_disks"),
            algorithm="blocking", run=self.RUN,
        )
        striped = run_simulation(
            self.BASE.with_changes(
                resource_model="skewed_disks", disk_placement="striped"
            ),
            algorithm="blocking", run=self.RUN,
        )
        assert (
            contiguous.analyzer.mean("throughput")
            < striped.analyzer.mean("throughput")
        )
