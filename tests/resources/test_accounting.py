"""Mid-service abort accounting across resource models.

The engine's contract with the physical tier: when a transaction is
interrupted mid-service, the partial service time already consumed is
charged to the attempt, the server is released on unwind, and
``charge_attempt(useful=False)`` books exactly that partial time as
wasted in the utilization trackers. These tests pin the contract for
both legs (disk and CPU) of the flattened ``read_access`` hot path and
for the generic composed legs the buffered model uses.
"""

import pytest

from repro.core import SimulationParameters
from repro.core.transaction import Transaction
from repro.des import Environment, StreamFactory
from repro.resources import create_resource_model


def build(name="classic", **overrides):
    params = SimulationParameters.table2(
        num_cpus=1, num_disks=2, resource_model=name, **overrides
    )
    env = Environment()
    model = create_resource_model(name, env, params, StreamFactory(5))
    return env, model, params


def tx():
    return Transaction(1, 0, read_set=(1,), write_set=())


def interrupt_at(env, victim, when):
    def killer(env):
        yield env.timeout(when)
        victim.interrupt("abort")

    env.process(killer(env))
    with pytest.raises(Exception):
        env.run(until=victim)


def assert_all_released(model):
    assert model.cpu.in_use == 0
    for disk in model.disks:
        assert disk.in_use == 0


class TestClassicReadAccess:
    def test_abort_during_disk_leg(self):
        env, model, params = build()
        t = tx()
        cut = 0.4 * params.obj_io
        victim = env.process(model.read_access(t, 1))
        interrupt_at(env, victim, cut)

        assert t.attempt_disk_time == pytest.approx(cut)
        assert t.attempt_cpu_time == 0.0
        assert_all_released(model)

        model.charge_attempt(t, useful=False)
        assert model.disk_tracker.wasted_time == pytest.approx(cut)
        assert model.disk_tracker.useful_time == 0.0
        assert model.cpu_tracker.wasted_time == 0.0

    def test_abort_during_cpu_leg(self):
        env, model, params = build()
        t = tx()
        cut = params.obj_io + 0.5 * params.obj_cpu
        victim = env.process(model.read_access(t, 1))
        interrupt_at(env, victim, cut)

        # Disk leg completed in full; CPU leg was cut halfway.
        assert t.attempt_disk_time == pytest.approx(params.obj_io)
        assert t.attempt_cpu_time == pytest.approx(0.5 * params.obj_cpu)
        assert_all_released(model)

        model.charge_attempt(t, useful=False)
        assert model.disk_tracker.wasted_time == pytest.approx(
            params.obj_io
        )
        assert model.cpu_tracker.wasted_time == pytest.approx(
            0.5 * params.obj_cpu
        )
        assert model.cpu_tracker.useful_time == 0.0


class TestGenericLegs:
    def test_abort_during_disk_service(self):
        env, model, _ = build()
        t = tx()
        victim = env.process(model.disk_service(t, 1.0))
        interrupt_at(env, victim, 0.25)

        assert t.attempt_disk_time == pytest.approx(0.25)
        assert_all_released(model)
        model.charge_attempt(t, useful=False)
        assert model.disk_tracker.wasted_time == pytest.approx(0.25)

    def test_abort_during_cpu_service(self):
        env, model, _ = build()
        t = tx()
        victim = env.process(model.cpu_service(t, 1.0))
        interrupt_at(env, victim, 0.4)

        assert t.attempt_cpu_time == pytest.approx(0.4)
        assert_all_released(model)
        model.charge_attempt(t, useful=False)
        assert model.cpu_tracker.wasted_time == pytest.approx(0.4)

    def test_abort_while_queued_charges_nothing(self):
        env, model, _ = build()
        holder, waiter = tx(), tx()
        env.process(model.cpu_service(holder, 1.0))
        victim = env.process(model.cpu_service(waiter, 1.0))
        interrupt_at(env, victim, 0.5)  # still in queue at 0.5

        assert waiter.attempt_cpu_time == 0.0
        model.charge_attempt(waiter, useful=False)
        assert model.cpu_tracker.wasted_time == 0.0


class TestBufferedMissPath:
    def test_abort_during_miss_disk_leg(self):
        env, model, params = build("buffered", buffer_capacity=10)
        t = tx()
        cut = 0.5 * params.obj_io
        victim = env.process(model.read_access(t, 7))
        interrupt_at(env, victim, cut)

        assert t.attempt_disk_time == pytest.approx(cut)
        assert t.attempt_cpu_time == 0.0
        assert_all_released(model)
        # The transfer never completed: the page must NOT be resident.
        reader = tx()
        done = env.process(model.read_access(reader, 7))
        env.run(until=done)
        assert model.accounting.hits == 0
        assert model.accounting.misses == 2

        model.charge_attempt(t, useful=False)
        assert model.disk_tracker.wasted_time == pytest.approx(cut)
