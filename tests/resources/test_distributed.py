"""Tests for the ``distributed`` resource model (sharded multi-site).

The anchor is golden parity: a one-node topology with zero network
delay is *bit-identical* to the ``classic`` model — same digests the
pre-refactor code produced (see test_golden_parity). On top of that:
sharding/placement edge cases, replica addressing, network accounting,
per-node buffers, and fault-injection targets.
"""

import pytest

from repro.core.params import SimulationParameters
from repro.core.simulation import run_simulation
from repro.core.transaction import Transaction
from repro.des import Environment, StreamFactory
from repro.resources import DistributedResourceModel
from tests.resources.test_golden_parity import (
    FINITE,
    GOLDEN,
    RUN,
    _fingerprint,
)


def build(nodes=4, num_cpus=1, num_disks=2, **overrides):
    params = SimulationParameters.table2(
        resource_model="distributed", nodes=nodes,
        num_cpus=num_cpus, num_disks=num_disks, **overrides
    )
    env = Environment()
    streams = StreamFactory(7)
    return DistributedResourceModel(env, params, streams)


def tx(tx_id=0, read_set=(1,), write_set=()):
    return Transaction(
        tx_id, terminal_id=0, read_set=tuple(read_set),
        write_set=frozenset(write_set),
    )


class TestGoldenParityAtOneNode:
    """nodes=1, network_delay=0 reproduces the classic digests exactly."""

    @pytest.mark.parametrize(
        "algorithm", ["blocking", "immediate_restart", "optimistic"]
    )
    def test_one_node_matches_classic_golden(self, algorithm):
        params = FINITE.with_changes(
            resource_model="distributed", nodes=1
        )
        result = run_simulation(params, algorithm=algorithm, run=RUN)
        assert _fingerprint(result) == GOLDEN[(algorithm, "finite")]
        # ...and the totals carry no network key: zero messages fired.
        assert "network" not in result.totals

    def test_striped_equals_contiguous_at_one_node(self):
        """With one node both placements are the identity map."""
        base = FINITE.with_changes(resource_model="distributed", nodes=1)
        contiguous = run_simulation(base, algorithm="blocking", run=RUN)
        striped = run_simulation(
            base.with_changes(disk_placement="striped"),
            algorithm="blocking", run=RUN,
        )
        assert _fingerprint(contiguous) == _fingerprint(striped)
        assert _fingerprint(striped) == GOLDEN[("blocking", "finite")]

    def test_infinite_resources_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            build(num_cpus=None, num_disks=None)


class TestSharding:
    def test_contiguous_covers_all_nodes_when_not_divisible(self):
        # db_size=1000 over 3 nodes: 1000 % 3 != 0; every node still
        # owns a non-empty contiguous range and the map is monotone.
        model = build(nodes=3)
        seen = [model.node_of(obj) for obj in range(1000)]
        assert set(seen) == {0, 1, 2}
        assert seen == sorted(seen)
        counts = [seen.count(node) for node in range(3)]
        assert sum(counts) == 1000
        assert max(counts) - min(counts) <= 1

    def test_striped_round_robin(self):
        model = build(nodes=4, disk_placement="striped")
        assert [model.node_of(obj) for obj in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_hotspot_object_lands_on_one_node(self):
        # Contiguous placement: the low-id hot region is node 0's
        # shard, so a single-object hotspot hammers exactly one site.
        model = build(nodes=4)
        assert model.node_of(0) == 0
        assert model.node_of(model.params.db_size - 1) == 3

    def test_home_node_is_deterministic(self):
        model = build(nodes=4)
        assert model.home_node(tx(5)) == 1
        assert model.home_node(tx(8)) == 0
        assert model.home_node(None) == 0


class TestReplicas:
    def test_replica_ring_successors(self):
        model = build(nodes=4, replication_factor=2)
        primary = model.node_of(999)
        assert model.replica_nodes(999) == [
            primary, (primary + 1) % 4,
        ]

    def test_read_prefers_local_copy(self):
        model = build(nodes=4, replication_factor=2)
        obj = 0  # primary on node 0, replica on node 1
        assert model.replica_nodes(obj) == [0, 1]
        assert model.read_node(obj, home=0) == 0
        assert model.read_node(obj, home=1) == 1
        # A node holding no copy goes to the nearest one on the ring.
        assert model.read_node(obj, home=3) == 0

    def test_participants_exclude_home_and_sort(self):
        model = build(nodes=4, replication_factor=2)
        db = model.params.db_size
        # tx at home 0 reading its own shard, writing the last shard.
        t = tx(4, read_set=(0, db - 1), write_set=(db - 1,))
        assert model.home_node(t) == 0
        # obj 0 reads locally; obj db-1's write replicas are {3, 0},
        # and its read lands on the home-resident copy — so the only
        # remote participant is the primary of the written object.
        assert model.participant_nodes(t) == [3]
        t_home3 = tx(3, read_set=(0, db - 1), write_set=(db - 1,))
        assert model.home_node(t_home3) == 3
        # write replicas {3, 0}; read of obj 0 from nearest copy (0).
        assert model.participant_nodes(t_home3) == [0]


class TestNetworkAccounting:
    def test_multi_node_run_reports_messages(self):
        params = FINITE.with_changes(
            resource_model="distributed", nodes=4, network_delay=0.002,
        )
        result = run_simulation(params, algorithm="blocking", run=RUN)
        network = result.totals["network"]
        assert network["messages"] > 0
        assert network["network_time"] > 0.0
        assert network["mean_delay"] == pytest.approx(
            network["network_time"] / network["messages"]
        )

    def test_zero_delay_still_counts_messages(self):
        params = FINITE.with_changes(
            resource_model="distributed", nodes=4,
        )
        result = run_simulation(params, algorithm="blocking", run=RUN)
        network = result.totals["network"]
        assert network["messages"] > 0
        assert network["network_time"] == 0.0

    def test_local_leg_is_free(self):
        model = build(nodes=4, network_delay=1.0)
        steps = list(model.network_leg(tx(0), 2, 2))
        assert steps == []
        assert model.messages_sent == 0
        assert model.network_summary() is None


class TestPerNodeBuffers:
    def test_buffer_summary_reports_per_node_pools(self):
        params = FINITE.with_changes(
            resource_model="distributed", nodes=2, buffer_capacity=50,
        )
        result = run_simulation(params, algorithm="blocking", run=RUN)
        buffer = result.totals["buffer"]
        assert buffer["policy"] == "lru"
        assert buffer["per_node_capacity"] == 50
        assert buffer["hits"] + buffer["misses"] > 0

    def test_fixed_policy_rejected(self):
        with pytest.raises(ValueError, match="LRU"):
            build(
                nodes=2, buffer_capacity=10, buffer_policy="fixed",
                buffer_hit_ratio=0.5,
            )


class TestFaultTargetsAndLabels:
    def test_every_spindle_of_every_node_is_a_target(self):
        model = build(nodes=4, num_disks=2)
        targets = model.disk_fault_targets()
        assert len(targets) == 8
        assert [index for index, _ in targets] == list(range(8))

    def test_node_qualified_disk_labels(self):
        model = build(nodes=2, num_disks=2)
        described = model.describe_resources()
        assert described["model"] == "distributed"
        assert described["nodes"] == 2
        assert described["cpus"] == "2x1"
        assert described["disks"] == "2x2"
        assert described["disk_labels"] == [
            "n0.d0", "n0.d1", "n1.d0", "n1.d1",
        ]

    def test_node_crash_scenario_runs(self):
        """Disk faults execute against the node-major spindle list."""
        from repro.faults import DiskFaultSpec, FaultSpec

        params = FINITE.with_changes(
            resource_model="distributed", nodes=2,
            faults=FaultSpec(disk=DiskFaultSpec(mttf=5.0, mttr=1.0)),
        )
        result = run_simulation(params, algorithm="blocking", run=RUN)
        assert result.totals["faults"]["disk_failures"] > 0
        assert result.totals["commits"] > 0
