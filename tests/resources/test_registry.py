"""Tests for the resource-model registry."""

import pytest

from repro.core import SimulationParameters
from repro.des import Environment, InfiniteResource, StreamFactory
from repro.resources import (
    BufferedResourceModel,
    ClassicResourceModel,
    InfiniteResourceModel,
    ResourceModel,
    SkewedDisksResourceModel,
    create_resource_model,
    register_resource_model,
    resource_model_names,
)
from repro.resources import registry as registry_module


def make(name, **overrides):
    params = SimulationParameters.table2(**overrides)
    return create_resource_model(
        name, Environment(), params, StreamFactory(3)
    )


class TestRegistry:
    def test_ships_at_least_four_models(self):
        names = resource_model_names()
        assert len(names) >= 4
        assert {"classic", "infinite", "buffered", "skewed_disks"} <= set(
            names
        )

    def test_names_are_sorted(self):
        assert resource_model_names() == sorted(resource_model_names())

    def test_create_by_name(self):
        assert isinstance(make("classic"), ClassicResourceModel)
        assert isinstance(make("infinite"), InfiniteResourceModel)
        assert isinstance(make("buffered"), BufferedResourceModel)
        assert isinstance(
            make("skewed_disks"), SkewedDisksResourceModel
        )

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="classic"):
            make("no_such_model")

    def test_register_requires_name(self):
        class Nameless(ResourceModel):
            name = None

        with pytest.raises(ValueError, match="name"):
            register_resource_model(Nameless)

    def test_register_and_create_custom_model(self):
        class Custom(ClassicResourceModel):
            name = "custom_test_model"

        register_resource_model(Custom)
        try:
            assert "custom_test_model" in resource_model_names()
            assert isinstance(make("custom_test_model"), Custom)
        finally:
            del registry_module._MODELS["custom_test_model"]


class TestInterface:
    def test_classic_honors_parameter_counts(self):
        model = make("classic", num_cpus=3, num_disks=4)
        assert model.cpu.capacity == 3
        assert len(model.disks) == 4
        assert len(model.disk_fault_targets()) == 4

    def test_infinite_ignores_parameter_counts(self):
        model = make("infinite", num_cpus=3, num_disks=4)
        assert isinstance(model.cpu, InfiniteResource)
        assert isinstance(model.disks[0], InfiniteResource)
        # No crashable disks: the fault injector must refuse, not no-op.
        assert model.disk_fault_targets() == []

    def test_buffer_summary_default_is_none(self):
        assert make("classic").buffer_summary() is None
        assert make("infinite").buffer_summary() is None
        assert make("skewed_disks").buffer_summary() is None
        assert make("buffered").buffer_summary() is not None

    def test_describe_resources_labels(self):
        classic = make("classic", num_cpus=1, num_disks=2)
        assert classic.describe_resources() == {
            "model": "classic", "cpus": 1, "disks": 2,
        }
        infinite = make("infinite")
        assert infinite.describe_resources()["cpus"] == "inf"
        buffered = make("buffered", buffer_capacity=50)
        assert buffered.describe_resources()["buffer"] == "lru:50"
        skewed = make("skewed_disks", disk_placement="striped")
        assert skewed.describe_resources()["placement"] == "striped"

    def test_engine_constructs_via_registry(self):
        from repro.core.engine import SystemModel

        model = SystemModel(
            SimulationParameters.table2(resource_model="buffered")
        )
        assert isinstance(model.physical, BufferedResourceModel)

    def test_physical_model_shim_is_classic(self):
        from repro.resources import PhysicalModel

        assert PhysicalModel is ClassicResourceModel
