#!/usr/bin/env python
"""A mixed OLTP workload: why multiversioning won.

The paper's workload is one class of medium transactions. Real systems
mix tiny lookups, medium updates, and big read-only reports — and under
two-phase locking a single long report's read locks stall every writer
that touches its pages. Multiversion timestamp ordering serves readers
from old versions instead: reads never block and never abort.

This example runs the same three-class mix (90% lookups, 9% orders,
1% long reports) through dynamic 2PL and MVTO and prints the per-class
numbers. Watch the order-transaction latency under blocking versus
MVTO — and the price MVTO pays instead (report restarts are zero too;
its writers carry the conflict load).

Run:  python examples/mixed_oltp_workload.py
"""

from repro import RunConfig, SimulationParameters, run_simulation
from repro.core import TransactionClass

MIX = (
    TransactionClass("lookup", weight=90.0, min_size=1, max_size=2,
                     write_prob=0.0),
    TransactionClass("order", weight=9.0, min_size=4, max_size=10,
                     write_prob=0.4),
    TransactionClass("report", weight=1.0, min_size=50, max_size=80,
                     write_prob=0.0),
)

RUN = RunConfig(batches=5, batch_time=30.0, warmup_batches=1, seed=23)


def main():
    params = SimulationParameters(
        db_size=500,
        num_terms=50,
        mpl=25,
        ext_think_time=0.5,
        obj_io=0.010,
        obj_cpu=0.004,
        num_cpus=2,
        num_disks=4,
        workload_mix=MIX,
    )
    print("Three-class OLTP mix on 2 CPUs / 4 disks, mpl=25")
    print(f"{'':10s}{'class':>10s}{'tps':>8s}{'resp':>9s}"
          f"{'p-restart':>11s}")
    for algorithm in ("blocking", "mvto"):
        result = run_simulation(params, algorithm, RUN)
        per_class = result.totals["per_class"]
        print(f"{algorithm}:")
        for name in ("lookup", "order", "report"):
            stats = per_class[name]
            print(f"{'':10s}{name:>10s}{stats['throughput']:8.2f}"
                  f"{stats['response_mean']:8.2f}s"
                  f"{stats['restart_ratio']:11.2f}")
    print()
    print("Under 2PL the reports' read locks stall the order writers;")
    print("MVTO reads old versions instead — lookups and reports never")
    print("wait, and the writers absorb the (timestamp) conflicts.")


if __name__ == "__main__":
    main()
