#!/usr/bin/env python
"""Sizing a multiprocessor database machine: where restarts become
affordable.

The paper's Experiment 4 moves the system "from finite resources
towards infinite resources" — 1 CPU/2 disks, then 5/10, then 25/50 —
and finds the crossover where the optimistic algorithm's best
throughput overtakes blocking's: when utilizations fall into the ~30%
range, wasted restarts stop mattering.

This example sweeps the machine size for a fixed workload and reports,
for each size, the best throughput and operating point of each
algorithm plus the winner. Use it to answer: "how much hardware until
optimistic concurrency control is the right choice?"

Run:  python examples/multiprocessor_sizing.py
"""

from repro import RunConfig, SimulationParameters, run_simulation

MACHINE_SIZES = [(1, 2), (5, 10), (10, 20), (25, 50)]
ALGORITHMS = ("blocking", "optimistic")
MPLS = (10, 25, 50, 100, 200)
RUN = RunConfig(batches=4, batch_time=20.0, warmup_batches=1, seed=31)


def best_operating_point(params_base, algorithm):
    best = None
    for mpl in MPLS:
        result = run_simulation(
            params_base.with_changes(mpl=mpl), algorithm, RUN
        )
        if best is None or result.throughput > best[1]:
            best = (mpl, result.throughput, result.mean("disk_util"))
    return best


def main():
    print(f"{'machine':>14s}{'blocking best':>24s}"
          f"{'optimistic best':>24s}{'winner':>12s}")
    print("-" * 74)
    for cpus, disks in MACHINE_SIZES:
        params = SimulationParameters.table2(
            num_cpus=cpus, num_disks=disks
        )
        cells = {}
        for algorithm in ALGORITHMS:
            mpl, tps, util = best_operating_point(params, algorithm)
            cells[algorithm] = (mpl, tps, util)
        winner = max(cells, key=lambda a: cells[a][1])
        line = f"{cpus:>3d} CPU/{disks:>3d} dsk"
        for algorithm in ALGORITHMS:
            mpl, tps, util = cells[algorithm]
            line += f"   {tps:6.1f} tps @mpl={mpl:<3d}"
        print(line + f"{winner:>14s}")
    print()
    print("Blocking rules the small machines; once the hardware is big")
    print("enough that the disks idle below ~50%, the optimistic")
    print("algorithm's wasted work stops hurting and it takes the lead —")
    print("the paper's resource-dependent algorithm choice in one table.")


if __name__ == "__main__":
    main()
