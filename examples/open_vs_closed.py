#!/usr/bin/env python
"""Open vs. closed system models — another assumption that matters.

The paper's theme is that modeling assumptions drive conclusions. One
assumption it holds fixed is the *source model*: a closed system (200
terminals that wait for their transaction before thinking up the next
one). Many other studies used open models (Poisson arrivals). The two
behave very differently near saturation: a closed system self-throttles
(arrivals slow down as response times grow), while an open system
builds an unbounded backlog the moment offered load exceeds capacity.

This example runs the same database/CC configuration both ways:
* closed: Table 2's population of 200 terminals;
* open: a sweep of arrival rates through the capacity found above.

Run:  python examples/open_vs_closed.py
"""

from repro import RunConfig, SimulationParameters, run_simulation
from repro.core import ARRIVAL_OPEN, SystemModel

RUN = RunConfig(batches=5, batch_time=20.0, warmup_batches=1, seed=17)


def main():
    closed = SimulationParameters.table2(mpl=25)
    closed_result = run_simulation(closed, "blocking", RUN)
    capacity = closed_result.throughput
    print("Closed model (200 terminals, mpl=25, blocking):")
    print(f"  throughput {capacity:.2f} tps, "
          f"response {closed_result.response_time:.1f}s "
          f"(self-throttled: stable no matter what)")
    print()

    print("Open model (Poisson arrivals), same engine and parameters:")
    print(f"{'offered load':>14s}{'throughput':>12s}{'response':>10s}"
          f"{'backlog':>9s}")
    for fraction in (0.5, 0.8, 0.95, 1.2):
        rate = capacity * fraction
        params = closed.with_changes(
            arrival_mode=ARRIVAL_OPEN, arrival_rate=rate
        )
        model = SystemModel(params, "blocking", seed=17)
        model.run_until(120.0)
        commits = model.metrics.commits.total
        throughput = commits / model.env.now
        response = model.metrics.response_times.mean
        backlog = len(model.ready_queue)
        print(f"{rate:11.2f}tps{throughput:9.2f}tps{response:9.1f}s"
              f"{backlog:9d}")
    print()
    print("Below capacity the open system matches its offered load; at")
    print("120% of capacity the backlog explodes — a failure mode the")
    print("closed model structurally cannot exhibit. Model choice is a")
    print("claim about the workload, exactly the paper's point.")


if __name__ == "__main__":
    main()
