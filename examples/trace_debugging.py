#!/usr/bin/env python
"""Watching individual transactions: lifecycle tracing.

Aggregate curves say *that* blocking thrashes; traces show *how*. This
example attaches a TraceRecorder to a deliberately overheated system
(tiny database, high mpl, dynamic 2PL), finds the transaction that was
restarted the most, and prints its full life story — every submission,
admission, block, deadlock restart and the final commit.

Run:  python examples/trace_debugging.py
"""

from collections import Counter

from repro import SimulationParameters, SystemModel
from repro.des import TraceRecorder


def main():
    params = SimulationParameters(
        db_size=40,
        min_size=2,
        max_size=6,
        write_prob=0.6,
        num_terms=15,
        mpl=12,
        ext_think_time=0.1,
        obj_io=0.010,
        obj_cpu=0.005,
        num_cpus=None,
        num_disks=None,
    )
    tracer = TraceRecorder(capacity=200_000)
    model = SystemModel(params, "blocking", seed=11, tracer=tracer)
    model.run_until(30.0)

    print(f"{model.metrics.commits.total} commits, "
          f"{model.metrics.restarts.total} restarts, "
          f"{model.metrics.blocks.total} blocks in 30 simulated seconds")
    print(f"trace: {len(tracer)} records "
          f"({dict(tracer.counts)})")
    print()

    restarts_by_tx = Counter(
        record.tx for record in tracer.query(kind="restart")
    )
    victim_id, times = restarts_by_tx.most_common(1)[0]
    print(f"most-restarted transaction: #{victim_id} "
          f"({times} deadlock restarts). Its life:")
    for record in tracer.transaction_timeline(victim_id):
        print(f"  {record}")
    print()
    commit = next(iter(tracer.query(kind="commit", tx=victim_id)), None)
    if commit is not None:
        print(f"...it finally committed after {commit.response:.2f}s "
              f"(attempt {commit.attempt}).")


if __name__ == "__main__":
    main()
