#!/usr/bin/env python
"""Regenerate every figure of the paper's evaluation (Figures 3-21).

Runs all ten experiment sweeps — Experiments 1-5 over the paper's
multiprogramming levels and three algorithms — and writes each figure's
tables, ASCII plots and raw series to ``paper_figures/``.

With the default statistics profile this takes some minutes on a
laptop; pass ``--quick`` for a fast smoke pass or ``--full`` for
20-batch paper-grade statistics (slow).

Run:  python examples/reproduce_paper.py [--quick|--full] [--figure N]
"""

import argparse
import os
import sys

from repro.core import RunConfig
from repro.experiments import FigureBuilder, sweep_report
from repro.experiments.runner import DEFAULT_RUN, QUICK_RUN

FULL_RUN = RunConfig(batches=20, batch_time=60.0, warmup_batches=2)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--figure", type=int, default=None,
                        help="one figure only (3..21)")
    parser.add_argument("--out", default="paper_figures")
    args = parser.parse_args(argv)

    if args.full:
        run = FULL_RUN
    elif args.quick:
        run = QUICK_RUN
    else:
        run = DEFAULT_RUN

    os.makedirs(args.out, exist_ok=True)
    builder = FigureBuilder(
        run=run,
        progress=lambda line: print(line, file=sys.stderr, flush=True),
    )
    numbers = [args.figure] if args.figure else list(range(3, 22))
    for number in numbers:
        data = builder.figure(number)
        path = os.path.join(args.out, f"figure{number:02d}.txt")
        with open(path, "w") as f:
            f.write(sweep_report(data.sweep))
            f.write("\n\n")
            f.write(data.describe())
            f.write("\n")
        print(f"figure {number:2d}: {data.title:50s} -> {path}")
    print(f"\nDone. Tables and plots in {args.out}/")


if __name__ == "__main__":
    main()
