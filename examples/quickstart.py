#!/usr/bin/env python
"""Quickstart: simulate the paper's base system with one algorithm.

Builds the Table 2 configuration (1000-page database, 200 terminals,
1 CPU, 2 disks), runs dynamic two-phase locking at a multiprogramming
level of 25 — the paper's best operating point — and prints the
headline statistics with 90% confidence intervals.

Run:  python examples/quickstart.py
"""

from repro import RunConfig, SimulationParameters, run_simulation


def main():
    params = SimulationParameters.table2(mpl=25)
    run = RunConfig(batches=10, batch_time=30.0, warmup_batches=1, seed=7)

    print("Simulating the paper's base system (Table 2) ...")
    print(f"  database: {params.db_size} pages, "
          f"transactions read {params.min_size}-{params.max_size} pages, "
          f"write_prob={params.write_prob}")
    print(f"  resources: {params.num_cpus} CPU, {params.num_disks} disks, "
          f"{params.num_terms} terminals, mpl={params.mpl}")
    print(f"  statistics: {run.batches} batches x {run.batch_time:.0f}s "
          f"(+{run.warmup_batches} warmup)")
    print()

    result = run_simulation(params, algorithm="blocking", run=run)

    throughput = result.interval("throughput")
    response = result.interval("response_time")
    print(f"  throughput      : {throughput}")
    print(f"  response time   : {response}")
    print(f"  blocks/commit   : {result.mean('block_ratio'):.3f}")
    print(f"  restarts/commit : {result.mean('restart_ratio'):.3f}")
    print(f"  disk utilization: {result.mean('disk_util'):.1%} total, "
          f"{result.mean('disk_util_useful'):.1%} useful")
    print(f"  commits         : {result.totals['commits']} "
          f"({result.totals['restarts']} restarts, "
          f"reasons {result.totals['restart_reasons']})")


if __name__ == "__main__":
    main()
