#!/usr/bin/env python
"""Adaptive multiprogramming-level control — the paper's open problem.

The paper closes by observing that the mpl "should be carefully
controlled" and calls for "adaptive algorithms that dynamically adjust
the multiprogramming level in order to maximize system throughput",
suggesting useful resource utilization and running throughput averages
as control signals.

This example runs that controller (repro.analysis.AdaptiveMplController,
a hill climber with a wasted-utilization guard) against a deliberately
mis-configured system: Table 2 resources with the admission limit
thrown wide open at mpl=200, deep in blocking's thrashing region. Watch
it walk the limit back toward the productive operating point.

Run:  python examples/adaptive_mpl.py
"""

from repro import SimulationParameters, SystemModel
from repro.analysis import AdaptiveMplController


def main():
    params = SimulationParameters.table2(mpl=200)  # badly over-admitted
    model = SystemModel(params, "blocking", seed=5)
    controller = AdaptiveMplController(
        model, min_mpl=5, max_mpl=200, initial_step=40,
        waste_guard=0.5, noise_tolerance=0.08,
    )

    print("Starting at mpl=200 (thrashing); controller epochs of 50 s:")
    result = controller.run(epochs=25, epoch_time=50.0, warmup_time=20.0)
    for epoch, mpl, throughput in result.trace:
        bar = "#" * int(throughput * 6)
        print(f"  epoch {epoch:2d}: mpl={mpl:3d}  "
              f"{throughput:5.2f} tps  {bar}")
    print()
    print(f"best observed: {result.best_throughput:.2f} tps at "
          f"mpl={result.best_mpl}; final limit: {result.final_mpl}")
    print("(the paper's Figure 8 peak for blocking sits near mpl=25-50)")


if __name__ == "__main__":
    main()
