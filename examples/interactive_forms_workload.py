#!/usr/bin/env python
"""Interactive form-screen application: when does optimistic CC win?

The paper's Experiment 5 was motivated by "a large body of form-screen
applications where data is put up on the screen, the user may change
some of the fields after staring at the screen for a while, and then
the user types 'enter' causing the updates to be performed."

This example models such an order-entry application on a small server
(1 CPU, 2 disks): each transaction reads its pages, the clerk thinks
over the form for a while (holding read locks, under 2PL!), then the
updates go in. We sweep the clerk's think time and watch the preferred
algorithm flip from blocking to optimistic — the paper's crossover.

Run:  python examples/interactive_forms_workload.py
"""

from repro import RunConfig, SimulationParameters, run_simulation

#: (internal think, external think) pairs; external think scales with
#: internal think to hold the thinking/active ratio steady, as in the
#: paper's Experiment 5.
THINK_TIMES = [(0.0, 1.0), (1.0, 3.0), (5.0, 11.0), (10.0, 21.0)]
ALGORITHMS = ("blocking", "immediate_restart", "optimistic")
RUN = RunConfig(batches=4, batch_time=60.0, warmup_batches=1, seed=29)
MPL = 50


def main():
    print("Order-entry workload on 1 CPU / 2 disks, mpl=50")
    print(f"{'form think time':>16s}" + "".join(
        f"{algorithm:>20s}" for algorithm in ALGORITHMS
    ))
    print("-" * (16 + 20 * len(ALGORITHMS)))
    for internal, external in THINK_TIMES:
        params = SimulationParameters.table2(
            mpl=MPL,
            int_think_time=internal,
            ext_think_time=external,
        )
        row = []
        winner, best = None, -1.0
        for algorithm in ALGORITHMS:
            result = run_simulation(params, algorithm, RUN)
            row.append(f"{result.throughput:16.2f} tps")
            if result.throughput > best:
                winner, best = algorithm, result.throughput
        print(f"{internal:14.0f} s" + "".join(row) + f"   <- {winner}")
    print()
    print("As clerks stare longer at their forms, locks are held longer")
    print("and the machine idles: the system drifts into the paper's")
    print("infinite-resource regime, where restarts are cheap and the")
    print("optimistic algorithm overtakes two-phase locking.")


if __name__ == "__main__":
    main()
