#!/usr/bin/env python
"""Shoot-out: every registered concurrency-control algorithm on one workload.

Runs the paper's three strategies plus every extension (basic and
multiversion timestamp ordering, wound-wait, wait-die, static locking,
and the contention-free no-op baseline) on the Table 2 finite-resource system
at low and high multiprogramming levels, and prints a comparison
matrix. The no-op row is the data-contention-free ceiling: the gap
between it and each algorithm is the price of that algorithm's
concurrency control.

Run:  python examples/algorithm_shootout.py
"""

from repro import RunConfig, SimulationParameters, run_simulation
from repro.cc import algorithm_names

MPLS = (10, 50, 200)
RUN = RunConfig(batches=5, batch_time=20.0, warmup_batches=1, seed=13)


def main():
    print(f"{'algorithm':20s}" + "".join(
        f"   mpl={mpl:<4d} " for mpl in MPLS
    ) + "  (throughput tps / restarts per commit)")
    print("-" * (20 + 12 * len(MPLS) + 45))
    for algorithm in algorithm_names():
        cells = []
        for mpl in MPLS:
            params = SimulationParameters.table2(mpl=mpl)
            result = run_simulation(params, algorithm, RUN)
            cells.append(
                f"{result.throughput:5.2f}/{result.mean('restart_ratio'):4.2f}"
            )
        print(f"{algorithm:20s}   " + "   ".join(cells))
    print()
    print("Reading the matrix: blocking holds its throughput as mpl")
    print("rises; the restart strategies peak early and decay; noop is")
    print("the no-contention ceiling (it is NOT a correct algorithm).")


if __name__ == "__main__":
    main()
