#!/usr/bin/env python
"""Analytical model vs. simulator: measuring the cost of contention.

The paper's literature split simulation studies from analytical ones.
This library contains both: the discrete-event simulator and an exact
Mean-Value Analysis solver for the same closed network. For the
contention-free baseline the two must agree — two independent
implementations cross-validating each other. For a *real* concurrency
control algorithm, the gap between the MVA prediction and the measured
throughput is precisely the price of data contention (blocking, waits,
wasted restarts) at that operating point.

Run:  python examples/analytic_vs_simulation.py
"""

from repro import RunConfig, SimulationParameters, run_simulation
from repro.analytic import mva_prediction

RUN = RunConfig(batches=5, batch_time=20.0, warmup_batches=1, seed=21)
POPULATIONS = (10, 25, 50, 100, 200)


def main():
    print("Table 2 system (1 CPU / 2 disks). MVA prediction vs simulation")
    print(f"{'N users':>8s}{'MVA':>9s}{'noop sim':>10s}"
          f"{'blocking':>10s}{'contention cost':>17s}")
    print("-" * 54)
    for population in POPULATIONS:
        params = SimulationParameters.table2(
            num_terms=population, mpl=population
        )
        predicted = mva_prediction(params).throughput
        noop = run_simulation(
            params, "noop", RUN
        ).throughput
        blocking = run_simulation(params, "blocking", RUN).throughput
        cost = (1.0 - blocking / predicted) * 100.0
        print(f"{population:8d}{predicted:8.2f}t{noop:9.2f}t"
              f"{blocking:9.2f}t{cost:15.1f}%")
    print()
    prediction = mva_prediction(SimulationParameters.table2(mpl=200))
    print(f"MVA says the bottleneck is '{prediction.bottleneck()}' — "
          "the same disks the simulator saturates in Figure 9.")
    print("noop tracks the analytical curve (the two models validate")
    print("each other); blocking's shortfall is pure data contention,")
    print("growing with the user population exactly as the paper says.")


if __name__ == "__main__":
    main()
