#!/usr/bin/env python
"""Plugging a custom concurrency-control algorithm into the framework.

The paper's simulator "is intended to support any concurrency control
algorithm"; this library keeps that property through the
ConcurrencyControl interface. This example implements a hybrid the
paper does not study — **reader-patient / writer-impatient locking**:

* read requests behave like the Blocking algorithm (conflicts wait);
* write requests (lock upgrades) never wait: a conflicted writer is
  restarted after an adaptive delay, like Immediate-Restart.

Because only readers ever wait, and the transactions they wait for
(exclusive holders) never wait themselves, waits-for chains have depth
one — the hybrid is deadlock-free *by construction* and needs no
waits-for graph or detector.

The algorithm is registered under a new name, run through the standard
harness next to the built-ins, and its committed histories are proven
serializable with the framework's checker.

Run:  python examples/custom_algorithm.py
"""

from repro import RunConfig, SimulationParameters, run_simulation
from repro.analysis import check_serializability
from repro.cc import (
    DELAY_ADAPTIVE,
    INSTALL_AT_FINALIZE,
    ConcurrencyControl,
    LockManager,
    LockMode,
    REASON_LOCK_CONFLICT,
    RestartTransaction,
    register_algorithm,
)
from repro.core import SystemModel


@register_algorithm
class PatientReaderCC(ConcurrencyControl):
    """2PL for reads, no-wait restarts for writes; deadlock-free."""

    name = "patient_reader"
    default_restart_delay = DELAY_ADAPTIVE
    install_at = INSTALL_AT_FINALIZE

    def __init__(self):
        super().__init__()
        self.locks = None

    def attach(self, env, hooks=None):
        super().attach(env, hooks)
        self.locks = LockManager(env)
        return self

    def read_request(self, tx, obj):
        result = self.locks.acquire(tx, obj, LockMode.SHARED, wait=True)
        if result.granted:
            return None
        self.hooks.count_block(tx)
        tx.lock_wait_event = result.event
        return result.event

    def write_request(self, tx, obj):
        result = self.locks.acquire(
            tx, obj, LockMode.EXCLUSIVE, wait=False
        )
        if not result.granted:
            raise RestartTransaction(
                REASON_LOCK_CONFLICT, f"impatient writer lost {obj}"
            )
        return None

    def finalize_commit(self, tx):
        tx.lock_wait_event = None
        self.locks.release_all(tx)

    def abort(self, tx):
        tx.lock_wait_event = None
        self.locks.release_all(tx)


def main():
    params = SimulationParameters.table2(mpl=50)
    run = RunConfig(batches=5, batch_time=20.0, warmup_batches=1, seed=3)

    print("Custom hybrid vs the paper's three (Table 2, mpl=50):")
    for algorithm in ("blocking", "immediate_restart", "optimistic",
                      "patient_reader"):
        result = run_simulation(params, algorithm, run)
        print("  " + result.describe())

    # The framework's verification tools work on custom algorithms too:
    # prove a high-contention history is serializable.
    hot = SimulationParameters(
        db_size=50, min_size=2, max_size=6, write_prob=0.5,
        num_terms=15, mpl=12, ext_think_time=0.1,
        obj_io=0.01, obj_cpu=0.005, num_cpus=None, num_disks=None,
    )
    model = SystemModel(hot, "patient_reader", seed=9,
                        record_history=True)
    model.run_until(60.0)
    report = check_serializability(
        model.committed_history, model.store.final_state()
    )
    print()
    print(f"serializability check on {report.transactions_checked} "
          f"committed transactions: {report}")
    assert report.ok


if __name__ == "__main__":
    main()
