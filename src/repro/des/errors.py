"""Exception types for the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for kernel-level errors."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Thrown into the run loop to end :meth:`Environment.run` early."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` is the arbitrary object passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        return self.args[0]
