"""Event primitives for the DES kernel.

An :class:`Event` moves through three states:

* *pending* — created, not yet scheduled to fire;
* *triggered* — given a value (or an exception) and placed on the event
  queue;
* *processed* — popped from the queue and its callbacks run.

Processes (see :mod:`repro.des.process`) communicate exclusively by waiting
on events: ``yield some_event`` suspends the process until the event is
processed, at which point the event's value is sent back into the generator
(or its exception thrown into it).
"""

PENDING = object()

# Scheduling priority bands. Lower sorts earlier among events at the same
# simulated time. URGENT is used for kernel bookkeeping (process init,
# interrupts) so that they preempt ordinary same-time events.
URGENT = 0
NORMAL = 1


class Event:
    """A happening at a point in simulated time, carrying a value.

    Callbacks are callables of one argument (the event); they run when the
    event is processed. After processing, ``callbacks`` is None — appending
    to a processed event is an error, which surfaces use-after-fire bugs.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False

    @property
    def triggered(self):
        """True once the event has a value and is (or was) queued to fire."""
        return self._value is not PENDING

    @property
    def processed(self):
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded; only meaningful once triggered."""
        if not self.triggered:
            raise AttributeError("event has not yet been triggered")
        return self._ok

    @property
    def value(self):
        """The event's value (raises the exception for failed events)."""
        if self._value is PENDING:
            raise AttributeError("event has not yet been triggered")
        if not self._ok:
            raise self._value
        return self._value

    def succeed(self, value=None, priority=NORMAL):
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority)
        return self

    def fail(self, exception, priority=NORMAL):
        """Trigger the event with an exception.

        The exception propagates into every waiting process. If no process
        is waiting when the event is processed, the failure is re-raised at
        the run loop (unless ``defused``), so failures cannot pass silently.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority)
        return self

    def trigger(self, event):
        """Trigger with the same outcome as another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)
        return self

    def __repr__(self):
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the single most-created event type; initialize
        # every field directly instead of paying for Event.__init__
        # assigning _ok/_value only to overwrite them here.
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, NORMAL, delay)

    def __repr__(self):
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Condition(Event):
    """Base for composite events over a set of sub-events.

    Fires when :meth:`_satisfied` says enough sub-events have fired. A
    failing sub-event fails the condition immediately.
    """

    __slots__ = ("events", "_fired")

    def __init__(self, env, events):
        super().__init__(env)
        self.events = tuple(events)
        self._fired = []
        for event in self.events:
            if event.env is not env:
                raise ValueError("all events must share one environment")
        if not self.events:
            self.succeed(self._collect())
            return
        if len(self.events) == 1:
            # Single-event wait: AllOf and AnyOf are both satisfied by
            # that one event firing, so skip the _satisfied() dispatch
            # entirely. The condition's value keeps the same shape.
            event = self.events[0]
            if event.processed:
                self._on_fire_single(event)
            else:
                event.callbacks.append(self._on_fire_single)
            return
        for event in self.events:
            if event.processed:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire_single(self, event):
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        self.succeed({event: event._value})

    def _on_fire(self, event):
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self):
        raise NotImplementedError

    def _collect(self):
        """Value of the condition: fired sub-events and their values."""
        return {event: event._value for event in self._fired}


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def _satisfied(self):
        return len(self._fired) == len(self.events)


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def _satisfied(self):
        return len(self._fired) >= 1
