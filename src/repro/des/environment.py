"""The simulation environment: clock, event queue, and run loop."""

from heapq import heappop, heappush
from itertools import count

from repro.des.errors import EmptySchedule, StopSimulation
from repro.des.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.des.process import Process

_INF = float("inf")


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float starting at ``initial_time``; it advances only when the
    run loop pops an event scheduled later than ``now``. Events at the same
    time are processed in (priority, insertion order), which makes runs
    deterministic for a fixed seed.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process")

    def __init__(self, initial_time=0.0):
        self._now = initial_time
        self._queue = []
        self._eid = count().__next__
        self._active_process = None

    @property
    def now(self):
        """Current simulated time."""
        return self._now

    @property
    def active_process(self):
        """The process currently executing, if any (for interrupts/debug)."""
        return self._active_process

    # -- event construction helpers ------------------------------------

    def event(self):
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay, value=None):
        """An event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def all_of(self, events):
        return AllOf(self, events)

    def any_of(self, events):
        return AnyOf(self, events)

    # -- scheduling and the run loop ------------------------------------

    def schedule(self, event, priority=NORMAL, delay=0.0):
        """Queue ``event`` to be processed after ``delay`` time units."""
        heappush(
            self._queue, (self._now + delay, priority, self._eid(), event)
        )

    def peek(self):
        """Time of the next scheduled event (inf if none)."""
        if not self._queue:
            return _INF
        return self._queue[0][0]

    def step(self):
        """Process exactly one event."""
        try:
            when, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events") from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody waited on: surface the error rather
            # than losing it.
            raise event._value

    def run(self, until=None):
        """Run until ``until`` (a time or an Event) or until no events remain.

        * ``until is None`` — run the queue dry.
        * ``until`` is a number — run events strictly before that time,
          then set ``now`` to it.
        * ``until`` is an :class:`Event` — run until that event is
          processed and return its value.
        """
        stop_event = None
        if until is None:
            deadline = _INF
        elif isinstance(until, Event):
            stop_event = until
            deadline = _INF
            if stop_event.processed:
                return stop_event.value

            def _stop(event):
                raise StopSimulation(event)

            stop_event.callbacks.append(_stop)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"until ({deadline}) must not be before now ({self._now})"
                )
        # The inner loop is :meth:`step` inlined with everything bound to
        # locals. This is the hottest loop of every simulation, so it pays
        # not to re-resolve attribute and global lookups per event.
        queue = self._queue
        pop = heappop
        try:
            while queue:
                when = queue[0][0]
                if when >= deadline:
                    break
                event = pop(queue)[3]
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            event = stop.value
            event._defused = True
            return event.value
        if stop_event is not None:
            raise RuntimeError(
                "run() finished without the until-event being processed"
            )
        if deadline != _INF:
            self._now = deadline
        return None
