"""Event tracing for simulations.

A :class:`TraceRecorder` collects timestamped, structured records of
whatever the model chooses to emit (the engine emits transaction
lifecycle events: submit, admit, block, restart, commit). Traces are
bounded (a ring buffer) so long runs cannot exhaust memory, filterable
by kind, and renderable as a human-readable log — the tool you want
when a figure looks wrong and you need to watch one transaction's life.

Usage::

    tracer = TraceRecorder(capacity=10_000)
    model = SystemModel(params, "blocking", seed=1, tracer=tracer)
    model.run_until(5.0)
    for record in tracer.query(kind="restart"):
        print(record)
"""

from collections import Counter, deque


class TraceRecord:
    """One timestamped trace entry."""

    __slots__ = ("time", "kind", "fields")

    def __init__(self, time, kind, fields):
        self.time = time
        self.kind = kind
        self.fields = fields

    def __getattr__(self, name):
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None

    def __repr__(self):
        rendered = " ".join(
            f"{key}={value!r}" for key, value in self.fields.items()
        )
        return f"[{self.time:12.6f}] {self.kind:10s} {rendered}"


class TraceRecorder:
    """Bounded, queryable collector of :class:`TraceRecord`s."""

    def __init__(self, capacity=100_000, kinds=None):
        """``kinds``, if given, restricts recording to those kinds
        (cheap filtering at the source)."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.kinds = frozenset(kinds) if kinds is not None else None
        self._records = deque(maxlen=capacity)
        self.dropped = 0
        self.counts = Counter()

    def record(self, time, kind, **fields):
        """Append a record (no-op if the kind is filtered out)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(TraceRecord(time, kind, fields))
        self.counts[kind] += 1

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def query(self, kind=None, since=None, until=None, **field_filters):
        """Records matching the given kind/time-window/field values."""
        for record in self._records:
            if kind is not None and record.kind != kind:
                continue
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            if any(
                record.fields.get(key) != value
                for key, value in field_filters.items()
            ):
                continue
            yield record

    def transaction_timeline(self, tx_id):
        """All records mentioning one transaction, in order."""
        return list(self.query(tx=tx_id))

    def render(self, records=None):
        """Multi-line log text of ``records`` (default: everything)."""
        return "\n".join(
            repr(record) for record in (records or self._records)
        )
