"""A small, fast, generator-based discrete-event simulation kernel.

Written from scratch for this reproduction (no SimPy dependency). The
programming model follows the classic process-interaction style:

>>> from repro.des import Environment
>>> env = Environment()
>>> log = []
>>> def clock(env, name, period):
...     while env.now < 2:
...         log.append((name, env.now))
...         yield env.timeout(period)
>>> _ = env.process(clock(env, "fast", 0.5))
>>> _ = env.process(clock(env, "slow", 1.0))
>>> env.run(until=2)
>>> log[:3]
[('fast', 0.0), ('slow', 0.0), ('fast', 0.5)]
"""

from repro.des.environment import Environment
from repro.des.errors import EmptySchedule, Interrupt, SimulationError, StopSimulation
from repro.des.events import NORMAL, URGENT, AllOf, AnyOf, Event, Timeout
from repro.des.monitor import BusyTracker, Counter, LevelMonitor, Tally
from repro.des.process import Process
from repro.des.resources import InfiniteResource, Request, Resource, Store
from repro.des.rng import RandomStream, StreamFactory
from repro.des.trace import TraceRecord, TraceRecorder

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "InfiniteResource",
    "Request",
    "Store",
    "RandomStream",
    "StreamFactory",
    "TraceRecorder",
    "TraceRecord",
    "Counter",
    "Tally",
    "LevelMonitor",
    "BusyTracker",
    "Interrupt",
    "SimulationError",
    "EmptySchedule",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]
