"""Seeded random-number streams for simulation components.

Each model component (terminal think times, transaction generation, disk
selection, restart delays, ...) draws from its own named stream, derived
deterministically from a root seed. This is standard simulation practice:
it decorrelates variance across components and keeps runs reproducible —
adding draws to one component does not perturb any other component's
sequence.
"""

import hashlib
import math
import random


class RandomStream:
    """A named pseudo-random stream with the distributions the model needs.

    The hot distributions bypass :mod:`random`'s public wrappers where
    that is provably bit-identical: ``uniform_int`` calls the generator's
    ``_randbelow`` directly (exactly what ``randint`` bottoms out in),
    and the ``*_many`` batch variants make the same underlying draws in
    the same order as the equivalent loop of single draws, just without
    paying Python call dispatch per draw.
    """

    __slots__ = ("name", "seed", "_random", "_rand", "_randbelow")

    def __init__(self, seed, name=""):
        self.name = name
        self.seed = seed
        self._random = random.Random(seed)
        self._rand = self._random.random
        self._randbelow = self._random._randbelow

    def exponential(self, mean):
        """Sample Exp(mean). A mean of zero degenerates to 0.0."""
        if mean < 0:
            raise ValueError(f"mean must be >= 0, got {mean}")
        if mean == 0:
            return 0.0
        return self._random.expovariate(1.0 / mean)

    def uniform(self, low, high):
        """Sample Uniform[low, high] (continuous)."""
        return self._random.uniform(low, high)

    def uniform_int(self, low, high):
        """Sample an integer uniformly from [low, high] inclusive.

        ``low + _randbelow(width)`` is exactly how ``randint`` is
        implemented, so this consumes the same generator state and
        returns the same values — minus two layers of re-validation.
        """
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        return low + self._randbelow(high - low + 1)

    def uniform_int_many(self, low, high, n):
        """``n`` draws of :meth:`uniform_int`, batched.

        Identical values, in order, to ``n`` single calls; batching
        exists so per-draw hot paths (disk selection) can amortize the
        method dispatch.
        """
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        width = high - low + 1
        randbelow = self._randbelow
        return [low + randbelow(width) for _ in range(n)]

    def bernoulli(self, p):
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        return self._rand() < p

    def bernoulli_many(self, p, n):
        """``n`` draws of :meth:`bernoulli`, batched (same draws, in order)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        rand = self._rand
        return [rand() < p for _ in range(n)]

    def lognormal(self, mean, cv):
        """Sample a lognormal with the given mean and coefficient of
        variation.

        Parameterized by the *arithmetic* moments rather than the
        underlying normal's (mu, sigma): sigma^2 = ln(1 + cv^2) and
        mu = ln(mean) - sigma^2 / 2, so ``lognormal(m, cv)`` has
        E[X] = m and CV[X] = cv exactly. A cv of 0 degenerates to the
        constant ``mean`` without consuming generator state.
        """
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        if cv < 0:
            raise ValueError(f"cv must be >= 0, got {cv}")
        if cv == 0:
            return mean
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return self._random.lognormvariate(mu, math.sqrt(sigma2))

    def lognormal_many(self, mean, cv, n):
        """``n`` draws of :meth:`lognormal`, batched (same draws, in order)."""
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        if cv < 0:
            raise ValueError(f"cv must be >= 0, got {cv}")
        if cv == 0:
            return [mean] * n
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        sigma = math.sqrt(sigma2)
        lognormvariate = self._random.lognormvariate
        return [lognormvariate(mu, sigma) for _ in range(n)]

    def pareto(self, alpha, mean):
        """Sample a Pareto (Lomax-free, ``x >= xm``) with the given mean.

        The scale is derived from the target mean: for shape
        ``alpha > 1``, E[X] = alpha*xm/(alpha-1), so
        xm = mean*(alpha-1)/alpha. Shapes <= 1 have no finite mean and
        are rejected; 1 < alpha <= 2 has infinite variance — the
        heavy-tail regime the ``heavy_tailed`` workload model studies.
        """
        if alpha <= 1.0:
            raise ValueError(
                f"alpha must be > 1 for a finite mean, got {alpha}"
            )
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        xm = mean * (alpha - 1.0) / alpha
        return xm * self._random.paretovariate(alpha)

    def pareto_many(self, alpha, mean, n):
        """``n`` draws of :meth:`pareto`, batched (same draws, in order)."""
        if alpha <= 1.0:
            raise ValueError(
                f"alpha must be > 1 for a finite mean, got {alpha}"
            )
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        xm = mean * (alpha - 1.0) / alpha
        paretovariate = self._random.paretovariate
        return [xm * paretovariate(alpha) for _ in range(n)]

    def sample_without_replacement(self, population_size, k):
        """``k`` distinct integers from range(population_size).

        Used to draw a transaction's read set from the database; the paper
        chooses objects "randomly (without replacement) from among all of
        the objects in the database".
        """
        if k > population_size:
            raise ValueError(
                f"cannot draw {k} distinct items from {population_size}"
            )
        return self._random.sample(range(population_size), k)

    def choice(self, sequence):
        return self._random.choice(sequence)

    def shuffle(self, items):
        self._random.shuffle(items)

    def random(self):
        return self._rand()

    def __repr__(self):
        return f"RandomStream(name={self.name!r}, seed={self.seed!r})"


class StreamFactory:
    """Derives independent named :class:`RandomStream`s from one root seed.

    Derivation hashes (root_seed, name) with SHA-256, so streams are stable
    across runs and machines and independent of creation order.
    """

    __slots__ = ("root_seed", "_created")

    def __init__(self, root_seed):
        self.root_seed = root_seed
        self._created = {}

    def stream(self, name):
        """The stream for ``name`` (created on first use, then cached)."""
        if name in self._created:
            return self._created[name]
        digest = hashlib.sha256(
            f"{self.root_seed}/{name}".encode()
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = RandomStream(seed, name)
        self._created[name] = stream
        return stream

    def __repr__(self):
        return f"StreamFactory(root_seed={self.root_seed!r})"
