"""Seeded random-number streams for simulation components.

Each model component (terminal think times, transaction generation, disk
selection, restart delays, ...) draws from its own named stream, derived
deterministically from a root seed. This is standard simulation practice:
it decorrelates variance across components and keeps runs reproducible —
adding draws to one component does not perturb any other component's
sequence.
"""

import hashlib
import random


class RandomStream:
    """A named pseudo-random stream with the distributions the model needs.

    The hot distributions bypass :mod:`random`'s public wrappers where
    that is provably bit-identical: ``uniform_int`` calls the generator's
    ``_randbelow`` directly (exactly what ``randint`` bottoms out in),
    and the ``*_many`` batch variants make the same underlying draws in
    the same order as the equivalent loop of single draws, just without
    paying Python call dispatch per draw.
    """

    __slots__ = ("name", "seed", "_random", "_rand", "_randbelow")

    def __init__(self, seed, name=""):
        self.name = name
        self.seed = seed
        self._random = random.Random(seed)
        self._rand = self._random.random
        self._randbelow = self._random._randbelow

    def exponential(self, mean):
        """Sample Exp(mean). A mean of zero degenerates to 0.0."""
        if mean < 0:
            raise ValueError(f"mean must be >= 0, got {mean}")
        if mean == 0:
            return 0.0
        return self._random.expovariate(1.0 / mean)

    def uniform(self, low, high):
        """Sample Uniform[low, high] (continuous)."""
        return self._random.uniform(low, high)

    def uniform_int(self, low, high):
        """Sample an integer uniformly from [low, high] inclusive.

        ``low + _randbelow(width)`` is exactly how ``randint`` is
        implemented, so this consumes the same generator state and
        returns the same values — minus two layers of re-validation.
        """
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        return low + self._randbelow(high - low + 1)

    def uniform_int_many(self, low, high, n):
        """``n`` draws of :meth:`uniform_int`, batched.

        Identical values, in order, to ``n`` single calls; batching
        exists so per-draw hot paths (disk selection) can amortize the
        method dispatch.
        """
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        width = high - low + 1
        randbelow = self._randbelow
        return [low + randbelow(width) for _ in range(n)]

    def bernoulli(self, p):
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        return self._rand() < p

    def bernoulli_many(self, p, n):
        """``n`` draws of :meth:`bernoulli`, batched (same draws, in order)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        rand = self._rand
        return [rand() < p for _ in range(n)]

    def sample_without_replacement(self, population_size, k):
        """``k`` distinct integers from range(population_size).

        Used to draw a transaction's read set from the database; the paper
        chooses objects "randomly (without replacement) from among all of
        the objects in the database".
        """
        if k > population_size:
            raise ValueError(
                f"cannot draw {k} distinct items from {population_size}"
            )
        return self._random.sample(range(population_size), k)

    def choice(self, sequence):
        return self._random.choice(sequence)

    def shuffle(self, items):
        self._random.shuffle(items)

    def random(self):
        return self._rand()

    def __repr__(self):
        return f"RandomStream(name={self.name!r}, seed={self.seed!r})"


class StreamFactory:
    """Derives independent named :class:`RandomStream`s from one root seed.

    Derivation hashes (root_seed, name) with SHA-256, so streams are stable
    across runs and machines and independent of creation order.
    """

    __slots__ = ("root_seed", "_created")

    def __init__(self, root_seed):
        self.root_seed = root_seed
        self._created = {}

    def stream(self, name):
        """The stream for ``name`` (created on first use, then cached)."""
        if name in self._created:
            return self._created[name]
        digest = hashlib.sha256(
            f"{self.root_seed}/{name}".encode()
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = RandomStream(seed, name)
        self._created[name] = stream
        return stream

    def __repr__(self):
        return f"StreamFactory(root_seed={self.root_seed!r})"
