"""Shared resources: multi-server pools with FCFS/priority queueing, stores.

These map directly onto the paper's physical queuing model: the CPU pool is
one :class:`Resource` with ``capacity = num_cpus`` and a single global queue
(concurrency-control requests enter with a higher priority class); each disk
is a ``capacity=1`` :class:`Resource` with its own queue.
"""

from collections import deque
from heapq import heapify, heappop, heappush
from itertools import count

from repro.des.events import PENDING, Event


class Request(Event):
    """A pending claim on a resource; fires when the claim is granted.

    Supports the context-manager idiom so releases cannot be leaked::

        with resource.request() as req:
            yield req
            yield env.timeout(service_time)
        # released here, even if the process is interrupted
    """

    __slots__ = ("resource", "priority", "_withdrawn")

    def __init__(self, resource, priority=0):
        # Two requests per object access make this one of the
        # most-created event types; assign every field directly rather
        # than paying for the Event.__init__ call (same fields, same
        # values).
        self.env = resource.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.resource = resource
        self.priority = priority
        self._withdrawn = False

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.resource.release(self)
        return False

    def cancel(self):
        """Withdraw an ungranted request (alias for release)."""
        self.resource.release(self)


class Resource:
    """A pool of ``capacity`` identical servers with one queue.

    Queued requests are granted in (priority, arrival) order: lower
    ``priority`` values are served first; ties are FCFS. This implements
    both plain FCFS (all priorities equal) and the paper's rule that
    concurrency-control requests have priority over other CPU requests.

    Withdrawing a queued request (``release``/``cancel`` before the grant)
    uses *lazy deletion*: the request is tombstoned in place and skipped
    when it reaches the heap top, instead of the O(n) scan plus full
    re-``heapify`` an eager removal would cost. Interrupt-heavy workloads
    (wound-wait aborts, fault injection) withdraw constantly, so this
    keeps them O(log n) per operation. ``_live`` counts the non-withdrawn
    queued requests; when tombstones dominate a large queue it is
    compacted, which bounds memory without changing grant order (the heap
    is rebuilt from the same (priority, arrival) keys).
    """

    #: Compact the heap when it holds at least this many entries and
    #: more than half of them are tombstones.
    _COMPACT_MIN = 64

    __slots__ = ("env", "capacity", "users", "_queue", "_order", "_live")

    def __init__(self, env, capacity=1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users = set()
        self._queue = []
        self._order = count().__next__
        self._live = 0

    @property
    def in_use(self):
        """Number of servers currently held."""
        return len(self.users)

    @property
    def queue_length(self):
        """Number of requests waiting for a server (tombstones excluded)."""
        return self._live

    def request(self, priority=0):
        """Claim a server; the returned event fires when one is assigned."""
        req = Request(self, priority)
        if not self._live and len(self.users) < self.capacity:
            self.users.add(req)
            req.succeed(req)
        else:
            heappush(self._queue, (priority, self._order(), req))
            self._live += 1
        return req

    def release(self, request):
        """Return a server to the pool (or withdraw a queued request).

        Releasing is idempotent: releasing a request that is neither held
        nor queued is a no-op, which makes context-manager cleanup safe
        after an interrupt-triggered early release.
        """
        users = self.users
        if request in users:
            users.remove(request)
            self._grant_next()
        else:
            self._discard_queued(request)

    def _discard_queued(self, request):
        # Every ungranted (untriggered) request of this resource sits in
        # the queue, so a pending, not-yet-withdrawn request can be
        # tombstoned without searching for it.
        if request._withdrawn or request._value is not PENDING:
            return
        request._withdrawn = True
        self._live -= 1
        queued = len(self._queue)
        if queued >= self._COMPACT_MIN and self._live * 2 < queued:
            self._compact()

    def _compact(self):
        # Dropping tombstones and re-heapifying preserves grant order:
        # grants pop by the total order (priority, arrival), which does
        # not depend on the heap's internal layout.
        self._queue = [
            entry for entry in self._queue if not entry[2]._withdrawn
        ]
        heapify(self._queue)

    def _grant_next(self):
        queue = self._queue
        users = self.users
        capacity = self.capacity
        while queue and len(users) < capacity:
            req = heappop(queue)[2]
            if req._withdrawn:
                continue  # tombstone: withdrawn while queued
            self._live -= 1
            if req._value is not PENDING:
                continue  # triggered behind our back; never re-grant
            users.add(req)
            req.succeed(req)


class InfiniteResource:
    """A resource with unbounded servers: every request granted instantly.

    Models the paper's "infinite resources" assumption — transactions
    never wait for CPU or I/O service. Mirrors the :class:`Resource` API
    so the physical layer can swap it in transparently.
    """

    capacity = float("inf")

    __slots__ = ("env", "users")

    def __init__(self, env):
        self.env = env
        self.users = set()

    @property
    def in_use(self):
        return len(self.users)

    @property
    def queue_length(self):
        return 0

    def request(self, priority=0):
        req = Request(self, priority)
        self.users.add(req)
        req.succeed(req)
        return req

    def release(self, request):
        self.users.discard(request)


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``.

    Used for simple producer/consumer hand-offs (e.g. admission control
    feeding the ready queue into the active set).
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env):
        self.env = env
        self._items = deque()
        self._getters = deque()

    @property
    def items(self):
        """Snapshot of buffered items (read-only view by convention)."""
        return list(self._items)

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Add ``item``; wakes the oldest blocked getter, if any."""
        self._items.append(item)
        self._dispatch()

    def get(self):
        """Event that fires with the oldest item once one is available."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self):
        while self._items and self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self._items.popleft())
