"""Shared resources: multi-server pools with FCFS/priority queueing, stores.

These map directly onto the paper's physical queuing model: the CPU pool is
one :class:`Resource` with ``capacity = num_cpus`` and a single global queue
(concurrency-control requests enter with a higher priority class); each disk
is a ``capacity=1`` :class:`Resource` with its own queue.
"""

from heapq import heapify, heappop, heappush
from itertools import count

from repro.des.events import Event


class Request(Event):
    """A pending claim on a resource; fires when the claim is granted.

    Supports the context-manager idiom so releases cannot be leaked::

        with resource.request() as req:
            yield req
            yield env.timeout(service_time)
        # released here, even if the process is interrupted
    """

    __slots__ = ("resource", "priority")

    def __init__(self, resource, priority=0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.resource.release(self)
        return False

    def cancel(self):
        """Withdraw an ungranted request (alias for release)."""
        self.resource.release(self)


class Resource:
    """A pool of ``capacity`` identical servers with one queue.

    Queued requests are granted in (priority, arrival) order: lower
    ``priority`` values are served first; ties are FCFS. This implements
    both plain FCFS (all priorities equal) and the paper's rule that
    concurrency-control requests have priority over other CPU requests.
    """

    def __init__(self, env, capacity=1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users = set()
        self._queue = []
        self._order = count()

    @property
    def in_use(self):
        """Number of servers currently held."""
        return len(self.users)

    @property
    def queue_length(self):
        """Number of requests waiting for a server."""
        return len(self._queue)

    def request(self, priority=0):
        """Claim a server; the returned event fires when one is assigned."""
        req = Request(self, priority)
        if len(self.users) < self.capacity and not self._queue:
            self.users.add(req)
            req.succeed(req)
        else:
            heappush(self._queue, (priority, next(self._order), req))
        return req

    def release(self, request):
        """Return a server to the pool (or withdraw a queued request).

        Releasing is idempotent: releasing a request that is neither held
        nor queued is a no-op, which makes context-manager cleanup safe
        after an interrupt-triggered early release.
        """
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            self._discard_queued(request)

    def _discard_queued(self, request):
        for index, (_, _, queued) in enumerate(self._queue):
            if queued is request:
                self._queue.pop(index)
                # heappop-less removal breaks the heap invariant; restore it.
                heapify(self._queue)
                return

    def _grant_next(self):
        while self._queue and len(self.users) < self.capacity:
            _, _, req = heappop(self._queue)
            if req.triggered:
                continue  # withdrawn or failed while queued
            self.users.add(req)
            req.succeed(req)


class InfiniteResource:
    """A resource with unbounded servers: every request granted instantly.

    Models the paper's "infinite resources" assumption — transactions
    never wait for CPU or I/O service. Mirrors the :class:`Resource` API
    so the physical layer can swap it in transparently.
    """

    capacity = float("inf")

    def __init__(self, env):
        self.env = env
        self.users = set()

    @property
    def in_use(self):
        return len(self.users)

    @property
    def queue_length(self):
        return 0

    def request(self, priority=0):
        req = Request(self, priority)
        self.users.add(req)
        req.succeed(req)
        return req

    def release(self, request):
        self.users.discard(request)


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``.

    Used for simple producer/consumer hand-offs (e.g. admission control
    feeding the ready queue into the active set).
    """

    def __init__(self, env):
        self.env = env
        self._items = []
        self._getters = []

    @property
    def items(self):
        """Snapshot of buffered items (read-only view by convention)."""
        return list(self._items)

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Add ``item``; wakes the oldest blocked getter, if any."""
        self._items.append(item)
        self._dispatch()

    def get(self):
        """Event that fires with the oldest item once one is available."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self):
        while self._items and self._getters:
            getter = self._getters.pop(0)
            if getter.triggered:
                continue
            getter.succeed(self._items.pop(0))
