"""Measurement instruments bound to a simulation environment.

Thin adapters over :mod:`repro.stats` that read the clock from an
:class:`~repro.des.environment.Environment`, so model code records
observations without passing ``now`` around.
"""

from repro.stats.timeweighted import TimeWeighted
from repro.stats.welford import Welford


class Counter:
    """A monotonically increasing event counter with snapshot/delta."""

    __slots__ = ("name", "total")

    def __init__(self, name):
        self.name = name
        self.total = 0

    def increment(self, amount=1):
        self.total += amount

    def delta_since(self, earlier_total):
        return self.total - earlier_total

    def __repr__(self):
        return f"Counter({self.name!r}, total={self.total})"


class Tally(Welford):
    """A named Welford accumulator for per-observation statistics."""

    __slots__ = ("name",)

    def __init__(self, name):
        super().__init__()
        self.name = name

    def __repr__(self):
        return f"Tally({self.name!r}, {super().__repr__()})"


class LevelMonitor:
    """Tracks a time-weighted level (queue length, population, busy servers).

    Reads the clock from the environment, so updates are one-argument.
    """

    __slots__ = ("env", "name", "_tw")

    def __init__(self, env, name, initial=0.0):
        self.env = env
        self.name = name
        self._tw = TimeWeighted(initial=initial, start_time=env.now)

    @property
    def value(self):
        return self._tw.value

    def set(self, value):
        self._tw.update(value, self.env.now)

    def add(self, delta):
        self._tw.add(delta, self.env.now)

    def area(self):
        """Time integral of the level up to now."""
        return self._tw.area(self.env.now)

    def time_average(self):
        return self._tw.time_average(self.env.now)

    def window_average(self, area_at_start, window_start):
        return self._tw.window_average(
            area_at_start, window_start, self.env.now
        )

    def __repr__(self):
        return f"LevelMonitor({self.name!r}, value={self.value!r})"


class BusyTracker:
    """Accumulates server busy-time for a resource pool.

    ``total_busy`` integrates busy-server-seconds. Model code additionally
    classifies consumed service time as *useful* or *wasted* when each
    transaction attempt resolves (commit vs. restart), which yields the
    paper's total and useful utilization curves.

    ``acquire``/``release`` run twice per CPU or disk service — among
    the hottest calls of a simulation — so the tracker integrates a
    :class:`~repro.stats.timeweighted.TimeWeighted` directly rather
    than going through a :class:`LevelMonitor` indirection.
    """

    __slots__ = (
        "env", "name", "capacity", "_busy", "useful_time", "wasted_time"
    )

    def __init__(self, env, name, capacity):
        self.env = env
        self.name = name
        self.capacity = capacity
        self._busy = TimeWeighted(initial=0.0, start_time=env.now)
        self.useful_time = 0.0
        self.wasted_time = 0.0

    def acquire(self):
        self._busy.add(1, self.env._now)

    def release(self):
        self._busy.add(-1, self.env._now)

    @property
    def busy_now(self):
        """Servers busy at this instant (time-series sampling)."""
        return self._busy.value

    def record_outcome(self, service_time, useful):
        """Attribute ``service_time`` of consumed service to an outcome."""
        if useful:
            self.useful_time += service_time
        else:
            self.wasted_time += service_time

    def busy_area(self):
        """Busy-server-seconds accumulated so far."""
        return self._busy.area(self.env.now)

    def utilization(self, busy_area_at_start, window_start):
        """Mean fraction of servers busy over [window_start, now]."""
        elapsed = self.env.now - window_start
        if elapsed <= 0.0 or not self.capacity:
            return 0.0
        if self.capacity == float("inf"):
            return 0.0
        area = self._busy.area(self.env.now) - busy_area_at_start
        return area / (elapsed * self.capacity)

    def useful_utilization(self, useful_at_start, window_start):
        """Fraction of server capacity spent on work that committed."""
        elapsed = self.env.now - window_start
        if elapsed <= 0.0 or not self.capacity:
            return 0.0
        if self.capacity == float("inf"):
            return 0.0
        useful = self.useful_time - useful_at_start
        return useful / (elapsed * self.capacity)
