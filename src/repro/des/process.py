"""Generator-based simulation processes.

A process is a Python generator that yields events. When the yielded event
fires, the process resumes with the event's value (``x = yield ev``), or the
event's exception is thrown into it. A :class:`Process` is itself an event
that fires when the generator returns, so processes can wait on each other
(``result = yield env.process(child())``).
"""

from types import GeneratorType

from repro.des.errors import Interrupt
from repro.des.events import URGENT, Event


class Initialize(Event):
    """Kernel event that starts a process on the next queue step."""

    __slots__ = ()

    def __init__(self, env, process):
        self.env = env
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self._defused = False
        env.schedule(self, URGENT)


class Process(Event):
    """A running generator; fires (as an event) with the generator's return.

    If the generator raises, the process fails with that exception; the
    failure propagates to waiters, or to the run loop if nobody waits —
    errors never pass silently.
    """

    __slots__ = (
        "_generator", "_target", "name", "_send", "_throw", "_resume_cb"
    )

    def __init__(self, env, generator, name=None):
        if not isinstance(generator, GeneratorType):
            raise TypeError(
                f"process body must be a generator, got {generator!r}"
            )
        super().__init__(env)
        self._generator = generator
        # Bound-method caches: _resume runs once per event delivered to
        # any process, so the send/throw attribute lookups add up.
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        self._target = None
        self.name = name or generator.__name__
        Initialize(env, self)

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self):
        """The event this process is currently waiting on (None if running)."""
        return self._target

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process as soon as possible.

        The interrupt is delivered via an urgent event so it cannot race
        ahead of the current callback cascade. Interrupting a finished
        process is an error.
        """
        if self.triggered:
            raise RuntimeError(f"{self} has already terminated")
        interrupt_event = Event(self.env)
        interrupt_event._defused = True
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.callbacks.append(self._deliver_interrupt)
        self.env.schedule(interrupt_event, URGENT)

    def _deliver_interrupt(self, event):
        if self.triggered:
            return  # process finished before the interrupt was delivered
        # Detach from whatever we were waiting on, then resume with failure.
        if self._target is not None and not self._target.processed:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event):
        env = self.env
        env._active_process = self
        send = self._send
        while True:
            self._target = None
            try:
                if event._ok:
                    next_target = send(event._value)
                else:
                    event._defused = True
                    next_target = self._throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as error:
                env._active_process = None
                self.fail(error)
                return
            if not isinstance(next_target, Event):
                env._active_process = None
                self.fail(
                    TypeError(
                        f"process {self.name!r} yielded a non-event: "
                        f"{next_target!r}"
                    )
                )
                return
            if next_target.callbacks is None:  # processed
                # Already fired and delivered: resume immediately in-line.
                event = next_target
                continue
            next_target.callbacks.append(self._resume_cb)
            self._target = next_target
            break
        env._active_process = None

    def __repr__(self):
        return f"<Process {self.name!r} at {id(self):#x}>"
