"""Sweep runner: algorithms x multiprogramming levels for one experiment.

The runner is *resilient*: a sweep no longer dies on its first bad
point.  Each (algorithm, mpl) point can be supervised by a wall-clock
deadline and a simulated-time livelock watchdog, retried with a
reseeded RNG, and checkpointed to disk as soon as it completes, so a
killed multi-hour sweep resumes where it stopped and a pathological
point degrades the sweep to partial results instead of losing it.

The runner is also *parallel*: ``run_sweep(..., workers=N)`` fans the
point grid out over a :class:`concurrent.futures.ProcessPoolExecutor`
(every point is an independent closed-queuing simulation, so the grid
is embarrassingly parallel).  The parent process stays the single
checkpoint writer and progress reporter; workers only simulate.  Seeds
are derived from ``run.seed`` and the grid key alone — never from
submission or completion order — so a sweep's results are identical
for any worker count.
"""

import hashlib
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cc.registry import algorithm_names
from repro.core import RestartLivelockError, RunConfig, run_simulation
from repro.experiments.errors import (
    PointCancelledError,
    PointDeadlineExceeded,
    PointExecutionError,
    SimulationStalledError,
)
from repro.obs import JsonlSink, TimeSeriesSampler

#: Run controls sized for a laptop. The paper used 20 batches with a
#: "large batch time" on a VAX cluster; these defaults produce the same
#: qualitative curves in minutes. Pass ``RunConfig(batches=20,
#: batch_time=120.0)`` (or larger) for publication-grade intervals.
DEFAULT_RUN = RunConfig(batches=6, batch_time=25.0, warmup_batches=1)

#: An even quicker profile for smoke tests and pytest-benchmark runs.
QUICK_RUN = RunConfig(batches=3, batch_time=12.0, warmup_batches=1)

# Per-point outcomes (stable strings; they appear in checkpoints).
STATUS_OK = "ok"
STATUS_RETRIED = "retried"
STATUS_FAILED = "failed"


#: Extra wall-clock slack the parent grants a parallel sweep beyond the
#: worst case its in-worker deadlines allow, before it declares a
#: worker wedged (see :func:`_hard_backstop`).
BACKSTOP_GRACE = 30.0

#: Capped exponential backoff between a point's retry attempts:
#: ``min(CAP, BASE * 2**(attempt-1)) * jitter`` with jitter in
#: [0.5, 1.5) derived deterministically from the attempt's seed (see
#: :func:`retry_backoff`). Small base — retries usually follow
#: simulation pathologies, not resource contention — but the cap keeps
#: a long retry ladder from sleeping unboundedly.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 30.0

#: Consecutive worker-pool crashes (BrokenProcessPool) a parallel sweep
#: absorbs by restarting the pool before it degrades the remaining
#: points to sequential in-process execution.
MAX_POOL_RESTARTS = 3

#: Seam for the supervision sleeps (tests patch this; see
#: :func:`retry_backoff`). Never called on a point's first attempt, so
#: the default zero-retry path has identical timing to before.
_sleep = time.sleep


def point_seed(seed, algorithm, mpl, attempt, rep=0):
    """The RNG seed of one attempt of one grid point.

    Attempt 0 uses the sweep seed unchanged for *every* point and
    *every* replication — the common-random-numbers discipline the
    sequential runner has always used (shared randomness across
    algorithms, mpls and replications reduces the variance of their
    differences, which is what the paper's curves compare).
    Replications don't need their own attempt-0 seeds because a
    replication is a *segment* of the shared trajectory, selected by
    extending the warmup, not by reseeding (see :func:`run_sweep`).

    Retry attempts (``attempt >= 1``) take the first 8 bytes of
    ``sha256(seed:algorithm:mpl:attempt)`` — a full-width stable hash
    of the whole grid key, so distinct points cannot share an attempt
    seed.  (An earlier scheme offset by ``crc32(key) % 7919``, which
    collides whenever two grid keys are congruent modulo the stride —
    colliding points replayed identical retry trajectories, silently
    correlating their results.)  A retried replication ``rep > 0``
    appends ``:rep<r>`` to the hashed key, so two replications of one
    point retrying after a shared failure cannot collide either;
    ``rep == 0`` hashes the original key unchanged, preserving every
    seed minted by earlier versions.

    The value is a pure function of ``(seed, algorithm, mpl, attempt,
    rep)``: submission order, completion order and worker count never
    enter, which is what makes parallel sweeps reproducible.  Negative
    attempts are a caller bug and raise ``ValueError`` (an earlier
    version silently hashed them into valid-looking seeds).
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if attempt == 0:
        return seed
    key = f"{seed}:{algorithm}:{mpl}:{attempt}"
    if rep:
        key += f":rep{rep}"
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


def retry_backoff(seed, algorithm, mpl, attempt, rep=0):
    """Seconds to wait before retry ``attempt`` of one grid point.

    Capped exponential with *deterministic* jitter: the jitter factor
    (uniform-ish in [0.5, 1.5)) is derived from
    :func:`point_seed` — a pure function of the grid key, attempt and
    replication — so two runs of the same sweep back off identically,
    and distinct points retrying after a shared failure burst don't
    thunder in lockstep. Attempt 0 (the initial try, the only attempt
    a clean point ever makes) returns 0.0: first attempts never wait.
    Negative attempts raise ``ValueError`` (an earlier version
    returned 0.0 for them, hiding caller bugs as missing backoffs).
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if attempt == 0:
        return 0.0
    base = min(BACKOFF_CAP, BACKOFF_BASE * (2 ** (attempt - 1)))
    jitter = 0.5 + (
        point_seed(seed, algorithm, mpl, attempt, rep) % 1024
    ) / 1024.0
    return min(BACKOFF_CAP, base * jitter)


@dataclass(frozen=True)
class PointTrace:
    """Per-point event-trace request for a sweep.

    Each grid point streams its instrumentation-bus events to
    ``<directory>/<experiment>.<algorithm>.mpl<NNN>.jsonl`` through a
    :class:`~repro.obs.JsonlSink`.  ``kinds`` restricts the subscribed
    event kinds (None = every kind, including high-volume resource and
    CC-grant events).  Frozen and built from plain values so it pickles
    cleanly into sweep worker processes.
    """

    directory: str
    kinds: Optional[Tuple[str, ...]] = None

    def point_path(self, experiment_id, algorithm, mpl):
        return os.path.join(
            self.directory,
            f"{experiment_id}.{algorithm}.mpl{mpl:03d}.jsonl",
        )


def _point_subscribers(config, algorithm, mpl, timeseries, trace):
    """Fresh observability subscribers for one point attempt.

    Built per attempt — never reused — so a retried point starts from
    empty series and a truncated trace file (JsonlSink opens with mode
    ``"w"``).  Returns ``(sampler, sink, subscribers_tuple)``.
    """
    sampler = None
    sink = None
    subscribers = []
    if timeseries is not None:
        sampler = TimeSeriesSampler(interval=timeseries)
        subscribers.append(sampler)
    if trace is not None:
        sink = JsonlSink(
            trace.point_path(config.experiment_id, algorithm, mpl),
            kinds=trace.kinds,
        )
        subscribers.append(sink)
    return sampler, sink, tuple(subscribers)


def _point_diagnostics(timeseries, sampler, sink):
    """The JSON-serializable diagnostics payload of a successful point."""
    diagnostics = {}
    if sampler is not None:
        diagnostics["timeseries"] = {
            "interval": timeseries,
            "series": sampler.series(),
        }
    if sink is not None:
        diagnostics["trace"] = {
            "path": sink.path,
            "events": sink.events_written,
        }
    return diagnostics or None


@dataclass
class PointStatus:
    """How one (algorithm, mpl) point of a sweep went."""

    #: One of STATUS_OK / STATUS_RETRIED / STATUS_FAILED.
    status: str
    #: Simulation attempts consumed (1 = clean first try).
    attempts: int = 1
    #: Message of the last failure seen (also set on retried successes).
    error: Optional[str] = None
    #: Wall-clock spent on this point, all attempts included.
    wall_seconds: float = 0.0

    @property
    def completed(self):
        """True when the point produced a usable result."""
        return self.status in (STATUS_OK, STATUS_RETRIED)


@dataclass
class SweepResult:
    """All simulation results of one experiment sweep.

    ``results`` holds the successful points only; ``statuses`` records
    the outcome of every attempted point, so partial sweeps stay
    self-describing (a missing (algorithm, mpl) key is distinguishable
    from a failed one).

    With ``replications > 1`` every grid point is measured
    ``replications`` times (replication ``r`` is the ``r``-th
    ``run.batches``-sized segment of one deterministic trajectory; see
    :func:`run_sweep`).  ``results``/``statuses`` keep their historical
    meaning — replication 0, which is byte-identical to what a
    non-replicated sweep produces — so every existing consumer
    (reports, figures, persistence) reads replicated sweeps unchanged;
    the extra replications live in ``replicates`` and are summarized by
    :meth:`cross_replication`.
    """

    config: object
    run: RunConfig
    #: (algorithm, mpl) -> SimulationResult (replication 0).
    results: Dict[Tuple[str, int], object] = field(default_factory=dict)
    #: (algorithm, mpl) -> PointStatus (every attempted point; the
    #: aggregate over its replications when replications > 1).
    statuses: Dict[Tuple[str, int], PointStatus] = field(
        default_factory=dict
    )
    wall_seconds: float = 0.0
    #: Replications requested per grid point (1 = classic behavior).
    replications: int = 1
    #: (algorithm, mpl) -> {rep -> SimulationResult} (successes only).
    replicates: Dict[Tuple[str, int], Dict[int, object]] = field(
        default_factory=dict
    )
    #: (algorithm, mpl, rep) -> PointStatus (every attempted
    #: replication; the per-rep detail behind ``statuses``).
    replicate_statuses: Dict[Tuple[str, int, int], PointStatus] = field(
        default_factory=dict
    )

    def result(self, algorithm, mpl):
        return self.results[(algorithm, mpl)]

    def status(self, algorithm, mpl):
        """The PointStatus of one attempted point (KeyError if never run)."""
        return self.statuses[(algorithm, mpl)]

    def replicate(self, algorithm, mpl, rep=0):
        """The SimulationResult of one replication of one point."""
        return self.replicates[(algorithm, mpl)][rep]

    def replicate_means(self, metric, algorithm, mpl):
        """``metric``'s per-replication means, in replication order."""
        reps = self.replicates.get((algorithm, mpl), {})
        return [reps[r].mean(metric) for r in sorted(reps)]

    def cross_replication(self, metric, algorithm, mpl):
        """``(n, mean, std)`` of ``metric`` across replications.

        ``mean`` averages the per-replication means (each replication
        is an equal-length batch segment, so this equals the pooled
        batch mean); ``std`` is their sample standard deviation (0.0
        for a single replication).
        """
        means = self.replicate_means(metric, algorithm, mpl)
        if not means:
            raise KeyError(f"no replications for {(algorithm, mpl)}")
        n = len(means)
        mean = sum(means) / n
        if n < 2:
            return n, mean, 0.0
        variance = sum((m - mean) ** 2 for m in means) / (n - 1)
        return n, mean, variance ** 0.5

    def record_replicate(self, algorithm, mpl, rep, result, status):
        """Fold one finished replication into the sweep's containers.

        The single write path shared by the runner, the batched
        backend, and checkpoint restore, so the replication-0 aliasing
        into ``results``/``statuses`` and the per-point aggregation
        cannot drift between them.
        """
        pair = (algorithm, mpl)
        self.replicate_statuses[(algorithm, mpl, rep)] = status
        if result is not None:
            self.replicates.setdefault(pair, {})[rep] = result
            if rep == 0:
                self.results[pair] = result
        if self.replications == 1:
            self.statuses[pair] = status
        else:
            self.statuses[pair] = self._aggregate_status(pair)

    def _aggregate_status(self, pair):
        """One PointStatus summarizing every recorded rep of ``pair``."""
        entries = [
            status
            for (alg, mpl, _), status in sorted(
                self.replicate_statuses.items()
            )
            if (alg, mpl) == pair
        ]
        worst = STATUS_OK
        if any(s.status == STATUS_FAILED for s in entries):
            worst = STATUS_FAILED
        elif any(s.status == STATUS_RETRIED for s in entries):
            worst = STATUS_RETRIED
        errors = [s.error for s in entries if s.error is not None]
        return PointStatus(
            status=worst,
            attempts=sum(s.attempts for s in entries),
            error=errors[-1] if errors else None,
            wall_seconds=sum(s.wall_seconds for s in entries),
        )

    def failed_points(self):
        """Sorted [(algorithm, mpl)] of points that exhausted retries."""
        return sorted(
            key for key, status in self.statuses.items()
            if status.status == STATUS_FAILED
        )

    @property
    def complete(self):
        """True when no attempted point failed."""
        return not self.failed_points()

    def series(self, metric, algorithm):
        """[(mpl, mean, ci), ...] of ``metric`` for one algorithm."""
        points = []
        for (alg, mpl), result in sorted(self.results.items(),
                                         key=lambda kv: kv[0][1]):
            if alg != algorithm:
                continue
            points.append(
                (mpl, result.mean(metric), result.interval(metric))
            )
        return points

    def peak(self, metric, algorithm):
        """(mpl, value) of the best observed ``metric`` for an algorithm."""
        series = self.series(metric, algorithm)
        if not series:
            raise KeyError(f"no data for {algorithm}")
        mpl, value, _ = max(series, key=lambda point: point[1])
        return mpl, value

    def algorithms(self):
        return sorted({alg for alg, _ in self.results})

    def mpls(self):
        return sorted({mpl for _, mpl in self.results})


class _PointWatchdog:
    """Per-point supervision, consulted after every simulation batch.

    Two independent tripwires:

    * **wall-clock deadline** — real seconds since the attempt started;
    * **livelock watchdog** — *simulated* seconds since the last commit
      (a stalled model keeps draining think-time events, so its clock
      advances while throughput flatlines; catching that needs the
      simulated axis, not the wall one).
    """

    def __init__(self, deadline=None, stall_timeout=None,
                 clock=time.monotonic):
        self.deadline = deadline
        self.stall_timeout = stall_timeout
        self.clock = clock
        self.started = clock()
        self._last_commits = 0
        self._last_progress_at = 0.0

    def __call__(self, model):
        if self.deadline is not None:
            elapsed = self.clock() - self.started
            if elapsed > self.deadline:
                raise PointDeadlineExceeded(elapsed, self.deadline)
        if self.stall_timeout is not None:
            commits = model.metrics.commits.total
            if commits > self._last_commits:
                self._last_commits = commits
                self._last_progress_at = model.env.now
            elif (model.env.now - self._last_progress_at
                  >= self.stall_timeout):
                raise SimulationStalledError(
                    model.env.now - self._last_progress_at,
                    model.env.now,
                    commits,
                )


def _validate_algorithms(algorithms, workers=1):
    """Fail fast on unknown algorithm names, before any simulation.

    Non-string entries (pre-built ConcurrencyControl instances) pass
    through when the sweep is sequential; the engine validates those
    itself.  Parallel sweeps require registry names: a live algorithm
    instance cannot be shipped to worker processes.
    """
    known = algorithm_names()
    unknown = [
        name for name in algorithms
        if isinstance(name, str) and name not in known
    ]
    if unknown:
        raise ValueError(
            f"unknown concurrency control algorithm(s) "
            f"{sorted(unknown)}; choose from {known}"
        )
    if workers > 1:
        instances = [a for a in algorithms if not isinstance(a, str)]
        if instances:
            raise ValueError(
                "workers > 1 requires algorithm names from the "
                "registry; pre-built instances cannot be sent to "
                f"worker processes (got {instances!r})"
            )


def _rep_run(run, rep):
    """The RunConfig measuring replication ``rep`` of a grid point.

    Replication ``r`` is the ``r``-th ``run.batches``-sized segment of
    the single trajectory seeded by ``run.seed``: the preceding
    segments become extra warmup, nothing is reseeded.  ``rep == 0``
    returns ``run`` itself, so non-replicated sweeps build the exact
    same RunConfig objects as before.
    """
    if rep == 0:
        return run
    return run.with_changes(
        warmup_batches=run.warmup_batches + rep * run.batches
    )


def _execute_point(config, algorithm, mpl, run, deadline, stall_timeout,
                   retries, progress=None, timeseries=None, trace=None,
                   chaos=None, invariants=None, sleep=None, rep=0):
    """Run one grid point to a (result, status) pair.

    This is the unit of work of both execution modes: the sequential
    loop calls it inline (``progress`` reports per-attempt failures);
    parallel workers call it via :func:`_point_task` with ``progress``
    disabled, since only the parent talks to the user.  ``rep``
    selects the replication (see :func:`_rep_run`); in this classic
    lane each replication is an independent simulation that re-runs
    its trajectory prefix as warmup — the batched backend
    (:mod:`repro.fastlane`) carves all replications from one
    trajectory instead.

    ``timeseries``/``trace`` attach per-point observability subscribers
    (fresh per attempt); a successful point carries their output in
    ``result.diagnostics``.  ``invariants`` is forwarded to
    :func:`~repro.core.run_simulation` (a strict violation is an
    ``AssertionError`` subclass, so it is *never* degraded to a failed
    status — a broken engine must not be retried into silence).
    ``chaos`` (a :class:`~repro.chaos.ChaosSpec`) is consulted at the
    top of every attempt, before any simulation work.

    Retry attempts wait :func:`retry_backoff` seconds first (``sleep``
    overrides the module seam for tests); the first attempt never
    waits, so zero-retry sweeps are timing-identical to before.

    Only supervised failures — watchdog trips and the engine's restart
    livelock detector — are degraded to a failed status; anything else
    is a programming error and propagates.
    """
    supervised = deadline is not None or stall_timeout is not None
    point_started = time.perf_counter()
    result = None
    failure = None
    attempts = 0
    sampler = sink = None
    base_run = _rep_run(run, rep)
    for attempt in range(retries + 1):
        attempts += 1
        if attempt > 0:
            delay = retry_backoff(run.seed, algorithm, mpl, attempt, rep)
            if delay > 0.0:
                (sleep if sleep is not None else _sleep)(delay)
        if chaos is not None:
            chaos.on_point_start(algorithm, mpl)
        attempt_run = base_run if attempt == 0 else base_run.with_changes(
            seed=point_seed(run.seed, algorithm, mpl, attempt, rep)
        )
        watchdog = (
            _PointWatchdog(deadline, stall_timeout)
            if supervised else None
        )
        sampler, sink, subscribers = _point_subscribers(
            config, algorithm, mpl, timeseries, trace
        )
        try:
            result = run_simulation(
                config.params_for(mpl),
                algorithm=algorithm,
                run=attempt_run,
                batch_callback=watchdog,
                subscribers=subscribers,
                invariants=invariants,
            )
            break
        except (PointExecutionError, RestartLivelockError) as error:
            failure = error
            if progress is not None:
                outcome = (
                    "retrying" if attempt < retries else "giving up"
                )
                progress(
                    f"  {config.experiment_id}: {algorithm} "
                    f"mpl={mpl} attempt {attempts} failed "
                    f"({error}); {outcome}"
                )
        finally:
            if sink is not None:
                sink.close()
    wall = time.perf_counter() - point_started
    if result is not None:
        # Merge with anything the run itself produced (buffer-pool
        # statistics from the buffered resource model), never overwrite.
        extra = _point_diagnostics(timeseries, sampler, sink)
        if extra:
            result.diagnostics = {**(result.diagnostics or {}), **extra}
    error_text = (
        f"{type(failure).__name__}: {failure}"
        if failure is not None else None
    )
    if result is not None:
        status = PointStatus(
            status=STATUS_OK if attempts == 1 else STATUS_RETRIED,
            attempts=attempts,
            error=error_text,
            wall_seconds=wall,
        )
    else:
        status = PointStatus(
            status=STATUS_FAILED,
            attempts=attempts,
            error=error_text,
            wall_seconds=wall,
        )
    return result, status


def _point_task(config, algorithm, mpl, run, deadline, stall_timeout,
                retries, timeseries, trace, chaos=None, invariants=None,
                rep=0):
    """Worker-process entry point: one point, no parent-side chatter.

    Module-level (picklable) by construction; everything it needs
    travels in its arguments, everything it produces travels back in
    the (result, status) return value.  Observability subscribers are
    constructed *inside* the worker (live sinks don't pickle); only the
    plain-data diagnostics ride back on the result.  ``chaos`` is a
    frozen dataclass of plain values, so it pickles into workers too —
    which is how a ChaosSpec SIGKILLs a *worker* process mid-sweep.
    """
    return _execute_point(
        config, algorithm, mpl, run, deadline, stall_timeout, retries,
        timeseries=timeseries, trace=trace, chaos=chaos,
        invariants=invariants, rep=rep,
    )


def _hard_backstop(deadline, retries):
    """Parent-side wall-clock budget for "some point must finish".

    The in-worker deadline is checked at batch boundaries, so a worker
    wedged *inside* a batch never trips it.  The parent therefore
    allows the worst case the in-worker supervision permits — every
    attempt running to its full deadline — plus grace, and declares the
    pool hung when no future completes within that window.  Without a
    per-point deadline there is no defensible budget, so there is no
    backstop either.
    """
    if deadline is None:
        return None
    return deadline * (retries + 1) + BACKSTOP_GRACE


def _terminate_workers(executor):
    """Kill a pool's worker processes outright (hung-worker backstop).

    ``ProcessPoolExecutor`` has no public kill switch — ``shutdown``
    waits for running tasks — so this reaches for the process handles.
    A worker wedged in C code would otherwise survive shutdown and
    block interpreter exit on the executor's atexit join.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError) as error:
            # Best-effort cleanup (the process may already be gone or
            # its handle closed), but never silent: a worker that
            # survives here blocks interpreter exit, so the operator
            # deserves the evidence.
            print(
                f"warning: failed to terminate sweep worker "
                f"pid={getattr(process, 'pid', '?')}: {error}",
                file=sys.stderr, flush=True,
            )


def _run_parallel(sweep, pending, config, run, deadline, stall_timeout,
                  retries, workers, progress, ckpt, timeseries, trace,
                  chaos=None, invariants=None):
    """Submit/drain executor for the pending grid points.

    The parent is the only process that touches the checkpoint or the
    progress sink: workers return (result, status) pairs and the
    parent flushes each to the checkpoint as its future completes, so
    PR 1's resume semantics survive unchanged (the JSONL line order is
    completion order, which the loader never relied on).

    Returns the grid keys left *unrecorded* because the worker pool
    broke (a worker SIGKILLed or segfaulted poisons the whole
    ``ProcessPoolExecutor``): the supervisor re-runs exactly those —
    with their untouched attempt-0 seeds, so recovery is
    byte-identical to a crash-free sweep. An empty list means the
    drain ran to completion or the hung-worker backstop tripped
    (backstop cancellations are recorded failed, and never-started
    points deliberately left unattempted for ``--resume``).
    """
    total = len(pending)
    completed = 0
    backstop = _hard_backstop(deadline, retries)
    executor = ProcessPoolExecutor(max_workers=min(workers, total))
    broken = False
    try:
        futures = {}
        unsubmitted = []
        for algorithm, mpl, rep in pending:
            if broken:
                unsubmitted.append((algorithm, mpl, rep))
                continue
            try:
                future = executor.submit(
                    _point_task, config, algorithm, mpl, run,
                    deadline, stall_timeout, retries, timeseries,
                    trace, chaos, invariants, rep,
                )
            except BrokenProcessPool:
                broken = True
                unsubmitted.append((algorithm, mpl, rep))
                continue
            futures[future] = (algorithm, mpl, rep)
        crashed = []
        outstanding = set(futures)
        while outstanding and not broken:
            done, outstanding = wait(
                outstanding, timeout=backstop,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # Nothing finished inside the backstop window: at
                # least one worker is wedged beyond what the
                # in-worker watchdogs can catch. Cancel what never
                # started (left unattempted, so --resume retries
                # it), fail what was in flight, and kill the pool.
                _cancel_outstanding(
                    sweep, futures, outstanding, backstop, ckpt,
                    progress, config,
                )
                _terminate_workers(executor)
                return []
            for future in done:
                algorithm, mpl, rep = futures[future]
                try:
                    result, status = future.result()
                except BrokenProcessPool:
                    # Don't record anything: a recorded failure would
                    # survive into the checkpoint and a resumed sweep
                    # would keep it, losing the point forever. The
                    # supervisor re-runs it instead.
                    broken = True
                    crashed.append((algorithm, mpl, rep))
                    continue
                completed += 1
                _record_point(
                    sweep, (algorithm, mpl, rep), result, status, ckpt
                )
                if progress is not None:
                    tag = f" rep={rep}" if rep else ""
                    if result is not None:
                        progress(
                            f"  [{completed}/{total}] "
                            f"{config.experiment_id}: "
                            f"{result.describe()}{tag}"
                        )
                    else:
                        progress(
                            f"  [{completed}/{total}] "
                            f"{config.experiment_id}: {algorithm} "
                            f"mpl={mpl}{tag} failed after "
                            f"{status.attempts} attempt(s) "
                            f"({status.error})"
                        )
        if not broken:
            return []
        unfinished = set(crashed) | set(unsubmitted)
        unfinished.update(futures[future] for future in outstanding)
        _terminate_workers(executor)
        # Original grid order, so the supervisor's re-submission (and
        # any sequential degradation) visits points deterministically.
        return [key for key in pending if key in unfinished]
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _supervise_parallel(sweep, pending, config, run, deadline,
                        stall_timeout, retries, workers, progress, ckpt,
                        timeseries, trace, chaos=None, invariants=None):
    """Parallel execution with pool-crash supervision.

    Each :func:`_run_parallel` drain that ends in a broken pool hands
    back its unrecorded points; this loop restarts a fresh pool for
    them.  A crash-with-progress resets the streak (the sweep is
    moving; keep the parallelism), while :data:`MAX_POOL_RESTARTS`
    *consecutive* no-progress crashes degrade the remainder to
    sequential in-process execution — returned to the caller, whose
    sequential loop is the degradation path. Returns ``[]`` when the
    parallel drain finished everything.
    """
    remaining = list(pending)
    streak = 0
    while remaining:
        before = len(remaining)
        remaining = _run_parallel(
            sweep, remaining, config, run, deadline, stall_timeout,
            retries, workers, progress, ckpt, timeseries, trace,
            chaos=chaos, invariants=invariants,
        )
        if not remaining:
            return []
        streak = 0 if len(remaining) < before else streak + 1
        if streak >= MAX_POOL_RESTARTS:
            if progress is not None:
                progress(
                    f"  {config.experiment_id}: worker pool crashed "
                    f"{MAX_POOL_RESTARTS} times without progress; "
                    f"degrading {len(remaining)} remaining point(s) "
                    f"to sequential in-process execution"
                )
            return remaining
        if progress is not None:
            progress(
                f"  {config.experiment_id}: worker pool crashed; "
                f"restarting it for {len(remaining)} remaining "
                f"point(s)"
            )
    return []


def _cancel_outstanding(sweep, futures, outstanding, backstop, ckpt,
                        progress, config):
    """Backstop trip: fail in-flight points, drop never-started ones."""
    for future in outstanding:
        algorithm, mpl, rep = futures[future]
        if future.cancel():
            # Never started; leave it unattempted (no status), so a
            # --resume run knows to simulate it.
            continue
        error = PointCancelledError(algorithm, mpl, backstop)
        status = PointStatus(
            status=STATUS_FAILED,
            attempts=1,
            error=f"PointCancelledError: {error}",
            wall_seconds=backstop,
        )
        _record_point(sweep, (algorithm, mpl, rep), None, status, ckpt)
        if progress is not None:
            tag = f" rep={rep}" if rep else ""
            progress(
                f"  {config.experiment_id}: {algorithm} mpl={mpl}{tag} "
                f"cancelled ({error})"
            )


def _record_point(sweep, key, result, status, ckpt):
    """Single-writer bookkeeping for one finished point (parent only).

    ``key`` is ``(algorithm, mpl, rep)``; the sweep containers and the
    checkpoint line both carry the replication index (omitted from the
    line when 0, keeping non-replicated checkpoints byte-identical to
    earlier formats).
    """
    algorithm, mpl, rep = key
    sweep.record_replicate(algorithm, mpl, rep, result, status)
    if ckpt is not None:
        ckpt.record(algorithm, mpl, result, status, rep=rep)


#: Execution backends run_sweep understands.
BACKENDS = ("classic", "batched")


def run_sweep(config, run=None, mpls=None, algorithms=None, seed=None,
              progress=None, deadline=None, stall_timeout=None,
              retries=0, checkpoint=None, resume=False, workers=1,
              timeseries=None, trace=None, invariants=None, chaos=None,
              backend="classic", replications=1):
    """Run every (algorithm, mpl) point of ``config``.

    ``mpls``/``algorithms`` restrict the sweep (benchmarks use a subset
    of the paper's seven mpl points to stay fast). ``progress`` is an
    optional callable invoked with a status line after each point
    (``print`` and logging functions both work).

    ``replications`` measures every grid point that many times.
    Replication ``r`` is defined as the ``r``-th ``run.batches``-sized
    *segment* of the single trajectory seeded by ``run.seed`` — i.e.
    exactly ``run_simulation(..., run.with_changes(warmup_batches=
    run.warmup_batches + r * run.batches))`` — so replications extend
    the trajectory instead of reseeding it (the method of batch means
    applied across replications; common random numbers survive intact
    across algorithms, mpls *and* replications). Replication 0 is
    byte-identical to the single result a non-replicated sweep
    produces and keeps its historical home in ``SweepResult.results``.

    ``backend`` selects how those points are computed:

    * ``"classic"`` (default) — every (algorithm, mpl, replication) is
      an independent ``run_simulation`` call (sequential or fanned out
      over ``workers``). Replication ``r`` re-simulates its trajectory
      prefix as warmup, so the cost of ``R`` replications grows
      quadratically with ``R``.
    * ``"batched"`` — the :mod:`repro.fastlane` backend: one process
      simulates each point's trajectory **once** (``warmup +
      R * batches`` batches) and carves all replication results from
      it, bit-identical per replication to the classic lane; grid
      points sharing a workload signature additionally share one
      precomputed transaction tape (see
      :class:`repro.fastlane.TapeStore`). Requires ``workers=1`` and
      no per-point ``timeseries``/``trace`` observability (fused
      trajectories would misattribute their events); accepts
      ``invariants="spot"``, which audits the first point of each
      algorithm strictly and leaves the rest unchecked.

    ``workers`` selects the execution mode of the classic backend:

    * ``1`` (default) — the classic in-process sequential loop.
    * ``N > 1`` — the grid fans out over ``N`` worker processes; the
      parent remains the single checkpoint writer and progress
      reporter.  Results are **identical** to the sequential run for
      the same seeds (per-point seeds derive from ``run.seed`` and the
      grid key, never from scheduling order).
    * ``0`` — shorthand for ``os.cpu_count()``.

    Resilience controls (all off by default, preserving the classic
    all-or-nothing behavior):

    * ``deadline`` — wall-clock seconds allowed per point attempt
      (checked at batch boundaries); exceeding it fails the attempt
      with :class:`PointDeadlineExceeded`.  In parallel mode it also
      arms a parent-side hard backstop: if no point completes within
      ``deadline * (retries + 1) + 30`` seconds, hung workers are
      terminated and their points recorded ``failed``
      (:class:`PointCancelledError`); queued points are left
      unattempted so ``--resume`` picks them up.
    * ``stall_timeout`` — *simulated* seconds without a single commit
      before the attempt fails with :class:`SimulationStalledError`.
    * ``retries`` — extra attempts per point after a supervised
      failure, each reseeded per :func:`point_seed`. A point that
      exhausts its attempts is recorded as ``failed`` in
      ``SweepResult.statuses`` and the sweep continues.
    * ``checkpoint`` — path of a JSONL checkpoint file; every completed
      point (failed ones included) is flushed to it immediately. With
      ``resume=True`` an existing checkpoint's points are loaded and
      skipped, so only the missing ones simulate; without ``resume`` an
      existing file is truncated and the sweep starts fresh.

    Observability controls (both off by default; attaching them leaves
    every point's summary bit-identical — subscribers only observe):

    * ``timeseries`` — sampling interval in simulated seconds; each
      point runs a :class:`~repro.obs.TimeSeriesSampler` and carries
      the sampled trajectories in ``result.diagnostics`` (persisted by
      checkpoints/save_sweep; export with
      :func:`~repro.experiments.export.write_timeseries_csv`).
    * ``trace`` — a :class:`PointTrace` (or a directory path, which
      becomes ``PointTrace(directory)``); each point streams its
      instrumentation-bus events to one JSONL file in that directory.

    Robustness controls:

    * ``invariants`` — ``"strict"``/``"warn"``/``"off"``/None; every
      point attaches an :class:`~repro.obs.InvariantChecker` auditing
      the engine's event stream (None defers to ``REPRO_INVARIANTS``,
      then off). Strict violations raise — they are AssertionErrors,
      exempt from retry/degradation by design.
    * ``chaos`` — a :class:`~repro.chaos.ChaosSpec` of harness-level
      faults (SIGKILL / hang a process at a named grid point, one-shot
      each), consulted at the top of every attempt. Test machinery:
      chaos decides when processes die, never what the model computes.

    Supervision semantics in parallel mode: retry attempts back off
    :func:`retry_backoff` seconds (capped exponential, deterministic
    jitter); a broken worker pool (a worker SIGKILLed, segfaulted or
    OOM-killed poisons the whole executor) is restarted and only the
    *unrecorded* points re-submitted with their original seeds — so a
    crashed-and-recovered sweep is byte-identical to a crash-free one;
    after :data:`MAX_POOL_RESTARTS` consecutive crashes without
    progress the remaining points degrade to sequential in-process
    execution.

    Only supervised failures (watchdog trips and the engine's
    zero-delay restart-livelock detector,
    :class:`~repro.core.RestartLivelockError`) are degraded to
    per-point statuses; configuration errors (unknown algorithm,
    invalid parameters) and genuine programming errors still raise
    immediately.
    """
    run = run or DEFAULT_RUN
    if seed is not None:
        run = run.with_changes(seed=seed)
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    if replications < 1:
        raise ValueError(
            f"replications must be >= 1, got {replications}"
        )
    if backend == "batched":
        if workers > 1:
            raise ValueError(
                "the batched backend is single-process (grid points "
                "share in-process tapes); use workers=1 or "
                "backend='classic'"
            )
        if timeseries is not None or trace is not None:
            raise ValueError(
                "per-point timeseries/trace observability requires "
                "backend='classic': the batched backend fuses each "
                "point's replications into one trajectory, which "
                "would misattribute their events"
            )
    elif invariants == "spot":
        raise ValueError(
            "invariants='spot' is a batched-backend mode; use "
            "'strict'/'warn'/'off' with the classic backend"
        )
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if deadline is not None and deadline <= 0:
        raise ValueError(f"deadline must be > 0, got {deadline}")
    if stall_timeout is not None and stall_timeout <= 0:
        raise ValueError(
            f"stall_timeout must be > 0, got {stall_timeout}"
        )
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    if timeseries is not None and timeseries <= 0:
        raise ValueError(
            f"timeseries interval must be > 0, got {timeseries}"
        )
    if isinstance(trace, str):
        trace = PointTrace(directory=trace)
    if trace is not None:
        os.makedirs(trace.directory, exist_ok=True)
    mpls = tuple(mpls) if mpls is not None else config.mpls
    algorithms = (
        tuple(algorithms) if algorithms is not None else config.algorithms
    )
    _validate_algorithms(algorithms, workers=workers)

    sweep = SweepResult(config=config, run=run, replications=replications)
    ckpt = None
    if checkpoint is not None:
        # Imported lazily: persistence imports this module for the
        # result containers.
        from repro.experiments.persistence import SweepCheckpoint

        ckpt = SweepCheckpoint(
            checkpoint, config, run,
            backend=backend, replications=replications,
        )
        if resume and ckpt.exists():
            restored = ckpt.load_into(sweep)
            if progress is not None and restored:
                progress(
                    f"  {config.experiment_id}: resumed {restored} "
                    f"point(s) from {checkpoint}"
                )
        else:
            ckpt.start_fresh()

    pending = [
        (algorithm, mpl, rep)
        for algorithm in algorithms
        for mpl in mpls
        for rep in range(replications)
        if (algorithm, mpl, rep) not in sweep.replicate_statuses  # restored
    ]
    started = time.perf_counter()
    if backend == "batched":
        # Imported lazily: the fast lane is an optional second backend
        # layered on this module's containers and helpers.
        from repro.fastlane import run_batched_points

        run_batched_points(
            sweep, pending, config, run, deadline, stall_timeout,
            retries, progress, ckpt, chaos=chaos, invariants=invariants,
        )
        sweep.wall_seconds = time.perf_counter() - started
        return sweep
    if workers > 1 and len(pending) > 1:
        # Whatever the supervisor could not finish in parallel (pool
        # crashing repeatedly) falls through to the sequential loop —
        # one code path for normal runs and degraded ones.
        pending = _supervise_parallel(
            sweep, pending, config, run, deadline, stall_timeout,
            retries, workers, progress, ckpt, timeseries, trace,
            chaos=chaos, invariants=invariants,
        )
    for algorithm, mpl, rep in pending:
        result, status = _execute_point(
            config, algorithm, mpl, run, deadline, stall_timeout,
            retries, progress=progress,
            timeseries=timeseries, trace=trace,
            chaos=chaos, invariants=invariants, rep=rep,
        )
        if result is not None and progress is not None:
            tag = f" rep={rep}" if rep else ""
            progress(
                f"  {config.experiment_id}: {result.describe()}{tag}"
            )
        _record_point(sweep, (algorithm, mpl, rep), result, status, ckpt)
    sweep.wall_seconds = time.perf_counter() - started
    return sweep


def print_progress(line):
    """Default progress sink: stderr, flushed (safe under pytest -s)."""
    print(line, file=sys.stderr, flush=True)
