"""Sweep runner: algorithms x multiprogramming levels for one experiment."""

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core import RunConfig, run_simulation


#: Run controls sized for a laptop. The paper used 20 batches with a
#: "large batch time" on a VAX cluster; these defaults produce the same
#: qualitative curves in minutes. Pass ``RunConfig(batches=20,
#: batch_time=120.0)`` (or larger) for publication-grade intervals.
DEFAULT_RUN = RunConfig(batches=6, batch_time=25.0, warmup_batches=1)

#: An even quicker profile for smoke tests and pytest-benchmark runs.
QUICK_RUN = RunConfig(batches=3, batch_time=12.0, warmup_batches=1)


@dataclass
class SweepResult:
    """All simulation results of one experiment sweep."""

    config: object
    run: RunConfig
    #: (algorithm, mpl) -> SimulationResult
    results: Dict[Tuple[str, int], object] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def result(self, algorithm, mpl):
        return self.results[(algorithm, mpl)]

    def series(self, metric, algorithm):
        """[(mpl, mean, ci), ...] of ``metric`` for one algorithm."""
        points = []
        for (alg, mpl), result in sorted(self.results.items(),
                                         key=lambda kv: kv[0][1]):
            if alg != algorithm:
                continue
            points.append(
                (mpl, result.mean(metric), result.interval(metric))
            )
        return points

    def peak(self, metric, algorithm):
        """(mpl, value) of the best observed ``metric`` for an algorithm."""
        series = self.series(metric, algorithm)
        if not series:
            raise KeyError(f"no data for {algorithm}")
        mpl, value, _ = max(series, key=lambda point: point[1])
        return mpl, value

    def algorithms(self):
        return sorted({alg for alg, _ in self.results})

    def mpls(self):
        return sorted({mpl for _, mpl in self.results})


def run_sweep(config, run=None, mpls=None, algorithms=None, seed=None,
              progress=None):
    """Run every (algorithm, mpl) point of ``config``.

    ``mpls``/``algorithms`` restrict the sweep (benchmarks use a subset
    of the paper's seven mpl points to stay fast). ``progress`` is an
    optional callable invoked with a status line after each point
    (``print`` and logging functions both work).
    """
    run = run or DEFAULT_RUN
    if seed is not None:
        run = run.with_changes(seed=seed)
    mpls = tuple(mpls) if mpls is not None else config.mpls
    algorithms = (
        tuple(algorithms) if algorithms is not None else config.algorithms
    )
    sweep = SweepResult(config=config, run=run)
    started = time.perf_counter()
    for algorithm in algorithms:
        for mpl in mpls:
            result = run_simulation(
                config.params_for(mpl), algorithm=algorithm, run=run
            )
            sweep.results[(algorithm, mpl)] = result
            if progress is not None:
                progress(f"  {config.experiment_id}: {result.describe()}")
    sweep.wall_seconds = time.perf_counter() - started
    return sweep


def print_progress(line):
    """Default progress sink: stderr, flushed (safe under pytest -s)."""
    print(line, file=sys.stderr, flush=True)
