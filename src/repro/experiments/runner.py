"""Sweep runner: algorithms x multiprogramming levels for one experiment.

The runner is *resilient*: a sweep no longer dies on its first bad
point.  Each (algorithm, mpl) point can be supervised by a wall-clock
deadline and a simulated-time livelock watchdog, retried with a
reseeded RNG, and checkpointed to disk as soon as it completes, so a
killed multi-hour sweep resumes where it stopped and a pathological
point degrades the sweep to partial results instead of losing it.
"""

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cc.registry import algorithm_names
from repro.core import RunConfig, run_simulation
from repro.experiments.errors import (
    PointDeadlineExceeded,
    PointExecutionError,
    SimulationStalledError,
)

#: Run controls sized for a laptop. The paper used 20 batches with a
#: "large batch time" on a VAX cluster; these defaults produce the same
#: qualitative curves in minutes. Pass ``RunConfig(batches=20,
#: batch_time=120.0)`` (or larger) for publication-grade intervals.
DEFAULT_RUN = RunConfig(batches=6, batch_time=25.0, warmup_batches=1)

#: An even quicker profile for smoke tests and pytest-benchmark runs.
QUICK_RUN = RunConfig(batches=3, batch_time=12.0, warmup_batches=1)

# Per-point outcomes (stable strings; they appear in checkpoints).
STATUS_OK = "ok"
STATUS_RETRIED = "retried"
STATUS_FAILED = "failed"

#: Seed offset between retry attempts of one point. Retries must not
#: replay the exact failing trajectory, so attempt ``k`` reseeds with
#: ``run.seed + k * RESEED_STRIDE`` (a prime comfortably larger than
#: the handful of nearby seeds users sweep by hand).
RESEED_STRIDE = 7919


@dataclass
class PointStatus:
    """How one (algorithm, mpl) point of a sweep went."""

    #: One of STATUS_OK / STATUS_RETRIED / STATUS_FAILED.
    status: str
    #: Simulation attempts consumed (1 = clean first try).
    attempts: int = 1
    #: Message of the last failure seen (also set on retried successes).
    error: Optional[str] = None
    #: Wall-clock spent on this point, all attempts included.
    wall_seconds: float = 0.0

    @property
    def completed(self):
        """True when the point produced a usable result."""
        return self.status in (STATUS_OK, STATUS_RETRIED)


@dataclass
class SweepResult:
    """All simulation results of one experiment sweep.

    ``results`` holds the successful points only; ``statuses`` records
    the outcome of every attempted point, so partial sweeps stay
    self-describing (a missing (algorithm, mpl) key is distinguishable
    from a failed one).
    """

    config: object
    run: RunConfig
    #: (algorithm, mpl) -> SimulationResult
    results: Dict[Tuple[str, int], object] = field(default_factory=dict)
    #: (algorithm, mpl) -> PointStatus (every attempted point).
    statuses: Dict[Tuple[str, int], PointStatus] = field(
        default_factory=dict
    )
    wall_seconds: float = 0.0

    def result(self, algorithm, mpl):
        return self.results[(algorithm, mpl)]

    def status(self, algorithm, mpl):
        """The PointStatus of one attempted point (KeyError if never run)."""
        return self.statuses[(algorithm, mpl)]

    def failed_points(self):
        """Sorted [(algorithm, mpl)] of points that exhausted retries."""
        return sorted(
            key for key, status in self.statuses.items()
            if status.status == STATUS_FAILED
        )

    @property
    def complete(self):
        """True when no attempted point failed."""
        return not self.failed_points()

    def series(self, metric, algorithm):
        """[(mpl, mean, ci), ...] of ``metric`` for one algorithm."""
        points = []
        for (alg, mpl), result in sorted(self.results.items(),
                                         key=lambda kv: kv[0][1]):
            if alg != algorithm:
                continue
            points.append(
                (mpl, result.mean(metric), result.interval(metric))
            )
        return points

    def peak(self, metric, algorithm):
        """(mpl, value) of the best observed ``metric`` for an algorithm."""
        series = self.series(metric, algorithm)
        if not series:
            raise KeyError(f"no data for {algorithm}")
        mpl, value, _ = max(series, key=lambda point: point[1])
        return mpl, value

    def algorithms(self):
        return sorted({alg for alg, _ in self.results})

    def mpls(self):
        return sorted({mpl for _, mpl in self.results})


class _PointWatchdog:
    """Per-point supervision, consulted after every simulation batch.

    Two independent tripwires:

    * **wall-clock deadline** — real seconds since the attempt started;
    * **livelock watchdog** — *simulated* seconds since the last commit
      (a stalled model keeps draining think-time events, so its clock
      advances while throughput flatlines; catching that needs the
      simulated axis, not the wall one).
    """

    def __init__(self, deadline=None, stall_timeout=None,
                 clock=time.monotonic):
        self.deadline = deadline
        self.stall_timeout = stall_timeout
        self.clock = clock
        self.started = clock()
        self._last_commits = 0
        self._last_progress_at = 0.0

    def __call__(self, model):
        if self.deadline is not None:
            elapsed = self.clock() - self.started
            if elapsed > self.deadline:
                raise PointDeadlineExceeded(elapsed, self.deadline)
        if self.stall_timeout is not None:
            commits = model.metrics.commits.total
            if commits > self._last_commits:
                self._last_commits = commits
                self._last_progress_at = model.env.now
            elif (model.env.now - self._last_progress_at
                  >= self.stall_timeout):
                raise SimulationStalledError(
                    model.env.now - self._last_progress_at,
                    model.env.now,
                    commits,
                )


def _validate_algorithms(algorithms):
    """Fail fast on unknown algorithm names, before any simulation.

    Non-string entries (pre-built ConcurrencyControl instances) pass
    through; the engine validates those itself.
    """
    known = algorithm_names()
    unknown = [
        name for name in algorithms
        if isinstance(name, str) and name not in known
    ]
    if unknown:
        raise ValueError(
            f"unknown concurrency control algorithm(s) "
            f"{sorted(unknown)}; choose from {known}"
        )


def run_sweep(config, run=None, mpls=None, algorithms=None, seed=None,
              progress=None, deadline=None, stall_timeout=None,
              retries=0, checkpoint=None, resume=False):
    """Run every (algorithm, mpl) point of ``config``.

    ``mpls``/``algorithms`` restrict the sweep (benchmarks use a subset
    of the paper's seven mpl points to stay fast). ``progress`` is an
    optional callable invoked with a status line after each point
    (``print`` and logging functions both work).

    Resilience controls (all off by default, preserving the classic
    all-or-nothing behavior):

    * ``deadline`` — wall-clock seconds allowed per point attempt
      (checked at batch boundaries); exceeding it fails the attempt
      with :class:`PointDeadlineExceeded`.
    * ``stall_timeout`` — *simulated* seconds without a single commit
      before the attempt fails with :class:`SimulationStalledError`.
    * ``retries`` — extra attempts per point after a supervised
      failure, each reseeded (``seed + k * RESEED_STRIDE``). A point
      that exhausts its attempts is recorded as ``failed`` in
      ``SweepResult.statuses`` and the sweep continues.
    * ``checkpoint`` — path of a JSONL checkpoint file; every completed
      point (failed ones included) is flushed to it immediately. With
      ``resume=True`` an existing checkpoint's points are loaded and
      skipped, so only the missing ones simulate; without ``resume`` an
      existing file is truncated and the sweep starts fresh.

    Only supervised failures (watchdog trips and simulation
    pathologies such as the engine's zero-delay restart livelock
    detector) are degraded to per-point statuses; configuration errors
    (unknown algorithm, invalid parameters) still raise immediately.
    """
    run = run or DEFAULT_RUN
    if seed is not None:
        run = run.with_changes(seed=seed)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if deadline is not None and deadline <= 0:
        raise ValueError(f"deadline must be > 0, got {deadline}")
    if stall_timeout is not None and stall_timeout <= 0:
        raise ValueError(
            f"stall_timeout must be > 0, got {stall_timeout}"
        )
    mpls = tuple(mpls) if mpls is not None else config.mpls
    algorithms = (
        tuple(algorithms) if algorithms is not None else config.algorithms
    )
    _validate_algorithms(algorithms)

    sweep = SweepResult(config=config, run=run)
    ckpt = None
    if checkpoint is not None:
        # Imported lazily: persistence imports this module for the
        # result containers.
        from repro.experiments.persistence import SweepCheckpoint

        ckpt = SweepCheckpoint(checkpoint, config, run)
        if resume and ckpt.exists():
            restored = ckpt.load_into(sweep)
            if progress is not None and restored:
                progress(
                    f"  {config.experiment_id}: resumed {restored} "
                    f"point(s) from {checkpoint}"
                )
        else:
            ckpt.start_fresh()

    started = time.perf_counter()
    supervised = deadline is not None or stall_timeout is not None
    for algorithm in algorithms:
        for mpl in mpls:
            key = (algorithm, mpl)
            if key in sweep.statuses:
                continue  # restored from the checkpoint
            point_started = time.perf_counter()
            result = None
            failure = None
            attempts = 0
            for attempt in range(retries + 1):
                attempts += 1
                attempt_run = run if attempt == 0 else run.with_changes(
                    seed=run.seed + attempt * RESEED_STRIDE
                )
                watchdog = (
                    _PointWatchdog(deadline, stall_timeout)
                    if supervised else None
                )
                try:
                    result = run_simulation(
                        config.params_for(mpl),
                        algorithm=algorithm,
                        run=attempt_run,
                        batch_callback=watchdog,
                    )
                    break
                except (PointExecutionError, RuntimeError) as error:
                    failure = error
                    if progress is not None:
                        outcome = (
                            "retrying" if attempt < retries
                            else "giving up"
                        )
                        progress(
                            f"  {config.experiment_id}: {algorithm} "
                            f"mpl={mpl} attempt {attempts} failed "
                            f"({error}); {outcome}"
                        )
            wall = time.perf_counter() - point_started
            error_text = (
                f"{type(failure).__name__}: {failure}"
                if failure is not None else None
            )
            if result is not None:
                sweep.results[key] = result
                status = PointStatus(
                    status=STATUS_OK if attempts == 1 else STATUS_RETRIED,
                    attempts=attempts,
                    error=error_text,
                    wall_seconds=wall,
                )
                if progress is not None:
                    progress(
                        f"  {config.experiment_id}: {result.describe()}"
                    )
            else:
                status = PointStatus(
                    status=STATUS_FAILED,
                    attempts=attempts,
                    error=error_text,
                    wall_seconds=wall,
                )
            sweep.statuses[key] = status
            if ckpt is not None:
                ckpt.record(algorithm, mpl, result, status)
    sweep.wall_seconds = time.perf_counter() - started
    return sweep


def print_progress(line):
    """Default progress sink: stderr, flushed (safe under pytest -s)."""
    print(line, file=sys.stderr, flush=True)
