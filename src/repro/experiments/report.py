"""ASCII rendering of experiment results: tables and line plots.

The paper presents its results as throughput/utilization/response-time
curves over the multiprogramming level; these helpers render the same
series as fixed-width tables and quick terminal plots so every figure
can be "looked at" without matplotlib (which is unavailable offline).
"""

#: Display names for output variables, matching the paper's axis labels.
METRIC_LABELS = {
    "throughput": "Throughput (transactions/second)",
    "response_time": "Mean Response Time (seconds)",
    "response_time_std": "Std. Dev. of Response Time (seconds)",
    "block_ratio": "Blocked / Commit (block ratio)",
    "restart_ratio": "Restarts / Commit (restart ratio)",
    "disk_util": "Total Disk Utilization",
    "disk_util_useful": "Useful Disk Utilization",
    "cpu_util": "Total CPU Utilization",
    "cpu_util_useful": "Useful CPU Utilization",
    "avg_active": "Average Number of Active Transactions",
    "avg_ready_queue": "Average Ready-Queue Length",
    "commits": "Commits per Batch",
}


def metric_label(metric):
    return METRIC_LABELS.get(metric, metric)


def format_table(sweep, metric, with_ci=False):
    """A fixed-width table: rows = mpl, columns = algorithms."""
    algorithms = sweep.algorithms()
    mpls = sweep.mpls()
    width = 22 if with_ci else 12
    header = "mpl".rjust(5) + "".join(
        alg.rjust(width) for alg in algorithms
    )
    lines = [metric_label(metric), header, "-" * len(header)]
    for mpl in mpls:
        cells = []
        for algorithm in algorithms:
            result = sweep.results.get((algorithm, mpl))
            if result is None:
                cells.append("-".rjust(width))
                continue
            if with_ci:
                ci = result.interval(metric)
                cells.append(
                    f"{ci.mean:9.3f} ±{ci.half_width:6.3f}".rjust(width)
                )
            else:
                cells.append(f"{result.mean(metric):12.3f}")
        lines.append(f"{mpl:5d}" + "".join(cells))
    return "\n".join(lines)


def ascii_plot(sweep, metric, height=14, width=64):
    """A rough terminal line plot of ``metric`` vs mpl, one mark per
    algorithm (first letter of the algorithm's name, uppercased; ``*``
    where series overlap)."""
    algorithms = sweep.algorithms()
    mpls = sweep.mpls()
    if not algorithms or not mpls:
        return "(no data)"
    series = {
        alg: dict(
            (mpl, value) for mpl, value, _ in sweep.series(metric, alg)
        )
        for alg in algorithms
    }
    values = [
        value for per_alg in series.values() for value in per_alg.values()
    ]
    top = max(values) if values else 1.0
    if top <= 0.0:
        top = 1.0
    grid = [[" "] * width for _ in range(height)]
    x_positions = {
        mpl: int(round(index * (width - 1) / max(1, len(mpls) - 1)))
        for index, mpl in enumerate(mpls)
    }
    for alg in algorithms:
        mark = alg[0].upper()
        for mpl, value in series[alg].items():
            x = x_positions[mpl]
            y = height - 1 - int(round((value / top) * (height - 1)))
            y = min(max(y, 0), height - 1)
            grid[y][x] = "*" if grid[y][x] not in (" ", mark) else mark
    axis = "+" + "-" * width
    labels = " " * 1 + "".join(
        str(mpl).ljust(
            (x_positions[mpls[i + 1]] - x_positions[mpl])
            if i + 1 < len(mpls) else width - x_positions[mpl]
        )
        for i, mpl in enumerate(mpls)
    )
    legend = "  ".join(f"{alg[0].upper()}={alg}" for alg in algorithms)
    lines = [f"{metric_label(metric)}   (max={top:.3f})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append(axis)
    lines.append(labels)
    lines.append(legend)
    return "\n".join(lines)


def conflict_ratio_table(sweep):
    """Paper-style conflict diagnostics: blocks and restarts per commit.

    The batch-means tables above report per-batch *means*; this table
    reports the whole-run ratios from each point's cumulative totals
    (warmup included), which is how the paper discusses its blocking
    and restart behavior ("the blocking algorithm ... blocked roughly
    N times per commit").  Points whose totals are unavailable (e.g. a
    sweep document saved before totals existed) render as ``-``.
    """
    algorithms = sweep.algorithms()
    mpls = sweep.mpls()
    width = 20
    header = "mpl".rjust(5) + "".join(
        alg.rjust(width) for alg in algorithms
    )
    lines = [
        "Conflict ratios (whole run): blocks/commit  restarts/commit",
        header,
        "-" * len(header),
    ]
    for mpl in mpls:
        cells = []
        for algorithm in algorithms:
            result = sweep.results.get((algorithm, mpl))
            totals = result.totals if result is not None else {}
            commits = totals.get("commits")
            if not commits:
                cells.append("-".rjust(width))
                continue
            blocks = totals.get("blocks", 0) / commits
            restarts = totals.get("restarts", 0) / commits
            cells.append(f"{blocks:8.2f}  {restarts:8.2f}".rjust(width))
        lines.append(f"{mpl:5d}" + "".join(cells))
    return "\n".join(lines)


def buffer_hit_table(sweep):
    """Buffer-pool diagnostics: whole-run hit ratio per point.

    Rendered only for sweeps whose points carry buffer statistics in
    their totals (the ``buffered`` resource model); returns None
    otherwise so classic reports are unchanged.
    """
    algorithms = sweep.algorithms()
    mpls = sweep.mpls()
    if not any(
        (result.totals or {}).get("buffer")
        for result in sweep.results.values()
    ):
        return None
    width = 20
    header = "mpl".rjust(5) + "".join(
        alg.rjust(width) for alg in algorithms
    )
    lines = [
        "Buffer pool (whole run): hit ratio  (hits/probes)",
        header,
        "-" * len(header),
    ]
    for mpl in mpls:
        cells = []
        for algorithm in algorithms:
            result = sweep.results.get((algorithm, mpl))
            totals = result.totals if result is not None else {}
            buffer = totals.get("buffer") or {}
            hits = buffer.get("hits", 0)
            misses = buffer.get("misses", 0)
            probes = hits + misses
            if not probes:
                cells.append("-".rjust(width))
                continue
            cells.append(
                f"{hits / probes:6.1%}  ({hits}/{probes})".rjust(width)
            )
        lines.append(f"{mpl:5d}" + "".join(cells))
    return "\n".join(lines)


def _resource_model_line(sweep):
    """One-line resource-model label for the report header (or None)."""
    params = getattr(sweep.config, "params", None)
    model = getattr(params, "resource_model", "classic")
    if model == "classic":
        return None
    detail = ""
    if model == "buffered":
        if params.buffer_policy == "fixed":
            detail = f" (fixed hit ratio {params.buffer_hit_ratio})"
        else:
            capacity = (
                params.buffer_capacity
                if params.buffer_capacity is not None
                else max(1, params.db_size // 10)
            )
            detail = f" (LRU, {capacity} pages)"
    elif model == "skewed_disks":
        detail = f" ({params.disk_placement} placement)"
    return f"[resource model: {model}{detail}]"


def sweep_report(sweep, with_plots=True):
    """Full textual report of one experiment sweep."""
    config = sweep.config
    lines = ["=" * 72, config.title]
    if config.figures:
        lines.append(
            "(regenerates paper figure(s) "
            f"{', '.join(map(str, config.figures))})"
        )
    lines.append("=" * 72)
    model_line = _resource_model_line(sweep)
    if model_line:
        lines.append(model_line)
    if config.notes:
        lines.append(config.notes)
        lines.append("")
    for metric in config.metrics:
        lines.append(format_table(sweep, metric, with_ci=True))
        lines.append("")
        if with_plots:
            lines.append(ascii_plot(sweep, metric))
            lines.append("")
    lines.append(conflict_ratio_table(sweep))
    lines.append("")
    buffer_table = buffer_hit_table(sweep)
    if buffer_table is not None:
        lines.append(buffer_table)
        lines.append("")
    failed = sweep.failed_points()
    if failed:
        lines.append("FAILED POINTS (excluded from tables above):")
        for algorithm, mpl in failed:
            status = sweep.status(algorithm, mpl)
            lines.append(
                f"  {algorithm} mpl={mpl}: {status.error} "
                f"(after {status.attempts} attempt(s))"
            )
        lines.append("")
    lines.append(
        f"[swept {len(sweep.results)} configurations in "
        f"{sweep.wall_seconds:.1f}s wall time; "
        f"{sweep.run.batches} batches x {sweep.run.batch_time:.0f}s]"
    )
    return "\n".join(lines)
