"""Figure builders: one function per paper figure (Figures 3-21).

Each ``figureN`` runs (or reuses) the owning experiment's sweep and
returns a :class:`FigureData` holding exactly the series the paper
plots. Sweeps are cached per (experiment, run-config) within a
:class:`FigureBuilder`, so requesting Figures 5, 6 and 7 — which share
Experiment 2's sweep — simulates once.
"""

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.experiments.configs import FIGURE_INDEX, experiment_configs
from repro.experiments.report import metric_label
from repro.experiments.runner import DEFAULT_RUN, run_sweep


@dataclass
class FigureData:
    """The data behind one paper figure."""

    figure: int
    title: str
    experiment_id: str
    #: metric -> algorithm -> [(mpl, mean, ci)]
    series: Dict[str, Dict[str, List[Tuple]]] = field(default_factory=dict)
    sweep: object = None

    def algorithms(self):
        for per_alg in self.series.values():
            return sorted(per_alg)
        return []

    def values(self, metric, algorithm):
        """[(mpl, mean)] without the confidence intervals."""
        return [
            (mpl, mean) for mpl, mean, _ in self.series[metric][algorithm]
        ]

    def peak(self, metric, algorithm):
        """(mpl, value) of the series' maximum."""
        points = self.values(metric, algorithm)
        return max(points, key=lambda p: p[1])

    def describe(self):
        lines = [f"Figure {self.figure}: {self.title}"]
        for metric, per_alg in self.series.items():
            lines.append(f"  {metric_label(metric)}")
            for algorithm, points in sorted(per_alg.items()):
                rendered = ", ".join(
                    f"{mpl}:{mean:.3f}" for mpl, mean, _ in points
                )
                lines.append(f"    {algorithm:18s} {rendered}")
        return "\n".join(lines)


#: Paper figure captions (titles of Figures 3-21).
FIGURE_TITLES = {
    3: "Throughput (Infinite Resources, Low Conflict)",
    4: "Throughput (1 CPU, 2 Disks, Low Conflict)",
    5: "Throughput (Infinite Resources)",
    6: "Conflict Ratios (Infinite Resources)",
    7: "Response Time (Infinite Resources)",
    8: "Throughput (1 CPU, 2 Disks)",
    9: "Disk Utilization (1 CPU, 2 Disks)",
    10: "Response Time (1 CPU, 2 Disks)",
    11: "Throughput (Adaptive Delays)",
    12: "Throughput (5 CPUs, 10 Disks)",
    13: "Disk Utilization (5 CPUs, 10 Disks)",
    14: "Throughput (25 CPUs, 50 Disks)",
    15: "Disk Utilization (25 CPUs, 50 Disks)",
    16: "Throughput (1 Second Internal Thinking)",
    17: "Disk Utilization (1 Second Internal Thinking)",
    18: "Throughput (5 Seconds Internal Thinking)",
    19: "Disk Utilization (5 Seconds Internal Thinking)",
    20: "Throughput (10 Seconds Internal Thinking)",
    21: "Disk Utilization (10 Seconds Internal Thinking)",
}


class FigureBuilder:
    """Builds paper figures, sharing sweeps across figures of one
    experiment.

    ``inject`` overlays a :class:`~repro.faults.FaultSpec` onto every
    experiment's parameters (the CLI's ``--inject``);
    ``resource_model`` overlays a resource-model registry name the same
    way (the CLI's ``--resource-model``); ``workload_model`` and
    ``workload_spec`` overlay a workload-model registry name and its
    option mapping (the CLI's ``--workload-model``/``--workload-spec``);
    ``nodes`` and ``commit_protocol`` overlay the multi-site topology
    (the CLI's ``--nodes``/``--commit-protocol``);
    ``checkpoint_dir``
    checkpoints each experiment's sweep to
    ``<dir>/<experiment_id>.ckpt.jsonl`` (created on demand); other
    ``sweep_options`` are forwarded to :func:`run_sweep` verbatim
    (deadline, retries, stall_timeout, resume, workers, and the
    observability options ``timeseries``/``trace``, ...), so the CLI's
    ``--workers`` process fan-out and ``--trace``/``--timeseries``
    instrumentation apply to every figure's sweep.
    """

    def __init__(self, run=None, mpls=None, algorithms=None, progress=None,
                 inject=None, resource_model=None, workload_model=None,
                 workload_spec=None, nodes=None, commit_protocol=None,
                 checkpoint_dir=None,
                 **sweep_options):
        self.run = run or DEFAULT_RUN
        self.mpls = mpls
        self.algorithms = algorithms
        self.progress = progress
        self.inject = inject
        self.resource_model = resource_model
        self.workload_model = workload_model
        self.workload_spec = workload_spec
        self.nodes = nodes
        self.commit_protocol = commit_protocol
        self.checkpoint_dir = checkpoint_dir
        self.sweep_options = sweep_options
        self._configs = experiment_configs()
        self._sweeps = {}

    def checkpoint_path(self, experiment_id):
        """This experiment's checkpoint file (None without a dir)."""
        if self.checkpoint_dir is None:
            return None
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        return os.path.join(
            self.checkpoint_dir, f"{experiment_id}.ckpt.jsonl"
        )

    def config_for(self, experiment_id):
        """The experiment config, with any overlays applied."""
        config = self._configs[experiment_id]
        if self.inject is not None:
            config = replace(
                config, params=config.params.with_changes(faults=self.inject)
            )
        if self.resource_model is not None:
            config = replace(
                config,
                params=config.params.with_changes(
                    resource_model=self.resource_model
                ),
            )
        if self.workload_model is not None or self.workload_spec is not None:
            changes = {}
            if self.workload_model is not None:
                changes["workload_model"] = self.workload_model
            if self.workload_spec is not None:
                changes["workload_spec"] = self.workload_spec
            config = replace(
                config, params=config.params.with_changes(**changes)
            )
        if self.nodes is not None or self.commit_protocol is not None:
            changes = {}
            if self.nodes is not None:
                changes["nodes"] = self.nodes
            if self.commit_protocol is not None:
                changes["commit_protocol"] = self.commit_protocol
            config = replace(
                config, params=config.params.with_changes(**changes)
            )
        return config

    def sweep_for(self, experiment_id):
        """The (cached) sweep of one experiment."""
        if experiment_id not in self._sweeps:
            self._sweeps[experiment_id] = run_sweep(
                self.config_for(experiment_id),
                run=self.run,
                mpls=self.mpls,
                algorithms=self.algorithms,
                progress=self.progress,
                checkpoint=self.checkpoint_path(experiment_id),
                **self.sweep_options,
            )
        return self._sweeps[experiment_id]

    def figure(self, number):
        """Build the data behind paper figure ``number`` (3..21)."""
        if number not in FIGURE_INDEX:
            raise ValueError(
                f"the paper has figures 3..21; got {number}"
            )
        experiment_id, metrics = FIGURE_INDEX[number]
        sweep = self.sweep_for(experiment_id)
        data = FigureData(
            figure=number,
            title=FIGURE_TITLES[number],
            experiment_id=experiment_id,
            sweep=sweep,
        )
        for metric in metrics:
            data.series[metric] = {
                algorithm: sweep.series(metric, algorithm)
                for algorithm in sweep.algorithms()
            }
        return data

    def all_figures(self):
        """Every paper figure, in number order."""
        return [self.figure(number) for number in sorted(FIGURE_INDEX)]


def _single_figure(number, run=None, mpls=None, progress=None):
    builder = FigureBuilder(run=run, mpls=mpls, progress=progress)
    return builder.figure(number)


def _make_figure_function(number):
    def figure_function(run=None, mpls=None, progress=None):
        return _single_figure(number, run=run, mpls=mpls, progress=progress)

    figure_function.__name__ = f"figure{number}"
    figure_function.__doc__ = (
        f"Regenerate paper Figure {number}: {FIGURE_TITLES[number]}.\n\n"
        "Pass a RunConfig as ``run`` to control batch count/length and\n"
        "``mpls`` to restrict the multiprogramming-level sweep.\n"
        "Returns a FigureData."
    )
    return figure_function


# figure3 .. figure21, generated against FIGURE_INDEX so the set of
# public builders provably matches the paper's figure list.
for _number in sorted(FIGURE_INDEX):
    globals()[f"figure{_number}"] = _make_figure_function(_number)
del _number

__all__ = ["FigureBuilder", "FigureData", "FIGURE_TITLES"] + [
    f"figure{number}" for number in sorted(FIGURE_INDEX)
]
