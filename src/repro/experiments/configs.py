"""Experiment presets: one config per paper experiment/figure.

Every figure in the paper's evaluation (Figures 3-21) maps to an
:class:`ExperimentConfig` here; the figure builders in
:mod:`repro.experiments.figures` run the sweep and extract the plotted
series. Table 2's base settings come from
:meth:`repro.core.SimulationParameters.table2`.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cc import PAPER_ALGORITHMS
from repro.core import (
    DELAY_MODE_ADAPTIVE_ALL,
    PAPER_MPLS,
    SimulationParameters,
)
from repro.faults import DiskFaultSpec, FaultSpec


@dataclass(frozen=True)
class ExperimentConfig:
    """One sweep: parameters x algorithms x multiprogramming levels."""

    experiment_id: str
    title: str
    #: Which paper figures this sweep regenerates.
    figures: Tuple[int, ...]
    params: SimulationParameters
    algorithms: Tuple[str, ...] = PAPER_ALGORITHMS
    mpls: Tuple[int, ...] = PAPER_MPLS
    #: The output variables the figures plot.
    metrics: Tuple[str, ...] = ("throughput",)
    notes: str = ""

    def params_for(self, mpl):
        return self.params.with_changes(mpl=mpl)


def _table2(**overrides):
    return SimulationParameters.table2(**overrides)


def experiment_configs():
    """All experiment presets keyed by experiment id."""
    configs = [
        ExperimentConfig(
            experiment_id="exp1_low_conflict_infinite",
            title="Experiment 1: Low Conflict (Infinite Resources)",
            figures=(3,),
            params=_table2(db_size=10_000, num_cpus=None, num_disks=None),
            metrics=("throughput",),
            notes=(
                "db_size=10,000 makes conflicts rare; all three "
                "algorithms should be close (Figure 3)."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp1_low_conflict_finite",
            title="Experiment 1: Low Conflict (1 CPU, 2 Disks)",
            figures=(4,),
            params=_table2(db_size=10_000),
            metrics=("throughput",),
            notes=(
                "Finite-resource low-conflict case; blocking slightly "
                "ahead (Figure 4)."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp2_infinite",
            title="Experiment 2: Infinite Resources",
            figures=(5, 6, 7),
            params=_table2(num_cpus=None, num_disks=None),
            metrics=(
                "throughput",
                "block_ratio",
                "restart_ratio",
                "response_time",
                "response_time_std",
            ),
            notes=(
                "Optimistic keeps climbing; blocking thrashes from "
                "blocking (not restarts); immediate-restart plateaus "
                "(Figures 5-7)."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp3_finite",
            title="Experiment 3: Resource-Limited (1 CPU, 2 Disks)",
            figures=(8, 9, 10),
            params=_table2(),
            metrics=(
                "throughput",
                "disk_util",
                "disk_util_useful",
                "response_time",
                "response_time_std",
            ),
            notes=(
                "Blocking peaks highest (paper: at mpl=25, disks ~97% "
                "total / ~92% useful); restart strategies peak at "
                "mpl=10 (Figures 8-10)."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp3_adaptive_delay",
            title="Experiment 3: Adaptive Restart Delays for All",
            figures=(11,),
            params=_table2(restart_delay_mode=DELAY_MODE_ADAPTIVE_ALL),
            metrics=("throughput",),
            notes=(
                "Adding the adaptive restart delay to blocking and "
                "optimistic arrests thrashing; blocking emerges the "
                "clear winner (Figure 11)."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp4_5cpu_10disk",
            title="Experiment 4: Multiple Resources (5 CPUs, 10 Disks)",
            figures=(12, 13),
            params=_table2(num_cpus=5, num_disks=10),
            metrics=("throughput", "disk_util", "disk_util_useful"),
            notes=(
                "Similar shape to 1 CPU/2 disks; blocking still has the "
                "best peak (Figures 12-13)."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp4_25cpu_50disk",
            title="Experiment 4: Multiple Resources (25 CPUs, 50 Disks)",
            figures=(14, 15),
            params=_table2(num_cpus=25, num_disks=50),
            metrics=("throughput", "disk_util", "disk_util_useful"),
            notes=(
                "With utilizations in the 30% range the system behaves "
                "like infinite resources: optimistic's best throughput "
                "edges past blocking's (Figures 14-15)."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp5_think_1s",
            title="Experiment 5: Interactive (1 s Internal Think)",
            figures=(16, 17),
            params=_table2(int_think_time=1.0, ext_think_time=3.0),
            metrics=("throughput", "disk_util", "disk_util_useful"),
            notes="Blocking still best at 1 s think time (Figure 16).",
        ),
        ExperimentConfig(
            experiment_id="exp5_think_5s",
            title="Experiment 5: Interactive (5 s Internal Think)",
            figures=(18, 19),
            params=_table2(int_think_time=5.0, ext_think_time=11.0),
            metrics=("throughput", "disk_util", "disk_util_useful"),
            notes="Optimistic overtakes blocking at 5 s (Figure 18).",
        ),
        ExperimentConfig(
            experiment_id="exp6_disk_faults",
            title="Experiment 6: Disk Failures (Blocking vs. Optimistic)",
            figures=(),
            params=_table2(
                faults=FaultSpec(disk=DiskFaultSpec(mttf=60.0, mttr=5.0))
            ),
            algorithms=("blocking", "optimistic"),
            metrics=("throughput", "disk_util", "restart_ratio"),
            notes=(
                "Beyond the paper: Table 2 resources, but each disk "
                "crashes about once a minute (MTTF 60 s) and repairs in "
                "~5 s. Downtime stalls the failed disk's queue, so "
                "lock-holding transactions wait and contention spreads; "
                "the blocking-vs-optimistic verdict is re-examined with "
                "availability in the picture."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp7_buffered",
            title="Experiment 7: Buffer Pool (LRU, 25% of the Database)",
            figures=(),
            params=_table2(
                resource_model="buffered", buffer_capacity=250
            ),
            metrics=("throughput", "disk_util", "response_time"),
            notes=(
                "Beyond the paper: Table 2 resources behind an LRU "
                "buffer pool of 250 pages (a quarter of the database). "
                "Re-read hits skip the disk entirely, so the effective "
                "I/O per transaction falls with the hit ratio and the "
                "finite-resource verdict drifts toward the "
                "infinite-resource one; the report's buffer table "
                "shows the realized hit ratio per point."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp8_skewed_disks",
            title="Experiment 8: Hot Spindles (Skewed Placement + Hotspot)",
            figures=(),
            params=_table2(
                resource_model="skewed_disks",
                hot_fraction=0.1,
                hot_access_prob=0.5,
            ),
            metrics=("throughput", "disk_util", "restart_ratio"),
            notes=(
                "Beyond the paper: the Section 6.2 hotspot workload "
                "(50% of accesses to 10% of the data) on contiguous "
                "object-to-disk placement, so the hot data lives on one "
                "spindle and data skew becomes resource skew. Compare "
                "against exp3_finite (classic placement spreads the "
                "same accesses uniformly)."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp9_open_poisson",
            title="Experiment 9: Open Poisson Arrivals (Table 2 Resources)",
            figures=(),
            params=_table2(
                workload_model="open_poisson",
                workload_spec={"rate": 5.0},
            ),
            metrics=("throughput", "response_time"),
            notes=(
                "Beyond the paper: the paper's closed terminal pool "
                "replaced by open Poisson arrivals at 5.0 tx/s — "
                "inside blocking's capacity at every mpl up to 100 "
                "but above the restart algorithms' capacity from "
                "mpl=25 — with mpl acting as an admission cap "
                "instead of a population size. Points whose capacity "
                "falls below the offered load saturate (the backlog "
                "diverges); the open-system totals and the stability "
                "detector flag them, so the mpl axis reads as 'can "
                "this algorithm carry the offered load at this cap', "
                "not 'where does throughput peak'."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp10_heavy_tailed",
            title="Experiment 10: Heavy-Tailed Workload (web_sessions)",
            figures=(),
            params=_table2(
                workload_model="heavy_tailed",
                workload_spec={"preset": "web_sessions"},
            ),
            metrics=(
                "throughput",
                "restart_ratio",
                "response_time",
                "response_time_std",
            ),
            notes=(
                "Beyond the paper: the exponential think times and "
                "uniform transaction sizes replaced by the "
                "web_sessions preset (lognormal think, CV 3; Pareto "
                "sizes, shape 1.5). Rare huge transactions hold locks "
                "(or optimistic read sets) far longer than the uniform "
                "model ever produces, so conflict-ratio and "
                "variance-of-response conclusions drawn from the "
                "uniform workload are re-examined under a realistic "
                "tail."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp11_sharded",
            title="Experiment 11: Sharded Multi-Site (4 Nodes, 2PC)",
            figures=(),
            params=_table2(
                resource_model="distributed",
                nodes=4,
                network_delay=0.005,
                commit_protocol="2pc",
            ),
            metrics=("throughput", "restart_ratio", "response_time"),
            notes=(
                "Beyond the paper: the Table 2 database sharded "
                "contiguously across 4 nodes (CPU and disks split "
                "evenly), every cross-node access charged an "
                "exponential 5 ms network leg, and every multi-node "
                "commit paying the two-phase-commit handshake (one "
                "prepare/vote round trip per remote participant plus "
                "a decision message) while its locks stay held. The "
                "question is whether the paper's single-site verdict "
                "— blocking beats restarts under finite resources — "
                "survives when the commit point itself stretches "
                "across a network. Compare against the same grid at "
                "nodes=1 (identical to classic) and N in {2, 8}."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp12_replica_reads",
            title="Experiment 12: Replicated Reads (4 Nodes, RF=2, 2PC)",
            figures=(),
            params=_table2(
                resource_model="distributed",
                nodes=4,
                network_delay=0.005,
                commit_protocol="2pc",
                replication_factor=2,
            ),
            metrics=("throughput", "restart_ratio", "response_time"),
            notes=(
                "Beyond the paper: exp11 plus a second copy of every "
                "object on the next node of the ring. Reads go to the "
                "nearest replica (often the home node itself, saving "
                "both network legs); writes install on every copy and "
                "drag the extra replica nodes into the 2PC "
                "participant set. The trade this sweep exposes: "
                "replication buys read locality but taxes the commit "
                "path, so write-heavy mixes can lose throughput to "
                "the same mechanism that speeds read-heavy ones."
            ),
        ),
        ExperimentConfig(
            experiment_id="exp5_think_10s",
            title="Experiment 5: Interactive (10 s Internal Think)",
            figures=(20, 21),
            params=_table2(int_think_time=10.0, ext_think_time=21.0),
            metrics=("throughput", "disk_util", "disk_util_useful"),
            notes="Optimistic clearly best at 10 s (Figure 20).",
        ),
    ]
    return {config.experiment_id: config for config in configs}


#: Figure number -> (experiment id, primary metric(s)).
FIGURE_INDEX: Dict[int, Tuple[str, Tuple[str, ...]]] = {
    3: ("exp1_low_conflict_infinite", ("throughput",)),
    4: ("exp1_low_conflict_finite", ("throughput",)),
    5: ("exp2_infinite", ("throughput",)),
    6: ("exp2_infinite", ("block_ratio", "restart_ratio")),
    7: ("exp2_infinite", ("response_time", "response_time_std")),
    8: ("exp3_finite", ("throughput",)),
    9: ("exp3_finite", ("disk_util", "disk_util_useful")),
    10: ("exp3_finite", ("response_time", "response_time_std")),
    11: ("exp3_adaptive_delay", ("throughput",)),
    12: ("exp4_5cpu_10disk", ("throughput",)),
    13: ("exp4_5cpu_10disk", ("disk_util", "disk_util_useful")),
    14: ("exp4_25cpu_50disk", ("throughput",)),
    15: ("exp4_25cpu_50disk", ("disk_util", "disk_util_useful")),
    16: ("exp5_think_1s", ("throughput",)),
    17: ("exp5_think_1s", ("disk_util", "disk_util_useful")),
    18: ("exp5_think_5s", ("throughput",)),
    19: ("exp5_think_5s", ("disk_util", "disk_util_useful")),
    20: ("exp5_think_10s", ("throughput",)),
    21: ("exp5_think_10s", ("disk_util", "disk_util_useful")),
}
