"""Structured error taxonomy for resilient experiment execution.

Everything the hardened sweep runner can report sits under
:class:`ExperimentError`, so callers distinguish "this sweep point went
bad" (catchable, degradable) from programming errors (which propagate).

Hierarchy::

    ExperimentError
    ├── PointExecutionError          one (algorithm, mpl) point went bad
    │   ├── SimulationStalledError   no commits for N simulated seconds
    │   ├── PointDeadlineExceeded    wall-clock budget exhausted
    │   ├── PointCancelledError      hung worker cancelled by the parent
    │   └── WorkerCrashError         worker process died mid-point
    └── CheckpointMismatchError      checkpoint belongs to another sweep
"""

__all__ = [
    "ExperimentError",
    "PointExecutionError",
    "SimulationStalledError",
    "PointDeadlineExceeded",
    "PointCancelledError",
    "WorkerCrashError",
    "CheckpointMismatchError",
]


class ExperimentError(Exception):
    """Base class for experiment-execution failures."""


class PointExecutionError(ExperimentError):
    """One sweep point failed (watchdog trip or simulation pathology)."""


class SimulationStalledError(PointExecutionError):
    """The livelock watchdog tripped: no commits for too long.

    Raised when a run produces no commit for ``stall_timeout``
    *simulated* seconds — the signature of a livelocked or pathological
    configuration (e.g. a CC algorithm that blocks every transaction
    forever while the clock idles forward on think-time events).
    """

    def __init__(self, stalled_for, simulated_time, commits):
        super().__init__(
            f"no commits for {stalled_for:.1f} simulated seconds "
            f"(t={simulated_time:.1f}, {commits} commits so far)"
        )
        self.stalled_for = stalled_for
        self.simulated_time = simulated_time
        self.commits = commits


class PointDeadlineExceeded(PointExecutionError):
    """One sweep point exceeded its wall-clock budget."""

    def __init__(self, elapsed, deadline):
        super().__init__(
            f"point exceeded its wall-clock deadline: "
            f"{elapsed:.4g}s elapsed > {deadline:.4g}s allowed"
        )
        self.elapsed = elapsed
        self.deadline = deadline


class PointCancelledError(PointExecutionError):
    """A parallel sweep point was cancelled by the parent's backstop.

    The in-worker watchdogs normally fail a bad point from inside the
    worker; this error covers the case they cannot — a worker wedged so
    hard it never reaches another batch boundary (a C-level hang, a
    livelocked event loop).  The parent terminates the worker process
    and records the point ``failed`` with this error's text.
    """

    def __init__(self, algorithm, mpl, backstop):
        super().__init__(
            f"point ({algorithm}, mpl={mpl}) cancelled: no sweep "
            f"progress within the {backstop:.4g}s parent backstop; "
            "its worker process was terminated"
        )
        self.algorithm = algorithm
        self.mpl = mpl
        self.backstop = backstop


class WorkerCrashError(PointExecutionError):
    """A sweep worker process died (segfault, OOM kill, ...).

    Carries the traceback text the executor observed, so the failure
    survives into ``PointStatus.error`` and the checkpoint instead of
    evaporating with the process.
    """

    def __init__(self, algorithm, mpl, traceback_text):
        super().__init__(
            f"point ({algorithm}, mpl={mpl}) lost: its worker process "
            f"crashed ({traceback_text.strip().splitlines()[-1]})"
        )
        self.algorithm = algorithm
        self.mpl = mpl
        self.traceback_text = traceback_text


class CheckpointMismatchError(ExperimentError):
    """A checkpoint file does not match the sweep being resumed.

    Resuming replays recorded points verbatim, so the experiment id and
    run configuration must match exactly; anything else would silently
    mix results from different settings.
    """
