"""Structured error taxonomy for resilient experiment execution.

Everything the hardened sweep runner can report sits under
:class:`ExperimentError`, so callers distinguish "this sweep point went
bad" (catchable, degradable) from programming errors (which propagate).

Hierarchy::

    ExperimentError
    ├── PointExecutionError          one (algorithm, mpl) point went bad
    │   ├── SimulationStalledError   no commits for N simulated seconds
    │   ├── PointDeadlineExceeded    wall-clock budget exhausted
    │   ├── PointCancelledError      hung worker cancelled by the parent
    │   └── WorkerCrashError         worker process died mid-point
    └── CheckpointMismatchError      checkpoint belongs to another sweep
        └── CheckpointCorruptError   checkpoint header unreadable

Every class carries a ``severity`` — the supervision policy knob:

* ``"transient"`` — retrying the point with a fresh seed may succeed
  (stalls, deadline trips, crashed/cancelled workers). The runner's
  retry-with-backoff loop only ever consumes transient errors.
* ``"permanent"`` — retrying the same inputs cannot help (mismatched
  or corrupt checkpoints, bad configuration); surfaced immediately.
* ``"fatal"`` — the harness itself is compromised (used by invariant
  violations, which subclass ``AssertionError`` precisely so no retry
  or degradation path can swallow them).

:func:`error_severity` classifies arbitrary exceptions under the same
scheme so the runner can make one policy decision per failure.
"""

__all__ = [
    "ExperimentError",
    "PointExecutionError",
    "SimulationStalledError",
    "PointDeadlineExceeded",
    "PointCancelledError",
    "WorkerCrashError",
    "CheckpointMismatchError",
    "CheckpointCorruptError",
    "error_severity",
    "SEVERITIES",
]

#: The closed set of severity labels.
SEVERITIES = ("transient", "permanent", "fatal")


class ExperimentError(Exception):
    """Base class for experiment-execution failures."""

    #: Retry policy class attribute; see the module docstring.
    severity = "permanent"


class PointExecutionError(ExperimentError):
    """One sweep point failed (watchdog trip or simulation pathology)."""

    severity = "transient"


class SimulationStalledError(PointExecutionError):
    """The livelock watchdog tripped: no commits for too long.

    Raised when a run produces no commit for ``stall_timeout``
    *simulated* seconds — the signature of a livelocked or pathological
    configuration (e.g. a CC algorithm that blocks every transaction
    forever while the clock idles forward on think-time events).
    """

    def __init__(self, stalled_for, simulated_time, commits):
        super().__init__(
            f"no commits for {stalled_for:.1f} simulated seconds "
            f"(t={simulated_time:.1f}, {commits} commits so far)"
        )
        self.stalled_for = stalled_for
        self.simulated_time = simulated_time
        self.commits = commits


class PointDeadlineExceeded(PointExecutionError):
    """One sweep point exceeded its wall-clock budget."""

    def __init__(self, elapsed, deadline):
        super().__init__(
            f"point exceeded its wall-clock deadline: "
            f"{elapsed:.4g}s elapsed > {deadline:.4g}s allowed"
        )
        self.elapsed = elapsed
        self.deadline = deadline


class PointCancelledError(PointExecutionError):
    """A parallel sweep point was cancelled by the parent's backstop.

    The in-worker watchdogs normally fail a bad point from inside the
    worker; this error covers the case they cannot — a worker wedged so
    hard it never reaches another batch boundary (a C-level hang, a
    livelocked event loop).  The parent terminates the worker process
    and records the point ``failed`` with this error's text.
    """

    def __init__(self, algorithm, mpl, backstop):
        super().__init__(
            f"point ({algorithm}, mpl={mpl}) cancelled: no sweep "
            f"progress within the {backstop:.4g}s parent backstop; "
            "its worker process was terminated"
        )
        self.algorithm = algorithm
        self.mpl = mpl
        self.backstop = backstop


class WorkerCrashError(PointExecutionError):
    """A sweep worker process died (segfault, OOM kill, ...).

    Carries the traceback text the executor observed, so the failure
    survives into ``PointStatus.error`` and the checkpoint instead of
    evaporating with the process.
    """

    def __init__(self, algorithm, mpl, traceback_text):
        super().__init__(
            f"point ({algorithm}, mpl={mpl}) lost: its worker process "
            f"crashed ({traceback_text.strip().splitlines()[-1]})"
        )
        self.algorithm = algorithm
        self.mpl = mpl
        self.traceback_text = traceback_text


class CheckpointMismatchError(ExperimentError):
    """A checkpoint file does not match the sweep being resumed.

    Resuming replays recorded points verbatim, so the experiment id and
    run configuration must match exactly; anything else would silently
    mix results from different settings.
    """


class CheckpointCorruptError(CheckpointMismatchError):
    """A checkpoint's header is unreadable, so nothing is salvageable.

    Point-line corruption is *recoverable* (the loader salvages the
    valid prefix and repairs the file); losing the header line is not —
    the file cannot even be matched to a sweep. Subclasses
    :class:`CheckpointMismatchError` so existing handlers treat both
    the same way: stop and let the operator decide.
    """


def error_severity(error):
    """Classify an exception under the transient/permanent/fatal scheme.

    ``ExperimentError`` subclasses declare their own ``severity``.
    Outside the taxonomy, ``AssertionError`` (which includes invariant
    violations) and the interpreter-level emergencies are fatal;
    anything else is treated as permanent — an unknown error is not a
    license to retry.
    """
    if isinstance(error, ExperimentError):
        return error.severity
    if isinstance(error, (AssertionError, MemoryError, SystemExit,
                          KeyboardInterrupt)):
        return "fatal"
    return "permanent"
