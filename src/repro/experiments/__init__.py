"""The paper's evaluation: experiment presets, sweeps, figures, reports.

* :mod:`repro.experiments.configs` — Experiments 1-5 as presets; the
  figure index mapping paper Figures 3-21 to sweeps and metrics.
* :mod:`repro.experiments.runner` — algorithm x mpl sweep driver.
* :mod:`repro.experiments.figures` — ``figure3()`` .. ``figure21()``.
* :mod:`repro.experiments.report` — ASCII tables and plots.
* :mod:`repro.experiments.cli` — the ``repro-experiments`` command.
"""

from repro.experiments.configs import (
    FIGURE_INDEX,
    ExperimentConfig,
    experiment_configs,
)
from repro.experiments.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ExperimentError,
    PointCancelledError,
    PointDeadlineExceeded,
    PointExecutionError,
    SimulationStalledError,
    WorkerCrashError,
    error_severity,
)
from repro.experiments.figures import FIGURE_TITLES, FigureBuilder, FigureData
from repro.experiments.export import (
    rows_to_csv_text,
    sweep_to_rows,
    timeseries_to_rows,
    write_csv,
    write_timeseries_csv,
)
from repro.experiments.persistence import (
    SweepCheckpoint,
    load_sweep,
    save_sweep,
    verify_checkpoint,
)
from repro.experiments.report import (
    ascii_plot,
    conflict_ratio_table,
    format_table,
    sweep_report,
)
from repro.experiments.runner import (
    DEFAULT_RUN,
    QUICK_RUN,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
    PointStatus,
    PointTrace,
    SweepResult,
    point_seed,
    retry_backoff,
    run_sweep,
)

__all__ = [
    "ExperimentConfig",
    "experiment_configs",
    "FIGURE_INDEX",
    "FIGURE_TITLES",
    "FigureBuilder",
    "FigureData",
    "run_sweep",
    "SweepResult",
    "DEFAULT_RUN",
    "QUICK_RUN",
    "format_table",
    "ascii_plot",
    "sweep_report",
    "sweep_to_rows",
    "write_csv",
    "rows_to_csv_text",
    "timeseries_to_rows",
    "write_timeseries_csv",
    "conflict_ratio_table",
    "PointTrace",
    "save_sweep",
    "load_sweep",
    "SweepCheckpoint",
    "PointStatus",
    "STATUS_OK",
    "STATUS_RETRIED",
    "STATUS_FAILED",
    "ExperimentError",
    "PointExecutionError",
    "SimulationStalledError",
    "PointDeadlineExceeded",
    "PointCancelledError",
    "WorkerCrashError",
    "CheckpointMismatchError",
    "CheckpointCorruptError",
    "error_severity",
    "verify_checkpoint",
    "point_seed",
    "retry_backoff",
]
