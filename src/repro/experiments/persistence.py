"""Saving and reloading experiment sweeps, and sweep checkpoints.

Full-fidelity sweeps take real time; this module persists everything a
report or shape-check needs — the per-batch values of every output
variable at every (algorithm, mpl) point — as a single JSON document,
and reconstructs a :class:`~repro.experiments.runner.SweepResult` whose
results answer ``mean``/``interval``/``describe`` exactly like live
ones (they are rebuilt on real ``BatchMeansAnalyzer``s).

    sweep = run_sweep(config, run=RunConfig(batches=20, batch_time=120))
    save_sweep(sweep, "exp3.json")
    ...
    sweep = load_sweep("exp3.json")   # plot/report without resimulating

:class:`SweepCheckpoint` is the incremental sibling used by the
resilient runner: an append-only JSONL file holding one header line
plus one line per completed point (failed points included, so their
statuses survive), flushed and fsynced as each point finishes.  Point
lines may appear in *any* order — a parallel sweep's parent flushes
them in completion order, which varies with worker scheduling — and
:meth:`SweepCheckpoint.load_into` keys them by (algorithm, mpl), so a
checkpoint written with ``workers=N`` resumes identically to one
written sequentially.  A sweep killed mid-flight resumes by loading
the checkpoint and re-running only the missing points::

    run_sweep(config, checkpoint="exp3.ckpt.jsonl")            # killed...
    run_sweep(config, checkpoint="exp3.ckpt.jsonl", resume=True)

Crash safety (format v2):

* Whole-file writes (:func:`save_sweep`, the checkpoint header) go
  through :func:`atomic_write_text` — tmp file in the same directory,
  flush + fsync, then ``os.replace`` — so a kill mid-write can never
  destroy the previous good file, and an fsync failure abandons the
  tmp file instead of publishing unsynced data.
* Every checkpoint line carries a CRC32 suffix
  (``<json>\\t#crc32:<8 hex>``). Loading salvages the longest valid
  prefix: the first torn, garbled or CRC-mismatched line ends the
  salvage, everything before it is restored, and (on resume) the file
  is repaired by truncating the corrupt tail so subsequent appends
  start on a clean line boundary.
* :func:`verify_checkpoint` is the read-only auditor behind the CLI's
  ``--verify-checkpoint``: it reports the salvageable prefix without
  modifying the file.

Legacy v1 checkpoints (no CRC suffixes) still load; their lines are
validated by JSON decoding alone.
"""

import binascii
import json
import os
from dataclasses import asdict

from repro.core import RunConfig
from repro.core.simulation import SimulationResult
from repro.experiments.configs import experiment_configs
from repro.experiments.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
)
from repro.experiments.runner import PointStatus, SweepResult
from repro.stats import BatchMeansAnalyzer

#: Format marker for forward compatibility.
FORMAT = "repro-sweep-v1"

#: Format marker of the incremental checkpoint file (v2 = CRC lines).
CHECKPOINT_FORMAT = "repro-sweep-checkpoint-v2"

#: Older checkpoint formats load_into still accepts (without CRCs).
LEGACY_CHECKPOINT_FORMATS = ("repro-sweep-checkpoint-v1",)

#: Separator between a line's JSON payload and its CRC32 suffix.
CRC_SEPARATOR = "\t#crc32:"

#: Seam for fault injection (repro.chaos.FlakyFsync) and tests.
_fsync = os.fsync


def atomic_write_text(path, text):
    """Write ``text`` to ``path`` atomically (tmp + fsync + replace).

    The tmp file lives in the target's directory so the final
    ``os.replace`` is a same-filesystem rename — atomic on POSIX. A
    crash or fsync failure at any earlier step leaves ``path``
    untouched (the tmp file is removed best-effort and the error
    propagates).
    """
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w") as f:
            f.write(text)
            f.flush()
            _fsync(f.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def encode_checkpoint_line(document):
    """One checkpoint line: compact JSON plus its CRC32 suffix."""
    text = json.dumps(document)
    crc = binascii.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{text}{CRC_SEPARATOR}{crc:08x}\n"


def decode_checkpoint_line(raw, require_crc=True):
    """Parse one checkpoint line, verifying its CRC32 suffix.

    Raises ``ValueError`` on a CRC mismatch, undecodable JSON, or (with
    ``require_crc``) a missing suffix. ``require_crc=False`` accepts
    bare JSON lines — the legacy v1 layout.
    """
    raw = raw.rstrip("\n")
    text, separator, suffix = raw.rpartition(CRC_SEPARATOR)
    if not separator:
        if require_crc:
            raise ValueError("checkpoint line has no CRC32 suffix")
        return json.loads(raw)
    try:
        expected = int(suffix, 16)
    except ValueError:
        raise ValueError(
            f"malformed CRC32 suffix {suffix!r}"
        ) from None
    actual = binascii.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise ValueError(
            f"CRC32 mismatch: line says {expected:08x}, "
            f"content is {actual:08x}"
        )
    return json.loads(text)


def _point_payload(result):
    """The serializable measurement payload of one successful point.

    ``diagnostics`` (per-point observability: sampled time-series,
    trace-file pointers) is included only when present, so documents
    written without observability are byte-identical to the v1 layout
    and old readers simply ignore the extra key.
    """
    payload = {
        "series": {
            name: result.analyzer.series(name).values
            for name in result.analyzer.names()
        },
        "totals": _jsonable(result.totals),
    }
    if result.diagnostics is not None:
        payload["diagnostics"] = _jsonable(result.diagnostics)
    return payload


def _rebuild_result(algorithm, mpl, series, totals, config, run,
                    diagnostics=None):
    """Reconstruct a SimulationResult from its saved batch series."""
    analyzer = BatchMeansAnalyzer(
        warmup_batches=0, confidence=run.confidence
    )
    length = max((len(v) for v in series.values()), default=0)
    for index in range(length):
        analyzer.record({
            name: values[index]
            for name, values in series.items()
            if index < len(values)
        })
    return SimulationResult(
        algorithm=algorithm,
        params=config.params_for(mpl),
        run=run,
        analyzer=analyzer,
        totals=totals or {},
        diagnostics=diagnostics,
    )


def _status_document(status):
    return {
        "status": status.status,
        "attempts": status.attempts,
        "error": status.error,
        "wall_seconds": status.wall_seconds,
    }


def _status_from_document(document):
    return PointStatus(
        status=document["status"],
        attempts=document.get("attempts", 1),
        error=document.get("error"),
        wall_seconds=document.get("wall_seconds", 0.0),
    )


def save_sweep(sweep, path):
    """Serialize a sweep (config id, run settings, all batch series).

    The write is atomic: a kill mid-save leaves any previous file at
    ``path`` exactly as it was.
    """
    if sweep.replications == 1:
        # The historical layout, byte-identical to earlier versions
        # (and correct for hand-assembled sweeps that only populate
        # ``results``/``statuses``).
        points = [
            {
                "algorithm": algorithm,
                "mpl": mpl,
                **_point_payload(result),
            }
            for (algorithm, mpl), result in sorted(sweep.results.items())
        ]
        statuses = [
            {
                "algorithm": algorithm,
                "mpl": mpl,
                **_status_document(status),
            }
            for (algorithm, mpl), status in sorted(sweep.statuses.items())
        ]
    else:
        points = []
        for (algorithm, mpl), reps in sorted(sweep.replicates.items()):
            for rep in sorted(reps):
                entry = {"algorithm": algorithm, "mpl": mpl}
                if rep:
                    entry["rep"] = rep
                entry.update(_point_payload(reps[rep]))
                points.append(entry)
        statuses = []
        for (algorithm, mpl, rep) in sorted(sweep.replicate_statuses):
            entry = {"algorithm": algorithm, "mpl": mpl}
            if rep:
                entry["rep"] = rep
            entry.update(_status_document(
                sweep.replicate_statuses[(algorithm, mpl, rep)]
            ))
            statuses.append(entry)
    document = {
        "format": FORMAT,
        "experiment_id": sweep.config.experiment_id,
        "run": asdict(sweep.run),
        "wall_seconds": sweep.wall_seconds,
        "points": points,
        "statuses": statuses,
    }
    if sweep.replications != 1:
        document["replications"] = sweep.replications
    atomic_write_text(path, json.dumps(document))
    return path


def load_sweep(path):
    """Rebuild a :class:`SweepResult` from :func:`save_sweep` output.

    The experiment config is resolved from the current registry by id;
    an unknown id (e.g. a renamed preset) is an error rather than a
    silent mismatch.  Documents written before per-point statuses
    existed load with an empty status map.
    """
    with open(path) as f:
        document = json.load(f)
    if document.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a saved sweep (format "
            f"{document.get('format')!r})"
        )
    configs = experiment_configs()
    experiment_id = document["experiment_id"]
    if experiment_id not in configs:
        raise ValueError(
            f"{path}: unknown experiment {experiment_id!r}; "
            f"known: {sorted(configs)}"
        )
    config = configs[experiment_id]
    run = RunConfig(**document["run"])
    sweep = SweepResult(
        config=config, run=run,
        replications=document.get("replications", 1),
    )
    sweep.wall_seconds = document.get("wall_seconds", 0.0)
    for point in document["points"]:
        algorithm, mpl = point["algorithm"], point["mpl"]
        rep = point.get("rep", 0)
        result = _rebuild_result(
            algorithm, mpl, point["series"],
            point.get("totals", {}), config, run,
            diagnostics=point.get("diagnostics"),
        )
        sweep.replicates.setdefault((algorithm, mpl), {})[rep] = result
        if rep == 0:
            sweep.results[(algorithm, mpl)] = result
    for entry in document.get("statuses", []):
        pair = (entry["algorithm"], entry["mpl"])
        status = _status_from_document(entry)
        sweep.replicate_statuses[(*pair, entry.get("rep", 0))] = status
        if sweep.replications == 1:
            sweep.statuses[pair] = status
    if sweep.replications != 1:
        for (algorithm, mpl, _) in list(sweep.replicate_statuses):
            sweep.statuses[(algorithm, mpl)] = (
                sweep._aggregate_status((algorithm, mpl))
            )
    return sweep


class SweepCheckpoint:
    """Append-only per-point checkpoint of one sweep (JSONL + CRC).

    Line 1 is a header binding the file to (experiment id, run config);
    each further line records one completed point — its status always,
    its measurement payload when it succeeded.  Every line carries a
    CRC32 suffix.  Writes are flushed and fsynced so a killed process
    loses at most the in-flight point; the header itself is written
    atomically.  On load, the longest valid prefix is salvaged: a
    torn trailing line (kill mid-write) or a corrupted record ends the
    restore, and the corrupt tail is truncated away so resumed appends
    start on a clean line boundary.
    """

    def __init__(self, path, config, run, backend="classic",
                 replications=1):
        self.path = path
        self.config = config
        self.run = run
        #: Execution backend writing this checkpoint. Both lanes
        #: produce bit-identical per-replication results, but their
        #: retry semantics differ (classic reseeds one replication,
        #: batched reseeds the whole fused point), so a checkpoint
        #: never silently mixes lanes: the header binds the backend
        #: and a mismatch on resume raises CheckpointMismatchError.
        self.backend = backend
        #: Replications per grid point this sweep was launched with.
        self.replications = replications
        #: Lines dropped by the last load_into's salvage (0 = clean).
        self.salvage_dropped = 0

    def exists(self):
        return os.path.exists(self.path)

    def _faults_signature(self):
        faults = getattr(self.config.params, "faults", None)
        return None if faults is None else faults.describe()

    def _resource_model(self):
        return getattr(self.config.params, "resource_model", "classic")

    def _topology(self):
        """The multi-site topology this sweep binds.

        Matches the legacy default for headers written before the
        distributed tier existed: every old checkpoint was implicitly
        a one-node run with the atomic commit point.
        """
        params = self.config.params
        return {
            "nodes": getattr(params, "nodes", 1),
            "network_delay": getattr(params, "network_delay", 0.0),
            "replication_factor": getattr(params, "replication_factor", 1),
            "commit_protocol": getattr(
                params, "commit_protocol", "single_site"
            ),
        }

    def _workload_model(self):
        """The resolved workload-model identity this sweep binds.

        Resolved (not the raw field) so the legacy
        ``arrival_mode="open"`` spelling and an explicit
        ``workload_model="open_poisson"`` bind identically; the
        normalized spec rides along because two grid points differing
        only in spec draw different workloads.
        """
        from repro.workloads import resolve_workload_model

        params = self.config.params
        name = resolve_workload_model(params)
        spec = getattr(params, "workload_spec", None)
        if spec is None:
            return name
        # A flat string, so the identity JSON-round-trips exactly
        # (tuples would come back as lists and spuriously mismatch).
        return name + " " + json.dumps(spec)

    def start_fresh(self):
        """Atomically (re)create the file holding only the header line."""
        header = {
            "format": CHECKPOINT_FORMAT,
            "experiment_id": self.config.experiment_id,
            "run": asdict(self.run),
            "faults": self._faults_signature(),
            "resource_model": self._resource_model(),
            "workload_model": self._workload_model(),
            "topology": self._topology(),
            "backend": self.backend,
            "replications": self.replications,
        }
        atomic_write_text(self.path, encode_checkpoint_line(header))

    def record(self, algorithm, mpl, result, status, rep=0):
        """Append one completed point (result is None for failures).

        ``rep`` is the replication index; 0 is omitted from the line,
        so non-replicated checkpoints stay byte-identical to the
        pre-replication layout.
        """
        line = {
            "algorithm": algorithm,
            "mpl": mpl,
            "status": _status_document(status),
        }
        if rep:
            line["rep"] = rep
        if result is not None:
            line.update(_point_payload(result))
        with open(self.path, "a") as f:
            f.write(encode_checkpoint_line(line))
            f.flush()
            _fsync(f.fileno())

    def _check_header(self, header):
        """Raise CheckpointMismatchError unless the header matches."""
        header_format = header.get("format")
        if (header_format != CHECKPOINT_FORMAT
                and header_format not in LEGACY_CHECKPOINT_FORMATS):
            raise CheckpointMismatchError(
                f"{self.path}: not a sweep checkpoint "
                f"(format {header_format!r})"
            )
        if header.get("experiment_id") != self.config.experiment_id:
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint is for experiment "
                f"{header.get('experiment_id')!r}, not "
                f"{self.config.experiment_id!r}"
            )
        if header.get("run") != asdict(self.run):
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint run configuration "
                f"{header.get('run')!r} does not match {asdict(self.run)!r}"
            )
        if header.get("faults") != self._faults_signature():
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint fault injection "
                f"{header.get('faults')!r} does not match "
                f"{self._faults_signature()!r}"
            )
        # Checkpoints written before resource models existed carry no
        # key; they were all implicitly classic runs.
        if header.get("resource_model", "classic") != self._resource_model():
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint resource model "
                f"{header.get('resource_model', 'classic')!r} does not "
                f"match {self._resource_model()!r}"
            )
        # Checkpoints written before the distributed tier existed carry
        # no key; they were all implicitly single-node, single-site.
        legacy_topology = {
            "nodes": 1, "network_delay": 0.0,
            "replication_factor": 1, "commit_protocol": "single_site",
        }
        if header.get("topology", legacy_topology) != self._topology():
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint topology "
                f"{header.get('topology', legacy_topology)!r} does not "
                f"match {self._topology()!r}; a sweep never resumes "
                f"under a different node layout or commit protocol"
            )
        # Checkpoints written before workload models existed carry no
        # key; they were all implicitly the paper's closed model.
        if (header.get("workload_model", "closed_classic")
                != self._workload_model()):
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint workload model "
                f"{header.get('workload_model', 'closed_classic')!r} "
                f"does not match {self._workload_model()!r}; a sweep "
                f"never resumes under a different arrival process"
            )
        # Same convention for execution backends: headers written
        # before the fast lane existed default to the classic backend
        # explicitly, and any disagreement with the resuming sweep is
        # an error — the lanes are result-identical but not
        # retry-identical, so one checkpoint never mixes them.
        if header.get("backend", "classic") != self.backend:
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint was written by the "
                f"{header.get('backend', 'classic')!r} backend, not "
                f"{self.backend!r}; resume with the same --backend or "
                f"start a fresh checkpoint"
            )
        if header.get("replications", 1) != self.replications:
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint has "
                f"{header.get('replications', 1)} replication(s) per "
                f"point, the resuming sweep wants {self.replications}; "
                f"replications define the trajectory segmentation, so "
                f"they must match exactly"
            )

    def load_into(self, sweep, repair=True):
        """Restore recorded points into ``sweep``; returns their count.

        Raises :class:`CheckpointMismatchError` unless the header's
        experiment id and run configuration match this sweep exactly —
        resuming replays points verbatim, so a mismatch would silently
        mix results from different settings — and
        :class:`CheckpointCorruptError` when the header itself cannot
        be read (nothing is salvageable without it).

        Point lines are restored up to the first invalid one (torn,
        garbled, or CRC-mismatched); ``salvage_dropped`` records how
        many lines the salvage discarded. With ``repair`` (the
        default), the corrupt tail is truncated off the file so later
        appends start on a clean line boundary — without it the file
        is left untouched (read-only auditing).
        """
        self.salvage_dropped = 0
        with open(self.path, "rb") as f:
            text = f.read().decode("utf-8", errors="replace")
        lines = text.splitlines(keepends=True)
        if not lines:
            return 0
        try:
            header = decode_checkpoint_line(lines[0], require_crc=False)
        except ValueError as error:
            raise CheckpointCorruptError(
                f"{self.path}: checkpoint header is corrupt ({error}); "
                f"nothing is salvageable without it — delete the file "
                f"or re-run without --resume"
            ) from None
        self._check_header(header)
        require_crc = header.get("format") == CHECKPOINT_FORMAT
        valid_bytes = len(lines[0].encode("utf-8"))
        restored = 0
        for raw in lines[1:]:
            # A line without its newline is a torn tail by definition:
            # even if its content decodes, appending after it would
            # merge records, so the salvage stops before it.
            if not raw.endswith("\n"):
                break
            try:
                point = decode_checkpoint_line(
                    raw, require_crc=require_crc
                )
            except ValueError:
                break
            algorithm, mpl = point["algorithm"], point["mpl"]
            rep = point.get("rep", 0)
            status = _status_from_document(point["status"])
            result = None
            if "series" in point:
                result = _rebuild_result(
                    algorithm, mpl, point["series"],
                    point.get("totals", {}), self.config, self.run,
                    diagnostics=point.get("diagnostics"),
                )
            sweep.record_replicate(algorithm, mpl, rep, result, status)
            restored += 1
            valid_bytes += len(raw.encode("utf-8"))
        self.salvage_dropped = max(0, len(lines) - 1 - restored)
        if repair and self.salvage_dropped:
            with open(self.path, "r+b") as f:
                f.truncate(valid_bytes)
                _fsync(f.fileno())
        return restored


def verify_checkpoint(path):
    """Read-only integrity audit of a checkpoint file.

    Returns a report dict: ``ok`` (every line valid), ``format`` and
    ``experiment_id`` from the header (None when the header is
    unreadable), ``point_lines``, ``valid_points`` (the salvageable
    prefix), ``first_corrupt_line`` (1-based line number, None when
    clean) and ``detail`` describing the first problem found. Never
    modifies the file.
    """
    report = {
        "path": path,
        "ok": False,
        "format": None,
        "experiment_id": None,
        "point_lines": 0,
        "valid_points": 0,
        "first_corrupt_line": None,
        "detail": None,
    }
    try:
        with open(path, "rb") as f:
            text = f.read().decode("utf-8", errors="replace")
    except OSError as error:
        report["detail"] = str(error)
        return report
    lines = text.splitlines(keepends=True)
    if not lines:
        report["detail"] = "empty file (no header line)"
        return report
    try:
        header = decode_checkpoint_line(lines[0], require_crc=False)
        report["format"] = header.get("format")
        report["experiment_id"] = header.get("experiment_id")
    except ValueError as error:
        report["first_corrupt_line"] = 1
        report["detail"] = f"header: {error}"
        return report
    if (report["format"] != CHECKPOINT_FORMAT
            and report["format"] not in LEGACY_CHECKPOINT_FORMATS):
        report["detail"] = (
            f"not a sweep checkpoint (format {report['format']!r})"
        )
        return report
    require_crc = report["format"] == CHECKPOINT_FORMAT
    report["point_lines"] = len(lines) - 1
    for number, raw in enumerate(lines[1:], start=2):
        if not raw.endswith("\n"):
            report["first_corrupt_line"] = number
            report["detail"] = "torn trailing line (no newline)"
            return report
        try:
            decode_checkpoint_line(raw, require_crc=require_crc)
        except ValueError as error:
            report["first_corrupt_line"] = number
            report["detail"] = str(error)
            return report
        report["valid_points"] += 1
    report["ok"] = True
    return report


def _jsonable(value):
    """Totals contain only JSON-friendly values; coerce defensively."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)
