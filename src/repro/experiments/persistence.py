"""Saving and reloading experiment sweeps.

Full-fidelity sweeps take real time; this module persists everything a
report or shape-check needs — the per-batch values of every output
variable at every (algorithm, mpl) point — as a single JSON document,
and reconstructs a :class:`~repro.experiments.runner.SweepResult` whose
results answer ``mean``/``interval``/``describe`` exactly like live
ones (they are rebuilt on real ``BatchMeansAnalyzer``s).

    sweep = run_sweep(config, run=RunConfig(batches=20, batch_time=120))
    save_sweep(sweep, "exp3.json")
    ...
    sweep = load_sweep("exp3.json")   # plot/report without resimulating
"""

import json
from dataclasses import asdict

from repro.core import RunConfig
from repro.core.simulation import SimulationResult
from repro.experiments.configs import experiment_configs
from repro.experiments.runner import SweepResult
from repro.stats import BatchMeansAnalyzer

#: Format marker for forward compatibility.
FORMAT = "repro-sweep-v1"


def save_sweep(sweep, path):
    """Serialize a sweep (config id, run settings, all batch series)."""
    document = {
        "format": FORMAT,
        "experiment_id": sweep.config.experiment_id,
        "run": asdict(sweep.run),
        "wall_seconds": sweep.wall_seconds,
        "points": [
            {
                "algorithm": algorithm,
                "mpl": mpl,
                "series": {
                    name: result.analyzer.series(name).values
                    for name in result.analyzer.names()
                },
                "totals": _jsonable(result.totals),
            }
            for (algorithm, mpl), result in sorted(sweep.results.items())
        ],
    }
    with open(path, "w") as f:
        json.dump(document, f)
    return path


def load_sweep(path):
    """Rebuild a :class:`SweepResult` from :func:`save_sweep` output.

    The experiment config is resolved from the current registry by id;
    an unknown id (e.g. a renamed preset) is an error rather than a
    silent mismatch.
    """
    with open(path) as f:
        document = json.load(f)
    if document.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a saved sweep (format "
            f"{document.get('format')!r})"
        )
    configs = experiment_configs()
    experiment_id = document["experiment_id"]
    if experiment_id not in configs:
        raise ValueError(
            f"{path}: unknown experiment {experiment_id!r}; "
            f"known: {sorted(configs)}"
        )
    config = configs[experiment_id]
    run = RunConfig(**document["run"])
    sweep = SweepResult(config=config, run=run)
    sweep.wall_seconds = document.get("wall_seconds", 0.0)
    for point in document["points"]:
        analyzer = BatchMeansAnalyzer(
            warmup_batches=0, confidence=run.confidence
        )
        series = point["series"]
        length = max((len(v) for v in series.values()), default=0)
        for index in range(length):
            analyzer.record({
                name: values[index]
                for name, values in series.items()
                if index < len(values)
            })
        mpl = point["mpl"]
        sweep.results[(point["algorithm"], mpl)] = SimulationResult(
            algorithm=point["algorithm"],
            params=config.params_for(mpl),
            run=run,
            analyzer=analyzer,
            totals=point.get("totals", {}),
        )
    return sweep


def _jsonable(value):
    """Totals contain only JSON-friendly values; coerce defensively."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)
