"""Saving and reloading experiment sweeps, and sweep checkpoints.

Full-fidelity sweeps take real time; this module persists everything a
report or shape-check needs — the per-batch values of every output
variable at every (algorithm, mpl) point — as a single JSON document,
and reconstructs a :class:`~repro.experiments.runner.SweepResult` whose
results answer ``mean``/``interval``/``describe`` exactly like live
ones (they are rebuilt on real ``BatchMeansAnalyzer``s).

    sweep = run_sweep(config, run=RunConfig(batches=20, batch_time=120))
    save_sweep(sweep, "exp3.json")
    ...
    sweep = load_sweep("exp3.json")   # plot/report without resimulating

:class:`SweepCheckpoint` is the incremental sibling used by the
resilient runner: an append-only JSONL file holding one header line
plus one line per completed point (failed points included, so their
statuses survive), flushed and fsynced as each point finishes.  Point
lines may appear in *any* order — a parallel sweep's parent flushes
them in completion order, which varies with worker scheduling — and
:meth:`SweepCheckpoint.load_into` keys them by (algorithm, mpl), so a
checkpoint written with ``workers=N`` resumes identically to one
written sequentially.  A sweep killed mid-flight resumes by loading
the checkpoint and re-running only the missing points::

    run_sweep(config, checkpoint="exp3.ckpt.jsonl")            # killed...
    run_sweep(config, checkpoint="exp3.ckpt.jsonl", resume=True)
"""

import json
import os
from dataclasses import asdict

from repro.core import RunConfig
from repro.core.simulation import SimulationResult
from repro.experiments.configs import experiment_configs
from repro.experiments.errors import CheckpointMismatchError
from repro.experiments.runner import PointStatus, SweepResult
from repro.stats import BatchMeansAnalyzer

#: Format marker for forward compatibility.
FORMAT = "repro-sweep-v1"

#: Format marker of the incremental checkpoint file.
CHECKPOINT_FORMAT = "repro-sweep-checkpoint-v1"


def _point_payload(result):
    """The serializable measurement payload of one successful point.

    ``diagnostics`` (per-point observability: sampled time-series,
    trace-file pointers) is included only when present, so documents
    written without observability are byte-identical to the v1 layout
    and old readers simply ignore the extra key.
    """
    payload = {
        "series": {
            name: result.analyzer.series(name).values
            for name in result.analyzer.names()
        },
        "totals": _jsonable(result.totals),
    }
    if result.diagnostics is not None:
        payload["diagnostics"] = _jsonable(result.diagnostics)
    return payload


def _rebuild_result(algorithm, mpl, series, totals, config, run,
                    diagnostics=None):
    """Reconstruct a SimulationResult from its saved batch series."""
    analyzer = BatchMeansAnalyzer(
        warmup_batches=0, confidence=run.confidence
    )
    length = max((len(v) for v in series.values()), default=0)
    for index in range(length):
        analyzer.record({
            name: values[index]
            for name, values in series.items()
            if index < len(values)
        })
    return SimulationResult(
        algorithm=algorithm,
        params=config.params_for(mpl),
        run=run,
        analyzer=analyzer,
        totals=totals or {},
        diagnostics=diagnostics,
    )


def _status_document(status):
    return {
        "status": status.status,
        "attempts": status.attempts,
        "error": status.error,
        "wall_seconds": status.wall_seconds,
    }


def _status_from_document(document):
    return PointStatus(
        status=document["status"],
        attempts=document.get("attempts", 1),
        error=document.get("error"),
        wall_seconds=document.get("wall_seconds", 0.0),
    )


def save_sweep(sweep, path):
    """Serialize a sweep (config id, run settings, all batch series)."""
    document = {
        "format": FORMAT,
        "experiment_id": sweep.config.experiment_id,
        "run": asdict(sweep.run),
        "wall_seconds": sweep.wall_seconds,
        "points": [
            {
                "algorithm": algorithm,
                "mpl": mpl,
                **_point_payload(result),
            }
            for (algorithm, mpl), result in sorted(sweep.results.items())
        ],
        "statuses": [
            {
                "algorithm": algorithm,
                "mpl": mpl,
                **_status_document(status),
            }
            for (algorithm, mpl), status in sorted(sweep.statuses.items())
        ],
    }
    with open(path, "w") as f:
        json.dump(document, f)
    return path


def load_sweep(path):
    """Rebuild a :class:`SweepResult` from :func:`save_sweep` output.

    The experiment config is resolved from the current registry by id;
    an unknown id (e.g. a renamed preset) is an error rather than a
    silent mismatch.  Documents written before per-point statuses
    existed load with an empty status map.
    """
    with open(path) as f:
        document = json.load(f)
    if document.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a saved sweep (format "
            f"{document.get('format')!r})"
        )
    configs = experiment_configs()
    experiment_id = document["experiment_id"]
    if experiment_id not in configs:
        raise ValueError(
            f"{path}: unknown experiment {experiment_id!r}; "
            f"known: {sorted(configs)}"
        )
    config = configs[experiment_id]
    run = RunConfig(**document["run"])
    sweep = SweepResult(config=config, run=run)
    sweep.wall_seconds = document.get("wall_seconds", 0.0)
    for point in document["points"]:
        mpl = point["mpl"]
        sweep.results[(point["algorithm"], mpl)] = _rebuild_result(
            point["algorithm"], mpl, point["series"],
            point.get("totals", {}), config, run,
            diagnostics=point.get("diagnostics"),
        )
    for entry in document.get("statuses", []):
        sweep.statuses[(entry["algorithm"], entry["mpl"])] = (
            _status_from_document(entry)
        )
    return sweep


class SweepCheckpoint:
    """Append-only per-point checkpoint of one sweep (JSONL).

    Line 1 is a header binding the file to (experiment id, run config);
    each further line records one completed point — its status always,
    its measurement payload when it succeeded.  Writes are flushed and
    fsynced so a killed process loses at most the in-flight point; a
    truncated trailing line (the kill arrived mid-write) is ignored on
    load.
    """

    def __init__(self, path, config, run):
        self.path = path
        self.config = config
        self.run = run

    def exists(self):
        return os.path.exists(self.path)

    def _faults_signature(self):
        faults = getattr(self.config.params, "faults", None)
        return None if faults is None else faults.describe()

    def _resource_model(self):
        return getattr(self.config.params, "resource_model", "classic")

    def start_fresh(self):
        """Truncate and write the header line."""
        header = {
            "format": CHECKPOINT_FORMAT,
            "experiment_id": self.config.experiment_id,
            "run": asdict(self.run),
            "faults": self._faults_signature(),
            "resource_model": self._resource_model(),
        }
        with open(self.path, "w") as f:
            f.write(json.dumps(header) + "\n")
            f.flush()
            os.fsync(f.fileno())

    def record(self, algorithm, mpl, result, status):
        """Append one completed point (result is None for failures)."""
        line = {
            "algorithm": algorithm,
            "mpl": mpl,
            "status": _status_document(status),
        }
        if result is not None:
            line.update(_point_payload(result))
        with open(self.path, "a") as f:
            f.write(json.dumps(line) + "\n")
            f.flush()
            os.fsync(f.fileno())

    def load_into(self, sweep):
        """Restore recorded points into ``sweep``; returns their count.

        Raises :class:`CheckpointMismatchError` unless the header's
        experiment id and run configuration match this sweep exactly —
        resuming replays points verbatim, so a mismatch would silently
        mix results from different settings.
        """
        with open(self.path) as f:
            lines = f.read().splitlines()
        if not lines:
            return 0
        header = json.loads(lines[0])
        if header.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointMismatchError(
                f"{self.path}: not a sweep checkpoint "
                f"(format {header.get('format')!r})"
            )
        if header.get("experiment_id") != self.config.experiment_id:
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint is for experiment "
                f"{header.get('experiment_id')!r}, not "
                f"{self.config.experiment_id!r}"
            )
        if header.get("run") != asdict(self.run):
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint run configuration "
                f"{header.get('run')!r} does not match {asdict(self.run)!r}"
            )
        if header.get("faults") != self._faults_signature():
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint fault injection "
                f"{header.get('faults')!r} does not match "
                f"{self._faults_signature()!r}"
            )
        # Checkpoints written before resource models existed carry no
        # key; they were all implicitly classic runs.
        if header.get("resource_model", "classic") != self._resource_model():
            raise CheckpointMismatchError(
                f"{self.path}: checkpoint resource model "
                f"{header.get('resource_model', 'classic')!r} does not "
                f"match {self._resource_model()!r}"
            )
        restored = 0
        for raw in lines[1:]:
            try:
                point = json.loads(raw)
            except json.JSONDecodeError:
                break  # truncated trailing line from a mid-write kill
            algorithm, mpl = point["algorithm"], point["mpl"]
            status = _status_from_document(point["status"])
            sweep.statuses[(algorithm, mpl)] = status
            if "series" in point:
                sweep.results[(algorithm, mpl)] = _rebuild_result(
                    algorithm, mpl, point["series"],
                    point.get("totals", {}), self.config, self.run,
                    diagnostics=point.get("diagnostics"),
                )
            restored += 1
        return restored


def _jsonable(value):
    """Totals contain only JSON-friendly values; coerce defensively."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)
