"""Exporting sweep results to machine-readable formats.

``sweep_to_rows`` flattens a :class:`~repro.experiments.runner.SweepResult`
into one row per (algorithm, mpl, metric); ``write_csv`` serializes the
rows so the figures can be re-plotted with any external tool.

``timeseries_to_rows``/``write_timeseries_csv`` do the same for the
per-point time-series diagnostics captured by
``run_sweep(..., timeseries=...)``: one row per sample tick per point,
long format, ready for pandas/gnuplot.
"""

import csv
import io

from repro.obs import SAMPLE_FIELDS

#: Column order of the flattened rows.
CSV_COLUMNS = (
    "experiment",
    "figures",
    "algorithm",
    "mpl",
    "metric",
    "mean",
    "ci_half_width",
    "ci_low",
    "ci_high",
    "confidence",
    "batches",
)


def sweep_to_rows(sweep, metrics=None):
    """Flatten a sweep into dict rows (one per algorithm x mpl x metric).

    ``metrics`` defaults to the owning experiment's plotted metrics.
    """
    config = sweep.config
    metrics = tuple(metrics) if metrics is not None else config.metrics
    figures = "+".join(str(f) for f in config.figures)
    rows = []
    for (algorithm, mpl), result in sorted(sweep.results.items()):
        for metric in metrics:
            interval = result.interval(metric)
            rows.append({
                "experiment": config.experiment_id,
                "figures": figures,
                "algorithm": algorithm,
                "mpl": mpl,
                "metric": metric,
                "mean": interval.mean,
                "ci_half_width": interval.half_width,
                "ci_low": interval.low,
                "ci_high": interval.high,
                "confidence": interval.confidence,
                "batches": interval.n,
            })
    return rows


def write_csv(sweep, destination, metrics=None):
    """Write the flattened sweep to ``destination``.

    ``destination`` may be a path or a writable text file object.
    Returns the number of data rows written.
    """
    rows = sweep_to_rows(sweep, metrics=metrics)
    if hasattr(destination, "write"):
        _write_rows(destination, rows)
    else:
        with open(destination, "w", newline="") as f:
            _write_rows(f, rows)
    return len(rows)


def rows_to_csv_text(sweep, metrics=None):
    """The CSV as a string (convenience for tests and notebooks)."""
    buffer = io.StringIO()
    write_csv(sweep, buffer, metrics=metrics)
    return buffer.getvalue()


def _write_rows(fileobj, rows):
    writer = csv.DictWriter(fileobj, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    writer.writerows(rows)


#: Column order of the flattened time-series rows: point identity, then
#: the sampler's fields in their canonical order.
TIMESERIES_COLUMNS = ("experiment", "algorithm", "mpl") + SAMPLE_FIELDS


def timeseries_to_rows(sweep):
    """Flatten every point's sampled time-series into long-format rows.

    Points without diagnostics (sweep run without ``timeseries=``, or
    loaded from a pre-observability document) contribute no rows.
    """
    experiment = sweep.config.experiment_id
    rows = []
    for (algorithm, mpl), result in sorted(sweep.results.items()):
        diagnostics = result.diagnostics or {}
        timeseries = diagnostics.get("timeseries")
        if not timeseries:
            continue
        series = timeseries["series"]
        for index in range(len(series["time"])):
            row = {
                "experiment": experiment,
                "algorithm": algorithm,
                "mpl": mpl,
            }
            for fieldname in SAMPLE_FIELDS:
                row[fieldname] = series[fieldname][index]
            rows.append(row)
    return rows


def write_timeseries_csv(sweep, destination):
    """Write the sweep's time-series diagnostics to ``destination``.

    ``destination`` may be a path or a writable text file object.
    Returns the number of data rows written (0 when the sweep carries
    no time-series diagnostics).
    """
    rows = timeseries_to_rows(sweep)

    def write(fileobj):
        writer = csv.DictWriter(fileobj, fieldnames=TIMESERIES_COLUMNS)
        writer.writeheader()
        writer.writerows(rows)

    if hasattr(destination, "write"):
        write(destination)
    else:
        with open(destination, "w", newline="") as f:
            write(f)
    return len(rows)
