"""Exporting sweep results to machine-readable formats.

``sweep_to_rows`` flattens a :class:`~repro.experiments.runner.SweepResult`
into one row per (algorithm, mpl, metric); ``write_csv`` serializes the
rows so the figures can be re-plotted with any external tool.
"""

import csv
import io

#: Column order of the flattened rows.
CSV_COLUMNS = (
    "experiment",
    "figures",
    "algorithm",
    "mpl",
    "metric",
    "mean",
    "ci_half_width",
    "ci_low",
    "ci_high",
    "confidence",
    "batches",
)


def sweep_to_rows(sweep, metrics=None):
    """Flatten a sweep into dict rows (one per algorithm x mpl x metric).

    ``metrics`` defaults to the owning experiment's plotted metrics.
    """
    config = sweep.config
    metrics = tuple(metrics) if metrics is not None else config.metrics
    figures = "+".join(str(f) for f in config.figures)
    rows = []
    for (algorithm, mpl), result in sorted(sweep.results.items()):
        for metric in metrics:
            interval = result.interval(metric)
            rows.append({
                "experiment": config.experiment_id,
                "figures": figures,
                "algorithm": algorithm,
                "mpl": mpl,
                "metric": metric,
                "mean": interval.mean,
                "ci_half_width": interval.half_width,
                "ci_low": interval.low,
                "ci_high": interval.high,
                "confidence": interval.confidence,
                "batches": interval.n,
            })
    return rows


def write_csv(sweep, destination, metrics=None):
    """Write the flattened sweep to ``destination``.

    ``destination`` may be a path or a writable text file object.
    Returns the number of data rows written.
    """
    rows = sweep_to_rows(sweep, metrics=metrics)
    if hasattr(destination, "write"):
        _write_rows(destination, rows)
    else:
        with open(destination, "w", newline="") as f:
            _write_rows(f, rows)
    return len(rows)


def rows_to_csv_text(sweep, metrics=None):
    """The CSV as a string (convenience for tests and notebooks)."""
    buffer = io.StringIO()
    write_csv(sweep, buffer, metrics=metrics)
    return buffer.getvalue()


def _write_rows(fileobj, rows):
    writer = csv.DictWriter(fileobj, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    writer.writerows(rows)
