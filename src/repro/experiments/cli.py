"""Command-line entry point: ``repro-experiments``.

Examples::

    # regenerate one figure's data (quick settings)
    repro-experiments --figure 8 --quick

    # run a whole experiment with custom statistics
    repro-experiments --experiment exp3_finite --batches 20 --batch-time 60

    # everything in the paper (takes a while)
    repro-experiments --all

    # resilient long sweep: per-point budgets, retries, checkpointing;
    # re-running with --resume skips the points already on disk
    repro-experiments --experiment exp3_finite --batches 20 \
        --deadline 600 --stall-timeout 120 --retries 1 \
        --checkpoint ckpts --resume

    # the same sweep fanned out over every CPU core; results are
    # identical to --workers 1 for the same seed
    repro-experiments --experiment exp3_finite --batches 20 --workers 0

    # availability study: paper experiment under injected disk crashes
    repro-experiments --experiment exp6_disk_faults --quick
    repro-experiments --figure 8 --quick --inject disk_storm

    # resource-model ablations: the same paper experiment behind a
    # buffer pool, or with explicit object->disk placement
    repro-experiments --experiment exp7_buffered --quick
    repro-experiments --figure 8 --quick --resource-model buffered

    # workload-model ablations: the same paper experiment with open
    # Poisson arrivals, or with heavy-tailed think/size distributions
    repro-experiments --figure 8 --quick --workload-model open_poisson \
        --workload-spec rate=12
    repro-experiments --experiment exp10_heavy_tailed --quick

    # observability: stream per-point event traces and sample the
    # queue/utilization time-series every 2 simulated seconds
    repro-experiments --figure 8 --quick --trace --trace-out traces \
        --trace-kinds submit,restart,commit \
        --timeseries 2 --timeseries-csv fig8_ts.csv

    # one diagnostic run of a single algorithm (no sweep)
    repro-experiments --single blocking --mpl 50 --quick --trace

    # analytic surrogate: calibrate against simulation, then sweep a
    # 100k+-point parameter space through the calibrated model with
    # simulation spot-checks of the uncertain corners
    repro-experiments calibrate --quick --out calibration.json
    repro-experiments explore --coeffs calibration.json \
        --spot-checks 3 --quick --out exploration.json
"""

import argparse
import difflib
import os
import sys

from repro.cc.registry import algorithm_names, commit_protocol_names
from repro.experiments.configs import FIGURE_INDEX, experiment_configs
from repro.experiments.errors import CheckpointMismatchError
from repro.experiments.figures import FigureBuilder
from repro.experiments.report import sweep_report
from repro.experiments.runner import (
    DEFAULT_RUN,
    QUICK_RUN,
    PointTrace,
    print_progress,
)
from repro.faults import scenario, scenario_names
from repro.obs.events import ALL_KINDS
from repro.resources import resource_model_names
from repro.workloads import workload_model_names


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the experiments of Agrawal, Carey & Livny, "
            "'Models for Studying Concurrency Control Performance' "
            "(SIGMOD 1985)."
        ),
    )
    what = parser.add_mutually_exclusive_group()
    what.add_argument(
        "command", nargs="?", choices=("calibrate", "explore"),
        metavar="COMMAND",
        help=(
            "analytic-surrogate commands: 'calibrate' fits the "
            "surrogate's correction coefficients against a seeded "
            "simulation grid and reports per-point divergence (exit 1 "
            "if the overall median exceeds 10%%); 'explore' sweeps a "
            "huge configuration space through the calibrated "
            "surrogate and spot-checks flagged points with real "
            "simulation"
        ),
    )
    what.add_argument(
        "--experiment",
        choices=sorted(experiment_configs()),
        help="run one experiment preset",
    )
    what.add_argument(
        "--figure",
        type=int,
        choices=sorted(FIGURE_INDEX),
        help="regenerate one paper figure (3..21)",
    )
    what.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    what.add_argument(
        "--single", metavar="ALGORITHM", default=None,
        help=(
            "one diagnostic run of a single algorithm on the paper's "
            "base (Table 2) parameters instead of a sweep; combine "
            "with --mpl (first value; default 25), --inject, "
            "--resource-model, --trace and --timeseries"
        ),
    )
    what.add_argument(
        "--verify-checkpoint", metavar="PATH", default=None,
        help=(
            "audit a sweep checkpoint file's integrity (header, "
            "per-line CRC32s) without modifying it, then exit: 0 = "
            "clean, 1 = corrupt (the report shows the salvageable "
            "prefix a --resume run would recover)"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="use the quick statistics profile (3 batches x 12 s)",
    )
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--batch-time", type=float, default=None)
    parser.add_argument("--warmup-batches", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--mpl", type=int, action="append", dest="mpls",
        help="restrict the mpl sweep (repeatable)",
    )
    parser.add_argument(
        "--algorithm", action="append", dest="algorithms",
        help="restrict the algorithms (repeatable)",
    )
    parser.add_argument(
        "--no-plots", action="store_true",
        help="tables only, no ASCII plots",
    )
    parser.add_argument(
        "--csv", metavar="PATH",
        help="also write the swept series to a CSV file",
    )
    resilience = parser.add_argument_group(
        "resilient execution",
        "supervise each (algorithm, mpl) point instead of letting one "
        "bad point kill the sweep",
    )
    resilience.add_argument(
        "--deadline", type=float, metavar="SECONDS", default=None,
        help="wall-clock budget per sweep point (checked each batch)",
    )
    resilience.add_argument(
        "--stall-timeout", type=float, metavar="SIM_SECONDS", default=None,
        help=(
            "fail a point after this many simulated seconds without a "
            "single commit (livelock watchdog)"
        ),
    )
    resilience.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="reseeded retries per failed point (default: 0)",
    )
    resilience.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help=(
            "flush each completed point to DIR/<experiment>.ckpt.jsonl "
            "as the sweep runs"
        ),
    )
    resilience.add_argument(
        "--resume", action="store_true",
        help=(
            "with --checkpoint: skip points already recorded and "
            "simulate only the missing ones"
        ),
    )
    resilience.add_argument(
        "--invariants", choices=["strict", "warn", "off", "spot"],
        default=None,
        help=(
            "audit every run's event stream with the runtime "
            "invariant checker: strict raises at the violating "
            "event, warn records violations in the diagnostics, off "
            "disables it; spot (batched backend only) audits the "
            "first point of each algorithm strictly and leaves the "
            "rest unchecked (default: the REPRO_INVARIANTS "
            "environment variable, else off)"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help=(
            "run sweep points on N worker processes (default: 1 = "
            "sequential; 0 = one per CPU core); results are identical "
            "for any worker count"
        ),
    )
    parser.add_argument(
        "--backend", choices=["classic", "batched"], default="classic",
        help=(
            "sweep execution backend: classic runs every (algorithm, "
            "mpl, replication) as an independent simulation; batched "
            "fuses each point's replications into one trajectory and "
            "shares precomputed workload tapes across points — "
            "bit-identical per replication, much faster for "
            "--replications > 1 (default: classic)"
        ),
    )
    parser.add_argument(
        "--replications", type=int, default=1, metavar="R",
        help=(
            "measure every grid point R times; replication r is the "
            "r-th batches-sized segment of one deterministic "
            "trajectory, so R=1 (the default) is the classic "
            "single-measurement sweep"
        ),
    )
    # --inject and --resource-model take registry names; they are NOT
    # argparse ``choices`` so a typo gets a did-you-mean error from
    # main() (matching --trace-kinds) instead of argparse's bare list.
    parser.add_argument(
        "--inject", default=None,
        metavar="SCENARIO",
        help=(
            "overlay a named fault scenario on every experiment "
            f"(choices: {', '.join(scenario_names())})"
        ),
    )
    parser.add_argument(
        "--resource-model", default=None,
        metavar="MODEL", dest="resource_model",
        help=(
            "overlay a resource model on every experiment "
            f"(choices: {', '.join(resource_model_names())}; "
            "default: each preset's own, usually classic)"
        ),
    )
    parser.add_argument(
        "--workload-model", default=None,
        metavar="MODEL", dest="workload_model",
        help=(
            "overlay a workload model on every experiment "
            f"(choices: {', '.join(workload_model_names())}; "
            "default: each preset's own, usually closed_classic)"
        ),
    )
    parser.add_argument(
        "--workload-spec", default=None,
        metavar="KEY=VALUE[,KEY=VALUE...]", dest="workload_spec",
        help=(
            "options for the workload model, e.g. "
            "'rate=12,process=mmpp' for open_poisson or "
            "'preset=web_sessions' for heavy_tailed "
            "(requires --workload-model)"
        ),
    )
    parser.add_argument(
        "--nodes", default=None, type=int, metavar="N",
        help=(
            "overlay a node count on every experiment (usually with "
            "--resource-model distributed; default: each preset's own)"
        ),
    )
    parser.add_argument(
        "--commit-protocol", default=None,
        metavar="PROTOCOL", dest="commit_protocol",
        help=(
            "overlay a commit protocol on every experiment "
            f"(choices: {', '.join(commit_protocol_names())}; "
            "default: each preset's own, usually single_site)"
        ),
    )
    surrogate = parser.add_argument_group(
        "analytic surrogate",
        "options for the 'calibrate' and 'explore' commands",
    )
    surrogate.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the calibration/exploration report JSON to PATH",
    )
    surrogate.add_argument(
        "--no-fit", action="store_true",
        help=(
            "calibrate: skip the coefficient fit and validate the "
            "baked-in defaults against the grid instead"
        ),
    )
    surrogate.add_argument(
        "--coeffs", metavar="PATH", default=None,
        help=(
            "explore: use the coefficients and calibration boundary "
            "from a saved calibration report instead of the baked-in "
            "defaults"
        ),
    )
    surrogate.add_argument(
        "--space", choices=("default", "smoke"), default="default",
        help=(
            "explore: the configuration space to sweep (smoke is a "
            "tiny CI-sized space; default covers 113,400 evaluations)"
        ),
    )
    surrogate.add_argument(
        "--uncertainty-threshold", type=float, default=1.0,
        metavar="X", dest="uncertainty_threshold",
        help=(
            "explore: flag predictions whose uncertainty score "
            "exceeds X (1.0 = the calibration boundary; default: 1.0)"
        ),
    )
    surrogate.add_argument(
        "--spot-checks", type=int, default=0, metavar="N",
        dest="spot_checks",
        help=(
            "explore: re-check the N most uncertain flagged points "
            "with real simulation (default: 0 = none)"
        ),
    )
    observability = parser.add_argument_group(
        "observability",
        "stream instrumentation-bus events and periodic time-series "
        "samples out of every simulated point",
    )
    observability.add_argument(
        "--trace", action="store_true",
        help=(
            "write each point's event stream to a JSONL file (one "
            "file per (algorithm, mpl) point)"
        ),
    )
    observability.add_argument(
        "--trace-out", metavar="DIR", default=None,
        help="directory for trace files (default: traces)",
    )
    observability.add_argument(
        "--trace-kinds", metavar="KINDS", default=None,
        help=(
            "comma-separated event kinds to trace (default: all; e.g. "
            "submit,block,restart,commit)"
        ),
    )
    observability.add_argument(
        "--timeseries", type=float, metavar="SIM_SECONDS", default=None,
        help=(
            "sample queue lengths, utilizations and cumulative counts "
            "every SIM_SECONDS of simulated time"
        ),
    )
    observability.add_argument(
        "--timeseries-csv", metavar="PATH", default=None,
        help="write the sampled time-series to a CSV file",
    )
    return parser


def resolve_run(args):
    run = QUICK_RUN if args.quick else DEFAULT_RUN
    changes = {}
    if args.batches is not None:
        changes["batches"] = args.batches
    if args.batch_time is not None:
        changes["batch_time"] = args.batch_time
    if args.warmup_batches is not None:
        changes["warmup_batches"] = args.warmup_batches
    if args.seed is not None:
        changes["seed"] = args.seed
    return run.with_changes(**changes) if changes else run


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        for flag, value, default in (
            ("--out", args.out, None),
            ("--no-fit", args.no_fit, False),
            ("--coeffs", args.coeffs, None),
            ("--space", args.space, "default"),
            ("--uncertainty-threshold", args.uncertainty_threshold, 1.0),
            ("--spot-checks", args.spot_checks, 0),
        ):
            if value != default:
                parser.error(
                    f"{flag} requires the calibrate or explore command"
                )
    else:
        explore_only = (
            ("--coeffs", args.coeffs, None),
            ("--space", args.space, "default"),
            ("--uncertainty-threshold", args.uncertainty_threshold, 1.0),
            ("--spot-checks", args.spot_checks, 0),
        )
        if args.command == "calibrate":
            for flag, value, default in explore_only:
                if value != default:
                    parser.error(f"{flag} applies to explore only")
        elif args.no_fit:
            parser.error("--no-fit applies to calibrate only")
        if args.uncertainty_threshold <= 0:
            parser.error(
                f"--uncertainty-threshold must be > 0, got "
                f"{args.uncertainty_threshold}"
            )
        if args.spot_checks < 0:
            parser.error(
                f"--spot-checks must be >= 0, got {args.spot_checks}"
            )
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.deadline is not None and args.deadline <= 0:
        parser.error(f"--deadline must be > 0, got {args.deadline}")
    if args.stall_timeout is not None and args.stall_timeout <= 0:
        parser.error(
            f"--stall-timeout must be > 0, got {args.stall_timeout}"
        )
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    if args.replications < 1:
        parser.error(
            f"--replications must be >= 1, got {args.replications}"
        )
    if args.backend == "batched":
        if args.workers > 1:
            parser.error(
                "--backend batched is single-process; drop --workers "
                "or use --backend classic"
            )
        if args.trace or args.timeseries is not None:
            parser.error(
                "--backend batched fuses each point's replications "
                "into one trajectory; per-point --trace/--timeseries "
                "require --backend classic"
            )
        if args.single is not None:
            parser.error(
                "--single runs one diagnostic simulation; --backend "
                "batched applies to sweeps only"
            )
    elif args.invariants == "spot":
        parser.error(
            "--invariants spot requires --backend batched "
            "(use strict/warn/off with the classic backend)"
        )
    if args.trace_out is not None and not args.trace:
        parser.error("--trace-out requires --trace")
    if args.trace_kinds is not None and not args.trace:
        parser.error("--trace-kinds requires --trace")
    if args.trace_kinds is not None:
        unknown = [
            kind for kind in _parse_trace_kinds(args.trace_kinds) or ()
            if kind not in ALL_KINDS
        ]
        if unknown:
            parser.error(
                f"--trace-kinds: unknown event kind(s) "
                f"{', '.join(sorted(unknown))} "
                f"(choose from {', '.join(sorted(ALL_KINDS))})"
            )
    if args.timeseries is not None and args.timeseries <= 0:
        parser.error(f"--timeseries must be > 0, got {args.timeseries}")
    if args.timeseries_csv is not None and args.timeseries is None:
        parser.error("--timeseries-csv requires --timeseries")
    if args.single is not None and args.replications != 1:
        parser.error(
            "--replications applies to sweeps; --single runs one "
            "simulation"
        )
    if args.single is not None and args.single not in algorithm_names():
        parser.error(
            f"--single: unknown algorithm {args.single!r} "
            f"(choose from {', '.join(algorithm_names())})"
        )
    _validate_registry_name(
        parser, "--inject", args.inject, scenario_names(), "fault scenario"
    )
    _validate_registry_name(
        parser, "--resource-model", args.resource_model,
        resource_model_names(), "resource model",
    )
    _validate_registry_name(
        parser, "--workload-model", args.workload_model,
        workload_model_names(), "workload model",
    )
    _validate_registry_name(
        parser, "--commit-protocol", args.commit_protocol,
        commit_protocol_names(), "commit protocol",
    )
    if args.nodes is not None and args.nodes < 1:
        parser.error("--nodes must be >= 1")
    if args.workload_spec is not None and args.workload_model is None:
        parser.error("--workload-spec requires --workload-model")
    if args.workload_spec is not None:
        try:
            args.workload_spec = _parse_workload_spec(args.workload_spec)
        except ValueError as error:
            parser.error(f"--workload-spec: {error}")
    if args.workload_model is not None:
        # Probe the model against Table 2 parameters so option typos
        # (unknown keys, mmpp without rates, a missing trace file) are
        # usage errors before any simulation starts.
        from repro.core import SimulationParameters
        from repro.workloads import create_workload_model

        probe = SimulationParameters.table2().with_changes(
            workload_model=args.workload_model,
            workload_spec=args.workload_spec,
        )
        try:
            create_workload_model(probe)
        except (ValueError, OSError) as error:
            parser.error(f"--workload-model: {error}")
    try:
        return _dispatch(args)
    except CheckpointMismatchError as error:
        print(f"repro-experiments: error: {error}", file=sys.stderr)
        print(
            "repro-experiments: the checkpoint was written by a "
            "different sweep; re-run with the matching options, or "
            "drop --resume to start fresh",
            file=sys.stderr,
        )
        return 2


def _validate_registry_name(parser, flag, value, choices, what):
    """Reject an unknown registry name with a did-you-mean error.

    Validated at parse time (like ``--trace-kinds``) so a typo is a
    usage error before any simulation starts, and the closest valid
    name is suggested when one is plausible.
    """
    if value is None or value in choices:
        return
    suggestion = difflib.get_close_matches(value, choices, n=1)
    did_you_mean = f" (did you mean {suggestion[0]!r}?)" if suggestion else ""
    parser.error(
        f"{flag}: unknown {what} {value!r}{did_you_mean} "
        f"(choose from {', '.join(choices)})"
    )


def _parse_workload_spec(text):
    """``"rate=12,process=mmpp"`` -> ``{"rate": 12, "process": "mmpp"}``.

    Values coerce to int, then float, then the booleans ``true``/
    ``false``, and stay strings otherwise; a colon-separated run of
    numbers (``rates=1:20``) becomes a tuple, for the mmpp list
    options.  The workload model itself validates the keys against its
    known options.
    """
    spec = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        key, sep, raw = token.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(
                f"expected KEY=VALUE, got {token!r}"
            )
        spec[key] = _coerce_spec_value(raw.strip())
    if not spec:
        raise ValueError("empty spec")
    return spec


def _coerce_spec_value(raw):
    if ":" in raw:
        parts = [_coerce_spec_scalar(p.strip()) for p in raw.split(":")]
        if all(isinstance(p, (int, float)) for p in parts):
            return tuple(parts)
    return _coerce_spec_scalar(raw)


def _coerce_spec_scalar(raw):
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(raw)
        except ValueError:
            continue
    return raw


def _parse_trace_kinds(text):
    """``"submit, restart"`` -> ``("submit", "restart")`` (None = all)."""
    if text is None:
        return None
    kinds = tuple(k.strip() for k in text.split(",") if k.strip())
    return kinds or None


def _trace_option(args):
    """The run_sweep ``trace=`` value implied by the CLI flags."""
    if not args.trace:
        return None
    return PointTrace(
        directory=args.trace_out or "traces",
        kinds=_parse_trace_kinds(args.trace_kinds),
    )


def _verify_checkpoint(path):
    """The ``--verify-checkpoint`` command: print an audit, set the exit."""
    from repro.experiments.persistence import verify_checkpoint

    report = verify_checkpoint(path)
    print(f"checkpoint: {report['path']}")
    if report["format"] is not None:
        print(f"  format:        {report['format']}")
    if report["experiment_id"] is not None:
        print(f"  experiment:    {report['experiment_id']}")
    print(f"  point lines:   {report['point_lines']}")
    print(f"  valid points:  {report['valid_points']}")
    if report["ok"]:
        print("  status:        OK (every line intact)")
        return 0
    where = (
        f" at line {report['first_corrupt_line']}"
        if report["first_corrupt_line"] is not None else ""
    )
    print(f"  status:        CORRUPT{where}: {report['detail']}")
    if report["format"] is not None:
        print(
            f"  a --resume run would salvage the first "
            f"{report['valid_points']} point(s) and repair the file"
        )
    return 1


def _dispatch(args):
    if args.verify_checkpoint is not None:
        return _verify_checkpoint(args.verify_checkpoint)
    run = resolve_run(args)
    if args.command == "calibrate":
        return _run_calibrate(args, run)
    if args.command == "explore":
        return _run_explore(args, run)
    if args.single is not None:
        return _run_single(args, run)
    builder = FigureBuilder(
        run=run,
        mpls=args.mpls,
        algorithms=args.algorithms,
        progress=print_progress,
        inject=scenario(args.inject) if args.inject else None,
        resource_model=args.resource_model,
        workload_model=args.workload_model,
        workload_spec=args.workload_spec,
        nodes=args.nodes,
        commit_protocol=args.commit_protocol,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
        deadline=args.deadline,
        stall_timeout=args.stall_timeout,
        retries=args.retries,
        workers=args.workers,
        timeseries=args.timeseries,
        trace=_trace_option(args),
        invariants=args.invariants,
        backend=args.backend,
        replications=args.replications,
    )
    configs = experiment_configs()
    if args.figure is not None:
        data = builder.figure(args.figure)
        print(sweep_report(data.sweep, with_plots=not args.no_plots))
        print()
        print(data.describe())
        if args.csv:
            _export_csv([data.sweep], args.csv)
        if args.timeseries_csv:
            _export_timeseries_csv([data.sweep], args.timeseries_csv)
        return 0 if data.sweep.complete else 1
    if args.experiment is not None:
        experiment_ids = [args.experiment]
    elif args.all:
        experiment_ids = sorted(configs)
    else:
        build_parser().print_help()
        return 2
    sweeps = []
    for experiment_id in experiment_ids:
        sweep = builder.sweep_for(experiment_id)
        sweeps.append(sweep)
        print(sweep_report(sweep, with_plots=not args.no_plots))
        print()
    if args.csv:
        _export_csv(sweeps, args.csv)
    if args.timeseries_csv:
        _export_timeseries_csv(sweeps, args.timeseries_csv)
    # Partial results exit 1 so schedulers notice degraded sweeps.
    return 0 if all(sweep.complete for sweep in sweeps) else 1


#: The calibration acceptance gate: overall median absolute relative
#: error of the calibrated surrogate on the grid.
CALIBRATION_GATE = 0.10


def _run_calibrate(args, run):
    """The ``calibrate`` command: fit, validate, report, gate."""
    from repro.analytic.calibrate import run_calibration

    report = run_calibration(
        run=run, fit=not args.no_fit, progress=print_progress,
        workers=args.workers,
    )
    mode = "validated baked-in" if args.no_fit else "fitted"
    print(f"calibration ({mode} coefficients, seed {report.seed}):")
    for algorithm in sorted(report.coefficients):
        if not report.points_for(algorithm):
            continue
        coeffs = report.coefficients[algorithm]
        divergence = report.divergence(algorithm)
        print(
            f"  {algorithm:18s} alpha={coeffs.alpha:.6f} "
            f"beta={coeffs.beta:.6f}  |err| median="
            f"{divergence.median:.1%} max={divergence.max:.1%} "
            f"({divergence.count} points)"
        )
    overall = report.divergence()
    print(
        f"  overall            |err| median={overall.median:.1%} "
        f"max={overall.max:.1%} ({overall.count} points)"
    )
    print(f"  calibration boundary: contention index {report.max_index:g}")
    if args.out:
        report.save(args.out)
        print(f"[wrote calibration report to {args.out}]", file=sys.stderr)
    if overall.median > CALIBRATION_GATE:
        print(
            f"calibration gate FAILED: median {overall.median:.1%} > "
            f"{CALIBRATION_GATE:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_explore(args, run):
    """The ``explore`` command: surrogate sweep + simulation spot-checks."""
    from repro.analytic.calibrate import CalibrationReport
    from repro.analytic.explore import (
        default_space,
        explore,
        smoke_space,
    )

    coeffs = max_index = None
    if args.coeffs:
        calibration = CalibrationReport.load(args.coeffs)
        coeffs = calibration.coefficients
        max_index = calibration.max_index
    space = smoke_space() if args.space == "smoke" else default_space()
    report = explore(
        space=space,
        coeffs=coeffs,
        max_index=max_index,
        threshold=args.uncertainty_threshold,
        spot_check_budget=args.spot_checks,
        run=run,
        progress=print_progress,
        workers=args.workers,
    )
    print(report.summary())
    if args.out:
        report.save(args.out)
        print(f"[wrote exploration report to {args.out}]", file=sys.stderr)
    return 0


def _run_single(args, run):
    """One diagnostic run of one algorithm (the ``--single`` command)."""
    from repro.core import SimulationParameters, run_simulation
    from repro.obs import JsonlSink, TimeSeriesSampler

    mpl = args.mpls[0] if args.mpls else 25
    params = SimulationParameters.table2(mpl=mpl)
    if args.inject:
        params = params.with_changes(faults=scenario(args.inject))
    if args.resource_model:
        params = params.with_changes(resource_model=args.resource_model)
    if args.workload_model:
        params = params.with_changes(workload_model=args.workload_model)
    if args.workload_spec is not None:
        params = params.with_changes(workload_spec=args.workload_spec)
    if args.nodes is not None:
        params = params.with_changes(nodes=args.nodes)
    if args.commit_protocol:
        params = params.with_changes(commit_protocol=args.commit_protocol)
    sampler = sink = None
    subscribers = []
    if args.timeseries is not None:
        sampler = TimeSeriesSampler(interval=args.timeseries)
        subscribers.append(sampler)
    if args.trace:
        directory = args.trace_out or "traces"
        os.makedirs(directory, exist_ok=True)
        sink = JsonlSink(
            os.path.join(
                directory, f"single.{args.single}.mpl{mpl:03d}.jsonl"
            ),
            kinds=_parse_trace_kinds(args.trace_kinds),
        )
        subscribers.append(sink)
    try:
        result = run_simulation(
            params, algorithm=args.single, run=run,
            subscribers=tuple(subscribers),
            invariants=args.invariants,
        )
    finally:
        if sink is not None:
            sink.close()
    print(result.describe())
    totals = result.totals
    commits = totals.get("commits", 0)
    if commits:
        print(
            f"whole run: commits={commits}  "
            f"blocks/commit={totals.get('blocks', 0) / commits:.2f}  "
            f"restarts/commit={totals.get('restarts', 0) / commits:.2f}"
        )
    if sink is not None:
        print(
            f"[trace: {sink.events_written} events -> {sink.path}]",
            file=sys.stderr,
        )
    if sampler is not None:
        print(
            f"[timeseries: {len(sampler)} samples at "
            f"{args.timeseries:g}s interval]",
            file=sys.stderr,
        )
        if args.timeseries_csv:
            _write_single_timeseries(sampler, args.timeseries_csv)
    return 0


def _write_single_timeseries(sampler, path):
    import csv

    from repro.obs import SAMPLE_FIELDS

    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=SAMPLE_FIELDS)
        writer.writeheader()
        writer.writerows(sampler.rows())
    print(f"[wrote {len(sampler)} samples to {path}]", file=sys.stderr)


def _export_csv(sweeps, path):
    import csv

    from repro.experiments.export import CSV_COLUMNS, sweep_to_rows

    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        total = 0
        for sweep in sweeps:
            rows = sweep_to_rows(sweep)
            writer.writerows(rows)
            total += len(rows)
    print(f"[wrote {total} rows to {path}]", file=sys.stderr)


def _export_timeseries_csv(sweeps, path):
    import csv

    from repro.experiments.export import (
        TIMESERIES_COLUMNS,
        timeseries_to_rows,
    )

    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=TIMESERIES_COLUMNS)
        writer.writeheader()
        total = 0
        for sweep in sweeps:
            rows = timeseries_to_rows(sweep)
            writer.writerows(rows)
            total += len(rows)
    print(f"[wrote {total} time-series rows to {path}]", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
