"""Command-line entry point: ``repro-experiments``.

Examples::

    # regenerate one figure's data (quick settings)
    repro-experiments --figure 8 --quick

    # run a whole experiment with custom statistics
    repro-experiments --experiment exp3_finite --batches 20 --batch-time 60

    # everything in the paper (takes a while)
    repro-experiments --all
"""

import argparse
import sys

from repro.experiments.configs import FIGURE_INDEX, experiment_configs
from repro.experiments.figures import FigureBuilder
from repro.experiments.report import sweep_report
from repro.experiments.runner import DEFAULT_RUN, QUICK_RUN, print_progress


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the experiments of Agrawal, Carey & Livny, "
            "'Models for Studying Concurrency Control Performance' "
            "(SIGMOD 1985)."
        ),
    )
    what = parser.add_mutually_exclusive_group()
    what.add_argument(
        "--experiment",
        choices=sorted(experiment_configs()),
        help="run one experiment preset",
    )
    what.add_argument(
        "--figure",
        type=int,
        choices=sorted(FIGURE_INDEX),
        help="regenerate one paper figure (3..21)",
    )
    what.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="use the quick statistics profile (3 batches x 12 s)",
    )
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--batch-time", type=float, default=None)
    parser.add_argument("--warmup-batches", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--mpl", type=int, action="append", dest="mpls",
        help="restrict the mpl sweep (repeatable)",
    )
    parser.add_argument(
        "--algorithm", action="append", dest="algorithms",
        help="restrict the algorithms (repeatable)",
    )
    parser.add_argument(
        "--no-plots", action="store_true",
        help="tables only, no ASCII plots",
    )
    parser.add_argument(
        "--csv", metavar="PATH",
        help="also write the swept series to a CSV file",
    )
    return parser


def resolve_run(args):
    run = QUICK_RUN if args.quick else DEFAULT_RUN
    changes = {}
    if args.batches is not None:
        changes["batches"] = args.batches
    if args.batch_time is not None:
        changes["batch_time"] = args.batch_time
    if args.warmup_batches is not None:
        changes["warmup_batches"] = args.warmup_batches
    if args.seed is not None:
        changes["seed"] = args.seed
    return run.with_changes(**changes) if changes else run


def main(argv=None):
    args = build_parser().parse_args(argv)
    run = resolve_run(args)
    builder = FigureBuilder(
        run=run,
        mpls=args.mpls,
        algorithms=args.algorithms,
        progress=print_progress,
    )
    configs = experiment_configs()
    if args.figure is not None:
        data = builder.figure(args.figure)
        print(sweep_report(data.sweep, with_plots=not args.no_plots))
        print()
        print(data.describe())
        if args.csv:
            _export_csv([data.sweep], args.csv)
        return 0
    if args.experiment is not None:
        experiment_ids = [args.experiment]
    elif args.all:
        experiment_ids = sorted(configs)
    else:
        build_parser().print_help()
        return 2
    sweeps = []
    for experiment_id in experiment_ids:
        sweep = builder.sweep_for(experiment_id)
        sweeps.append(sweep)
        print(sweep_report(sweep, with_plots=not args.no_plots))
        print()
    if args.csv:
        _export_csv(sweeps, args.csv)
    return 0


def _export_csv(sweeps, path):
    import csv

    from repro.experiments.export import CSV_COLUMNS, sweep_to_rows

    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        total = 0
        for sweep in sweeps:
            rows = sweep_to_rows(sweep)
            writer.writerows(rows)
            total += len(rows)
    print(f"[wrote {total} rows to {path}]", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
