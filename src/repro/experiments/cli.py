"""Command-line entry point: ``repro-experiments``.

Examples::

    # regenerate one figure's data (quick settings)
    repro-experiments --figure 8 --quick

    # run a whole experiment with custom statistics
    repro-experiments --experiment exp3_finite --batches 20 --batch-time 60

    # everything in the paper (takes a while)
    repro-experiments --all

    # resilient long sweep: per-point budgets, retries, checkpointing;
    # re-running with --resume skips the points already on disk
    repro-experiments --experiment exp3_finite --batches 20 \
        --deadline 600 --stall-timeout 120 --retries 1 \
        --checkpoint ckpts --resume

    # the same sweep fanned out over every CPU core; results are
    # identical to --workers 1 for the same seed
    repro-experiments --experiment exp3_finite --batches 20 --workers 0

    # availability study: paper experiment under injected disk crashes
    repro-experiments --experiment exp6_disk_faults --quick
    repro-experiments --figure 8 --quick --inject disk_storm
"""

import argparse
import sys

from repro.experiments.configs import FIGURE_INDEX, experiment_configs
from repro.experiments.errors import CheckpointMismatchError
from repro.experiments.figures import FigureBuilder
from repro.experiments.report import sweep_report
from repro.experiments.runner import DEFAULT_RUN, QUICK_RUN, print_progress
from repro.faults import scenario, scenario_names


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the experiments of Agrawal, Carey & Livny, "
            "'Models for Studying Concurrency Control Performance' "
            "(SIGMOD 1985)."
        ),
    )
    what = parser.add_mutually_exclusive_group()
    what.add_argument(
        "--experiment",
        choices=sorted(experiment_configs()),
        help="run one experiment preset",
    )
    what.add_argument(
        "--figure",
        type=int,
        choices=sorted(FIGURE_INDEX),
        help="regenerate one paper figure (3..21)",
    )
    what.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="use the quick statistics profile (3 batches x 12 s)",
    )
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--batch-time", type=float, default=None)
    parser.add_argument("--warmup-batches", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--mpl", type=int, action="append", dest="mpls",
        help="restrict the mpl sweep (repeatable)",
    )
    parser.add_argument(
        "--algorithm", action="append", dest="algorithms",
        help="restrict the algorithms (repeatable)",
    )
    parser.add_argument(
        "--no-plots", action="store_true",
        help="tables only, no ASCII plots",
    )
    parser.add_argument(
        "--csv", metavar="PATH",
        help="also write the swept series to a CSV file",
    )
    resilience = parser.add_argument_group(
        "resilient execution",
        "supervise each (algorithm, mpl) point instead of letting one "
        "bad point kill the sweep",
    )
    resilience.add_argument(
        "--deadline", type=float, metavar="SECONDS", default=None,
        help="wall-clock budget per sweep point (checked each batch)",
    )
    resilience.add_argument(
        "--stall-timeout", type=float, metavar="SIM_SECONDS", default=None,
        help=(
            "fail a point after this many simulated seconds without a "
            "single commit (livelock watchdog)"
        ),
    )
    resilience.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="reseeded retries per failed point (default: 0)",
    )
    resilience.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help=(
            "flush each completed point to DIR/<experiment>.ckpt.jsonl "
            "as the sweep runs"
        ),
    )
    resilience.add_argument(
        "--resume", action="store_true",
        help=(
            "with --checkpoint: skip points already recorded and "
            "simulate only the missing ones"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help=(
            "run sweep points on N worker processes (default: 1 = "
            "sequential; 0 = one per CPU core); results are identical "
            "for any worker count"
        ),
    )
    parser.add_argument(
        "--inject", choices=scenario_names(), default=None,
        metavar="SCENARIO",
        help=(
            "overlay a named fault scenario on every experiment "
            f"(choices: {', '.join(scenario_names())})"
        ),
    )
    return parser


def resolve_run(args):
    run = QUICK_RUN if args.quick else DEFAULT_RUN
    changes = {}
    if args.batches is not None:
        changes["batches"] = args.batches
    if args.batch_time is not None:
        changes["batch_time"] = args.batch_time
    if args.warmup_batches is not None:
        changes["warmup_batches"] = args.warmup_batches
    if args.seed is not None:
        changes["seed"] = args.seed
    return run.with_changes(**changes) if changes else run


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.deadline is not None and args.deadline <= 0:
        parser.error(f"--deadline must be > 0, got {args.deadline}")
    if args.stall_timeout is not None and args.stall_timeout <= 0:
        parser.error(
            f"--stall-timeout must be > 0, got {args.stall_timeout}"
        )
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    try:
        return _dispatch(args)
    except CheckpointMismatchError as error:
        print(f"repro-experiments: error: {error}", file=sys.stderr)
        print(
            "repro-experiments: the checkpoint was written by a "
            "different sweep; re-run with the matching options, or "
            "drop --resume to start fresh",
            file=sys.stderr,
        )
        return 2


def _dispatch(args):
    run = resolve_run(args)
    builder = FigureBuilder(
        run=run,
        mpls=args.mpls,
        algorithms=args.algorithms,
        progress=print_progress,
        inject=scenario(args.inject) if args.inject else None,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
        deadline=args.deadline,
        stall_timeout=args.stall_timeout,
        retries=args.retries,
        workers=args.workers,
    )
    configs = experiment_configs()
    if args.figure is not None:
        data = builder.figure(args.figure)
        print(sweep_report(data.sweep, with_plots=not args.no_plots))
        print()
        print(data.describe())
        if args.csv:
            _export_csv([data.sweep], args.csv)
        return 0 if data.sweep.complete else 1
    if args.experiment is not None:
        experiment_ids = [args.experiment]
    elif args.all:
        experiment_ids = sorted(configs)
    else:
        build_parser().print_help()
        return 2
    sweeps = []
    for experiment_id in experiment_ids:
        sweep = builder.sweep_for(experiment_id)
        sweeps.append(sweep)
        print(sweep_report(sweep, with_plots=not args.no_plots))
        print()
    if args.csv:
        _export_csv(sweeps, args.csv)
    # Partial results exit 1 so schedulers notice degraded sweeps.
    return 0 if all(sweep.complete for sweep in sweeps) else 1


def _export_csv(sweeps, path):
    import csv

    from repro.experiments.export import CSV_COLUMNS, sweep_to_rows

    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        total = 0
        for sweep in sweeps:
            rows = sweep_to_rows(sweep)
            writer.writerows(rows)
            total += len(rows)
    print(f"[wrote {total} rows to {path}]", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
