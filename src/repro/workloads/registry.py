"""Name → workload-model registry (mirrors ``repro.resources.registry``).

``SimulationParameters.workload_model`` is resolved here at model
construction: registration is how the engine and CLI discover models,
and third-party code can plug in new sources with
:func:`register_workload_model` without touching core modules.

Legacy spelling: ``arrival_mode="open"`` predates this registry and is
the same source as ``open_poisson`` — :func:`resolve_workload_model`
maps it onto that model so old configurations keep their exact
behavior (and their exact draws).
"""

from repro.core.params import ARRIVAL_OPEN
from repro.workloads.closed import ClosedClassicWorkload
from repro.workloads.heavy_tailed import HeavyTailedWorkload
from repro.workloads.open_poisson import OpenPoissonWorkload
from repro.workloads.trace import TraceWorkloadModel

__all__ = [
    "create_workload_model",
    "register_workload_model",
    "resolve_workload_model",
    "workload_model_names",
]

_MODELS = {
    cls.name: cls
    for cls in (
        ClosedClassicWorkload,
        OpenPoissonWorkload,
        HeavyTailedWorkload,
        TraceWorkloadModel,
    )
}


def workload_model_names():
    """Registered workload-model names, sorted."""
    return sorted(_MODELS)


def resolve_workload_model(params):
    """The registry name ``params`` selects, legacy spellings included.

    An explicit non-default ``workload_model`` wins; otherwise
    ``arrival_mode="open"`` resolves to ``open_poisson`` and everything
    else to ``closed_classic``.
    """
    if params.workload_model != ClosedClassicWorkload.name:
        return params.workload_model
    if params.arrival_mode == ARRIVAL_OPEN:
        return OpenPoissonWorkload.name
    return ClosedClassicWorkload.name


def create_workload_model(params):
    """Instantiate the workload model ``params`` selects.

    Raises ``ValueError`` for unknown names, listing the registered
    choices (the CLI catches typos earlier, with a did-you-mean).
    """
    name = resolve_workload_model(params)
    cls = _MODELS.get(name)
    if cls is None:
        choices = ", ".join(workload_model_names())
        raise ValueError(
            f"unknown workload model {name!r}; choose from: {choices}"
        )
    return cls(params)


def register_workload_model(cls):
    """Register a workload-model class under ``cls.name`` (decorator-friendly)."""
    name = getattr(cls, "name", "")
    if not name or not isinstance(name, str):
        raise ValueError(
            f"workload model {cls!r} must define a non-empty name"
        )
    _MODELS[name] = cls
    return cls
