"""The workload-model service interface.

A workload model owns *transaction origination*: where transactions
come from (a closed terminal pool, an open arrival stream, a recorded
trace), when they are submitted, and what content generator draws their
read/write sets. Everything below the origination layer — admission
control, CC algorithms, the physical tier, metrics — is untouched by a
model swap, exactly as the resource-model registry decouples the
physical tier (DESIGN.md section 13).

The engine's side of the contract is small:

* ``model.submit(tx)`` — stamp and enqueue a freshly drawn transaction
  (the engine assigns ``done_event``, ``first_submit_time`` and the
  priority timestamp, then applies mpl admission);
* ``model.workload.new_transaction(terminal_id)`` — the content source
  built by :meth:`WorkloadModel.build_generator` (or a caller-supplied
  replacement such as a fastlane tape);
* ``model.streams`` / ``model.env`` — named seeded streams and the
  event loop, for think/arrival timing processes.
"""

from repro.core.workload import WorkloadGenerator

__all__ = ["WorkloadModel"]


class WorkloadModel:
    """Base class for registered workload models.

    Subclasses set ``name`` (the registry key) and override
    :meth:`start` to spawn their origination processes. ``__init__``
    receives the full :class:`~repro.core.params.SimulationParameters`
    and should parse/validate its ``workload_spec`` options eagerly, so
    a bad spec fails at model construction rather than mid-run.
    """

    #: Registry key; subclasses must override.
    name = ""

    #: True for models without a fixed closed population: arrivals are
    #: externally timed, nobody waits on completions, and the backlog
    #: can grow without bound. Enables the open-system metrics and the
    #: saturation detector.
    open_system = False

    #: False when the transaction *content* sequence is not a pure
    #: function of (params, seed) drawn by a WorkloadGenerator — e.g.
    #: trace playback. Non-tapeable models opt out of the fastlane's
    #: shared workload tapes; the batched backend then lets each model
    #: build its own source.
    tapeable = True

    def __init__(self, params):
        self.params = params
        self.options = params.workload_options()

    def build_generator(self, params, streams):
        """The content source drawing each transaction's sets.

        The default is the paper's :class:`WorkloadGenerator`;
        models may return a subclass (heavy-tailed sizes) or a
        different source entirely (trace playback).
        """
        return WorkloadGenerator(params, streams)

    def start(self, model):
        """Spawn this model's origination processes into ``model.env``."""
        raise NotImplementedError

    def summary(self, model):
        """Model-specific totals for the run report, or None.

        Open-system models return arrival/completion accounting and
        the stability verdict here; closed models return None so the
        classic totals dict stays byte-identical.
        """
        return None

    def _require_option(self, key):
        value = self.options.get(key)
        if value is None:
            raise ValueError(
                f"workload model {self.name!r} requires "
                f"workload_spec[{key!r}]"
            )
        return value

    def _unknown_options(self, known):
        unknown = sorted(set(self.options) - set(known))
        if unknown:
            raise ValueError(
                f"unknown workload_spec keys for {self.name!r}: "
                f"{unknown}; known keys: {sorted(known)}"
            )

    def __repr__(self):
        return f"<{type(self).__name__} name={self.name!r}>"
