"""Pluggable workload models: where transactions come from.

The paper's closed terminal pool (``closed_classic``), open Poisson and
MMPP arrivals (``open_poisson``), heavy-tailed think/service demands
(``heavy_tailed``) and deterministic trace playback with feedback
routing (``trace``) — behind one registry, mirroring the resource-model
tier in :mod:`repro.resources`. The engine constructs whichever model
``SimulationParameters.workload_model`` names; everything below the
origination layer is untouched by a model swap.
"""

from repro.workloads.base import WorkloadModel
from repro.workloads.closed import ClosedClassicWorkload
from repro.workloads.heavy_tailed import (
    HeavyTailedGenerator,
    HeavyTailedWorkload,
)
from repro.workloads.open_poisson import OpenPoissonWorkload
from repro.workloads.registry import (
    create_workload_model,
    register_workload_model,
    resolve_workload_model,
    workload_model_names,
)
from repro.workloads.trace import (
    TraceSource,
    TraceWorkloadModel,
    load_workload_trace,
    save_workload_trace,
)

__all__ = [
    "ClosedClassicWorkload",
    "HeavyTailedGenerator",
    "HeavyTailedWorkload",
    "OpenPoissonWorkload",
    "TraceSource",
    "TraceWorkloadModel",
    "WorkloadModel",
    "create_workload_model",
    "load_workload_trace",
    "register_workload_model",
    "resolve_workload_model",
    "save_workload_trace",
    "workload_model_names",
]
