"""The paper's closed terminal pool (``workload_model="closed_classic"``).

A fixed population of ``num_terms`` terminals: each thinks for an
exponential external think time, submits one transaction, waits for it
to complete, and repeats. This is the origination loop that used to be
hard-coded as ``SystemModel._terminal``; it moved here verbatim — same
stream names (``terminal.<id>``), same draw order, same process
creation order — so every seeded run is bit-identical to the
pre-registry engine (pinned by ``tests/resources/test_golden_parity.py``
and ``tests/workloads/test_closed_classic.py``).

Seeding note (the initial stagger): each terminal's *first* draw on its
``terminal.<id>`` stream is an extra think-time sample taken before the
submit loop, so 200 terminals do not all fire simultaneously at t=0.
Every subsequent think time is the stream's next draw. The stagger draw
is part of the fixed seeding scheme — removing or reordering it would
shift every terminal's think sequence and break golden parity.
"""

from repro.workloads.base import WorkloadModel

__all__ = ["ClosedClassicWorkload"]


class ClosedClassicWorkload(WorkloadModel):
    """Fixed terminal population with exponential think times."""

    name = "closed_classic"

    _KNOWN_OPTIONS = ()

    def __init__(self, params):
        super().__init__(params)
        self._unknown_options(self._KNOWN_OPTIONS)

    def start(self, model):
        for terminal_id in range(model.params.num_terms):
            model.env.process(self._terminal(model, terminal_id))

    def _terminal(self, model, terminal_id):
        """One terminal: think, submit, wait for completion, repeat."""
        rng = model.streams.stream(f"terminal.{terminal_id}")
        think_time = model.params.ext_think_time
        # Initial stagger so 200 terminals do not fire simultaneously
        # at t=0 (see the module docstring: this draw is pinned).
        yield model.env.timeout(rng.exponential(think_time))
        while True:
            tx = model.workload.new_transaction(terminal_id)
            model.submit(tx)
            yield tx.done_event
            yield model.env.timeout(rng.exponential(think_time))
