"""Heavy-tailed think and service demands (``workload_model="heavy_tailed"``).

A closed terminal pool like ``closed_classic``, but with the two
exponential/uniform assumptions the paper inherits from its queueing
ancestry replaced by heavy-tailed distributions:

* **Think times** draw from a lognormal (parameterized by mean =
  ``ext_think_time`` and a coefficient of variation) or a Pareto
  (shape ``think_alpha``, same mean) instead of the exponential.
* **Service demand** is realized through the read-set size: every read
  object costs ``obj_io + obj_cpu``, so a heavy-tailed size
  distribution *is* a heavy-tailed service-time distribution. Sizes
  draw from a lognormal or Pareto with mean ``(min_size+max_size)/2``
  (per class, under a workload mix), rounded and clamped to
  ``[1, size_cap]`` (default: the database size).

Fitted presets package parameter sets from the empirical literature on
OLTP/web workloads (lognormal think times with CV 2–4, Pareto service
demands with shape 1.2–1.6 — the self-similarity range where variance
is unbounded):

* ``web_sessions`` — bursty human think (lognormal, CV 3) over
  Pareto service demands (shape 1.5);
* ``oltp_tail``    — mild think burstiness (lognormal, CV 1.5) with a
  lognormal service tail (CV 2), the "mostly small transactions, rare
  huge ones" shape of payment workloads.

Any preset field can be overridden by an explicit spec key.
"""

from repro.core.workload import WorkloadGenerator
from repro.workloads.base import WorkloadModel

__all__ = ["HeavyTailedGenerator", "HeavyTailedWorkload"]

_DISTRIBUTIONS = ("lognormal", "pareto")

#: Fitted parameter presets (selected via ``workload_spec["preset"]``).
PRESETS = {
    "web_sessions": {
        "think_dist": "lognormal", "think_cv": 3.0,
        "size_dist": "pareto", "size_alpha": 1.5,
    },
    "oltp_tail": {
        "think_dist": "lognormal", "think_cv": 1.5,
        "size_dist": "lognormal", "size_cv": 2.0,
    },
}

_DEFAULTS = {
    "think_dist": "lognormal", "think_cv": 2.0, "think_alpha": 1.5,
    "size_dist": "lognormal", "size_cv": 2.0, "size_alpha": 1.5,
    "size_cap": None,
}


class HeavyTailedWorkload(WorkloadModel):
    """Closed terminal pool with lognormal/Pareto think and service."""

    name = "heavy_tailed"

    _KNOWN_OPTIONS = (
        "preset", "think_dist", "think_cv", "think_alpha",
        "size_dist", "size_cv", "size_alpha", "size_cap",
    )

    def __init__(self, params):
        super().__init__(params)
        self._unknown_options(self._KNOWN_OPTIONS)
        settings = dict(_DEFAULTS)
        preset = self.options.get("preset")
        if preset is not None:
            if preset not in PRESETS:
                raise ValueError(
                    f"unknown heavy_tailed preset {preset!r}; choose "
                    f"from: {', '.join(sorted(PRESETS))}"
                )
            settings.update(PRESETS[preset])
        settings.update(
            (k, v) for k, v in self.options.items() if k != "preset"
        )
        self.think_dist = settings["think_dist"]
        self.size_dist = settings["size_dist"]
        for which, dist in (("think_dist", self.think_dist),
                            ("size_dist", self.size_dist)):
            if dist not in _DISTRIBUTIONS:
                raise ValueError(
                    f"{which} must be one of {_DISTRIBUTIONS}, got {dist!r}"
                )
        self.think_cv = float(settings["think_cv"])
        self.think_alpha = float(settings["think_alpha"])
        self.size_cv = float(settings["size_cv"])
        self.size_alpha = float(settings["size_alpha"])
        if self.think_cv < 0 or self.size_cv < 0:
            raise ValueError("coefficients of variation must be >= 0")
        for which, alpha in (("think_alpha", self.think_alpha),
                             ("size_alpha", self.size_alpha)):
            if alpha <= 1.0:
                raise ValueError(
                    f"{which} must be > 1 (finite mean), got {alpha}"
                )
        cap = settings["size_cap"]
        self.size_cap = params.db_size if cap is None else int(cap)
        if not 1 <= self.size_cap <= params.db_size:
            raise ValueError(
                f"size_cap must be in [1, db_size], got {self.size_cap}"
            )

    def build_generator(self, params, streams):
        return HeavyTailedGenerator(params, streams, self)

    def draw_think(self, rng, mean):
        """One think-time sample from the configured tail."""
        if mean == 0:
            return 0.0
        if self.think_dist == "lognormal":
            return rng.lognormal(mean, self.think_cv)
        return rng.pareto(self.think_alpha, mean)

    def draw_service(self, rng, mean):
        """One continuous service-size sample (pre-round, pre-clamp)."""
        if self.size_dist == "lognormal":
            return rng.lognormal(mean, self.size_cv)
        return rng.pareto(self.size_alpha, mean)

    def start(self, model):
        for terminal_id in range(model.params.num_terms):
            model.env.process(self._terminal(model, terminal_id))

    def _terminal(self, model, terminal_id):
        """Closed-loop terminal with heavy-tailed think times.

        Same loop shape and ``terminal.<id>`` stream naming as
        ``closed_classic`` (including the initial stagger draw); only
        the think distribution differs.
        """
        rng = model.streams.stream(f"terminal.{terminal_id}")
        mean = model.params.ext_think_time
        yield model.env.timeout(self.draw_think(rng, mean))
        while True:
            tx = model.workload.new_transaction(terminal_id)
            model.submit(tx)
            yield tx.done_event
            yield model.env.timeout(self.draw_think(rng, mean))


class HeavyTailedGenerator(WorkloadGenerator):
    """WorkloadGenerator with a heavy-tailed read-set size draw.

    Only ``_draw_size`` changes: the object and write-flag draws — and
    their streams — are exactly the base generator's, so hotspot skew
    and workload mixes compose unchanged. The continuous draw is
    rounded to the nearest integer and clamped to ``[1, size_cap]``
    (an untruncated Pareto would occasionally ask for more objects
    than the database holds).
    """

    def __init__(self, params, streams, model):
        super().__init__(params, streams)
        self._model = model

    def _draw_size(self, min_size, max_size):
        mean = (min_size + max_size) / 2.0
        value = self._model.draw_service(self._size_rng, mean)
        return max(1, min(int(round(value)), self._model.size_cap))
