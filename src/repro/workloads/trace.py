"""Deterministic trace playback (``workload_model="trace"``).

Plays a recorded transaction stream back into the engine: each JSONL
record names a transaction's read/write sets, an optional arrival time,
and an optional class tag. Playback is deterministic — same trace, same
seed, same run — which makes recorded production workloads and
hand-built adversarial schedules directly replayable under any CC
algorithm and any physical tier.

Record format (a superset of :mod:`repro.core.replay`'s):

    {"reads": [1, 5, 9], "writes": [5], "at": 0.25, "class": "small"}

``at`` is the absolute submission time within the trace (nondecreasing
when present); records without ``at`` arrive on a fixed deterministic
grid of ``1/rate`` seconds (``rate`` defaults to
``params.arrival_rate``). ``writes`` must be a subset of ``reads``.

**Feedback / re-entry routing.** With ``feedback_prob > 0``, each
*completed* transaction re-enters the system with that probability
after an exponential ``feedback_delay`` — the probabilistic routing of
open queueing networks. A re-entry is a fresh transaction (new id, own
response time) carrying ``reentry_of`` so the invariant checker can
verify flow balance: re-entries never exceed completions. Feedback
draws come from a dedicated ``trace_feedback`` stream, so the trace
itself replays identically whether or not routing is enabled.

Spec keys: ``path`` (required), ``rate``, ``cycle`` (replay the trace
cyclically instead of stopping at its end), ``feedback_prob``,
``feedback_delay``.
"""

import json
from itertools import count

from repro.core.transaction import Transaction
from repro.workloads.base import WorkloadModel

__all__ = ["TraceWorkloadModel", "TraceSource", "load_workload_trace",
           "save_workload_trace"]


def load_workload_trace(path):
    """Parse a workload-trace JSONL file into validated record tuples.

    Returns a list of ``(at, reads, writes, tx_class)`` tuples with
    ``at`` possibly None. Validation mirrors
    :func:`repro.core.replay.load_trace`: reads must be distinct,
    writes a subset of reads, arrival times nondecreasing.
    """
    records = []
    last_at = None
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSON ({error})"
                ) from None
            reads = tuple(payload.get("reads", ()))
            writes = frozenset(payload.get("writes", ()))
            if not reads:
                raise ValueError(f"{path}:{lineno}: empty read set")
            if len(set(reads)) != len(reads):
                raise ValueError(f"{path}:{lineno}: duplicate reads")
            if not writes <= set(reads):
                raise ValueError(
                    f"{path}:{lineno}: writes must be a subset of reads"
                )
            at = payload.get("at")
            if at is not None:
                at = float(at)
                if at < 0:
                    raise ValueError(
                        f"{path}:{lineno}: negative arrival time {at}"
                    )
                if last_at is not None and at < last_at:
                    raise ValueError(
                        f"{path}:{lineno}: arrival times must be "
                        f"nondecreasing ({at} after {last_at})"
                    )
                last_at = at
            records.append((at, reads, writes, payload.get("class")))
    if not records:
        raise ValueError(f"{path}: trace holds no records")
    return records


def save_workload_trace(path, records):
    """Write ``(at, reads, writes, tx_class)`` tuples as trace JSONL."""
    with open(path, "w", encoding="utf-8") as handle:
        for at, reads, writes, tx_class in records:
            payload = {"reads": list(reads), "writes": sorted(writes)}
            if at is not None:
                payload["at"] = at
            if tx_class is not None:
                payload["class"] = tx_class
            handle.write(json.dumps(payload) + "\n")


class TraceSource:
    """The trace model's content source (the engine's ``workload``).

    Deals records in order (cycling when configured), satisfying the
    workload protocol (``new_transaction`` + ``generated``); re-entries
    mint fresh transactions that inherit a parent's sets.
    """

    def __init__(self, records, cycle):
        self.records = records
        self.cycle = cycle
        self.generated = 0
        self.reentries = 0
        self._ids = count(1)

    @property
    def exhausted(self):
        return not self.cycle and self.generated >= len(self.records)

    def new_transaction(self, terminal_id):
        index = self.generated
        if self.cycle:
            index %= len(self.records)
        _, reads, writes, tx_class = self.records[index]
        self.generated += 1
        tx = Transaction(
            tx_id=next(self._ids),
            terminal_id=terminal_id,
            read_set=reads,
            write_set=writes,
        )
        tx.tx_class = tx_class
        return tx

    def reentry_transaction(self, parent):
        """A fresh transaction re-entering with ``parent``'s sets."""
        self.reentries += 1
        tx = Transaction(
            tx_id=next(self._ids),
            terminal_id=parent.terminal_id,
            read_set=parent.read_set,
            write_set=parent.write_set,
        )
        tx.tx_class = parent.tx_class
        tx.reentry_of = parent.id
        return tx


class TraceWorkloadModel(WorkloadModel):
    """Deterministic JSONL playback with probabilistic feedback."""

    name = "trace"
    open_system = True
    #: Trace content comes from a file, not a (params, seed)-pure
    #: generator: fastlane tapes must not try to share it.
    tapeable = False

    _KNOWN_OPTIONS = ("path", "rate", "cycle", "feedback_prob",
                      "feedback_delay")

    def __init__(self, params):
        super().__init__(params)
        self._unknown_options(self._KNOWN_OPTIONS)
        self.path = self._require_option("path")
        self.cycle = bool(self.options.get("cycle", False))
        self.rate = float(self.options.get("rate", params.arrival_rate))
        if self.rate <= 0:
            raise ValueError(f"trace rate must be > 0, got {self.rate}")
        self.feedback_prob = float(self.options.get("feedback_prob", 0.0))
        if not 0.0 <= self.feedback_prob < 1.0:
            raise ValueError(
                f"feedback_prob must be in [0, 1), got "
                f"{self.feedback_prob}"
            )
        self.feedback_delay = float(
            self.options.get("feedback_delay", 0.0)
        )
        if self.feedback_delay < 0:
            raise ValueError(
                f"feedback_delay must be >= 0, got {self.feedback_delay}"
            )
        self.records = load_workload_trace(self.path)

    def build_generator(self, params, streams):
        return TraceSource(self.records, self.cycle)

    def summary(self, model):
        payload = {
            "trace_records": len(self.records),
            "feedback_prob": self.feedback_prob,
        }
        reentries = getattr(model.workload, "reentries", None)
        if reentries is not None:
            payload["reentries"] = reentries
        return payload

    def start(self, model):
        model.env.process(self._playback(model))

    def _arrival_gaps(self):
        """Per-record inter-arrival gaps, one trace pass."""
        gaps = []
        previous = 0.0
        grid = 1.0 / self.rate
        for at, _, _, _ in self.records:
            if at is None:
                gaps.append(grid)
                previous += grid
            else:
                gaps.append(max(0.0, at - previous))
                previous = at
        return gaps

    def _playback(self, model):
        env = model.env
        source = model.workload
        gaps = self._arrival_gaps()
        index = 0
        while True:
            if getattr(source, "exhausted", False):
                return
            if not self.cycle and index >= len(gaps):
                return
            gap = gaps[index % len(gaps)]
            if gap > 0:
                yield env.timeout(gap)
            tx = source.new_transaction(terminal_id=0)
            self._submit_with_feedback(model, tx)
            index += 1

    def _submit_with_feedback(self, model, tx):
        model.submit(tx)
        if self.feedback_prob > 0:
            model.env.process(self._feedback_watcher(model, tx))

    def _feedback_watcher(self, model, tx):
        """Route a completed transaction back in with feedback_prob."""
        yield tx.done_event
        rng = model.streams.stream("trace_feedback")
        if not rng.bernoulli(self.feedback_prob):
            return
        delay = rng.exponential(self.feedback_delay)
        if delay > 0:
            yield model.env.timeout(delay)
        source = model.workload
        reentry = getattr(source, "reentry_transaction", None)
        if reentry is None:
            return
        # The re-entry is itself subject to further feedback — the
        # geometric visit count of a feedback queueing network.
        self._submit_with_feedback(model, reentry(tx))
