"""Open arrival sources (``workload_model="open_poisson"``).

Replaces the terminal population with an externally timed arrival
stream. Nobody waits on completion, so the ready queue grows without
bound when the offered load exceeds the system's capacity — exactly the
behavior an open model exposes and a closed model hides. The
open-system metrics (``totals["open_system"]``) and the stability
detector (:mod:`repro.stats.stability`) report that saturation instead
of letting a diverging run masquerade as a slow one.

Two arrival processes, selected by ``workload_spec``:

* ``process="poisson"`` (default) — Poisson arrivals at
  ``rate`` transactions/second (default: ``params.arrival_rate``).
  This is bit-identical to the legacy ``arrival_mode="open"`` source
  (same ``open_arrivals`` stream, same draws), which now resolves to
  this model.
* ``process="mmpp"`` — a Markov-modulated Poisson process:
  ``rates=(r0, r1, ...)`` gives the per-phase arrival rates and
  ``sojourns=(s0, s1, ...)`` the mean (exponential) phase dwell times;
  phases rotate cyclically (two phases = the classic interrupted /
  bursty Poisson source). Phase sojourns draw from a dedicated
  ``open_mmpp_phase`` stream so the arrival stream's draws stay
  comparable across processes.
"""

from repro.workloads.base import WorkloadModel

__all__ = ["OpenPoissonWorkload"]


class OpenPoissonWorkload(WorkloadModel):
    """Poisson or MMPP open arrivals with mpl-capped admission."""

    name = "open_poisson"
    open_system = True

    _KNOWN_OPTIONS = ("process", "rate", "rates", "sojourns")

    def __init__(self, params):
        super().__init__(params)
        self._unknown_options(self._KNOWN_OPTIONS)
        self.process_kind = self.options.get("process", "poisson")
        if self.process_kind not in ("poisson", "mmpp"):
            raise ValueError(
                f"open_poisson process must be 'poisson' or 'mmpp', "
                f"got {self.process_kind!r}"
            )
        if self.process_kind == "poisson":
            self.rate = float(self.options.get("rate", params.arrival_rate))
            if self.rate <= 0:
                raise ValueError(
                    f"open_poisson rate must be > 0, got {self.rate}"
                )
            self.rates = None
            self.sojourns = None
        else:
            rates = self._require_option("rates")
            sojourns = self._require_option("sojourns")
            self.rates = tuple(float(r) for r in rates)
            self.sojourns = tuple(float(s) for s in sojourns)
            if len(self.rates) < 2:
                raise ValueError("mmpp needs at least two phase rates")
            if len(self.rates) != len(self.sojourns):
                raise ValueError(
                    f"mmpp rates ({len(self.rates)}) and sojourns "
                    f"({len(self.sojourns)}) must pair up"
                )
            if any(r < 0 for r in self.rates) or all(
                r == 0 for r in self.rates
            ):
                raise ValueError(
                    "mmpp phase rates must be >= 0 with at least one > 0"
                )
            if any(s <= 0 for s in self.sojourns):
                raise ValueError("mmpp sojourns must be > 0")
            self.rate = None

    def mean_rate(self):
        """Time-averaged arrival rate (sojourn-weighted for MMPP)."""
        if self.process_kind == "poisson":
            return self.rate
        weight = sum(self.sojourns)
        return sum(
            r * s for r, s in zip(self.rates, self.sojourns)
        ) / weight

    def summary(self, model):
        return {
            "process": self.process_kind,
            "offered_rate": self.mean_rate(),
        }

    def start(self, model):
        if self.process_kind == "poisson":
            model.env.process(self._poisson_source(model))
        else:
            model.env.process(self._mmpp_source(model))

    def _poisson_source(self, model):
        """Poisson arrivals; draw-identical to the legacy open source."""
        rng = model.streams.stream("open_arrivals")
        mean_interarrival = 1.0 / self.rate
        while True:
            yield model.env.timeout(rng.exponential(mean_interarrival))
            model.submit(model.workload.new_transaction(terminal_id=0))

    def _mmpp_source(self, model):
        """Cyclic-phase MMPP arrivals via competing exponentials.

        In each phase, the next-arrival candidate competes with the
        phase's end; a candidate past the boundary is discarded and
        redrawn in the new phase (memorylessness makes the redraw
        distributionally exact). A zero-rate phase emits nothing and
        just dwells.
        """
        env = model.env
        rng = model.streams.stream("open_arrivals")
        phase_rng = model.streams.stream("open_mmpp_phase")
        phase = 0
        phase_end = env.now + phase_rng.exponential(self.sojourns[0])
        while True:
            rate = self.rates[phase]
            arrival = (
                env.now + rng.exponential(1.0 / rate) if rate > 0
                else float("inf")
            )
            if arrival >= phase_end:
                yield env.timeout(phase_end - env.now)
                phase = (phase + 1) % len(self.rates)
                phase_end = env.now + phase_rng.exponential(
                    self.sojourns[phase]
                )
                continue
            yield env.timeout(arrival - env.now)
            model.submit(model.workload.new_transaction(terminal_id=0))
