"""repro.chaos — harness-level fault injection for chaos testing.

Distinct from :mod:`repro.faults`, which injects *modeled* faults (disk
crashes, CPU degradation) **inside** the simulated world and is part of
an experiment's parameters. This package attacks the **harness
itself** — the processes, files and syscalls a sweep depends on — so
tests can prove the supervision and persistence layers recover:

* :class:`ChaosSpec` — a seeded, picklable plan of worker-level
  mayhem: SIGKILL a worker when it starts a named grid point, or hang
  it past its deadline. Trips are one-shot (a marker file in
  ``state_dir`` records each firing), so a resumed sweep runs clean —
  exactly the kill-then-recover scenario the chaos parity tests
  assert byte-identical results for.
* :func:`truncate_tail` / :func:`garble_tail` — deterministically
  destroy the trailing bytes of a checkpoint, simulating a kill
  mid-write or torn sectors.
* :class:`FlakyFsync` — make the persistence layer's fsync fail for
  the next N calls, proving atomic writes leave the previous good
  file intact.

Everything here is deterministic given the spec/seed, and nothing here
touches the simulation's RNG streams: chaos changes *when the harness
dies*, never *what the model computes*, which is what makes
"killed-and-resumed equals fault-free" a meaningful guarantee.
"""

from repro.chaos.spec import ChaosSpec
from repro.chaos.storage import FlakyFsync, garble_tail, truncate_tail

__all__ = [
    "ChaosSpec",
    "FlakyFsync",
    "garble_tail",
    "truncate_tail",
]
