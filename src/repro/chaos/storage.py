"""Storage-level chaos: checkpoint corruption and fsync failure.

These helpers deterministically reproduce what real crashes do to
files — a kill mid-write leaves a truncated tail, torn sectors leave
garbled bytes, a dying disk fails fsync — so the recovery tests in
``tests/experiments/test_recovery.py`` can assert the persistence
layer's guarantees: CRC-guarded salvage of the valid prefix, and
atomic replace-writes that never destroy the previous good file.
"""

import os

from repro.experiments import persistence as _persistence

__all__ = ["FlakyFsync", "garble_tail", "truncate_tail"]


def truncate_tail(path, nbytes):
    """Chop the last ``nbytes`` off a file (a kill mid-write).

    Returns the new size. Truncating more bytes than the file holds
    empties it, which models a crash during the very first write.
    """
    size = os.path.getsize(path)
    new_size = max(0, size - nbytes)
    with open(path, "r+b") as f:
        f.truncate(new_size)
    return new_size


def garble_tail(path, nbytes, seed=0):
    """Deterministically corrupt the last ``nbytes`` of a file.

    Bytes are XORed with a non-zero mask derived from ``seed``, so the
    damage is reproducible and never a no-op (the mask cannot be 0).
    Models torn sectors: the file keeps its length but its tail is
    trash, which only a per-record checksum can detect.
    """
    size = os.path.getsize(path)
    nbytes = min(nbytes, size)
    if nbytes == 0:
        return 0
    with open(path, "r+b") as f:
        f.seek(size - nbytes)
        tail = bytearray(f.read(nbytes))
        for index in range(len(tail)):
            tail[index] ^= 1 + ((seed + index) % 255)
        f.seek(size - nbytes)
        f.write(bytes(tail))
    return nbytes


class FlakyFsync:
    """Context manager: the persistence layer's next fsyncs fail.

    Patches the ``repro.experiments.persistence`` module's fsync seam
    so the next ``failures`` calls raise ``OSError(EIO)``; later calls
    (and everything outside the ``with`` block) behave normally. Used
    to prove atomic writes abandon their tmp file and leave the
    previous good file untouched when durability cannot be assured.
    """

    def __init__(self, failures=1):
        self.failures = failures
        self.calls = 0
        self._original = None

    def _fsync(self, fd):
        self.calls += 1
        if self.calls <= self.failures:
            raise OSError(5, "Input/output error (injected by FlakyFsync)")
        return self._original(fd)

    def __enter__(self):
        self._original = _persistence._fsync
        _persistence._fsync = self._fsync
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        _persistence._fsync = self._original
        return False
