"""ChaosSpec: a seeded, one-shot plan of worker-level harness faults.

The sweep runner calls :meth:`ChaosSpec.on_point_start` at the top of
every point attempt (both in-process and inside pool workers — the
spec is a frozen dataclass of plain values, so it pickles cleanly).
When the attempt matches a planned fault and that fault has not fired
yet, the process kills or hangs itself *right there* — before any
result can reach the checkpoint — which is the worst case for the
supervision layer.

One-shot semantics are what make recovery provable: each fault records
its firing as a marker file in ``state_dir`` **before** acting, so the
retried/resumed attempt runs clean. A killed-and-resumed sweep must
therefore produce results byte-identical to a never-killed one
(per-point seeds are pure functions of the grid key; see
``repro.experiments.runner.point_seed``).
"""

import os
import signal
import time
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ChaosSpec"]


@dataclass(frozen=True)
class ChaosSpec:
    """A plan of harness-level faults for one sweep.

    ``state_dir`` holds the one-shot marker files (created on demand);
    ``kill_point`` names the (algorithm, mpl) grid point whose first
    attempt SIGKILLs its process; ``hang_point`` names the point whose
    first attempt sleeps ``hang_seconds`` — long enough to outlive any
    in-worker deadline, so only the parent backstop can end it.
    """

    state_dir: str
    kill_point: Optional[Tuple[str, int]] = None
    hang_point: Optional[Tuple[str, int]] = None
    hang_seconds: float = 3600.0

    def marker_path(self, action, algorithm, mpl):
        """The marker file recording one fault's firing."""
        return os.path.join(
            self.state_dir, f"chaos.{action}.{algorithm}.mpl{mpl}"
        )

    def _arm(self, action, algorithm, mpl):
        """True exactly once per fault: creates the marker atomically.

        ``O_EXCL`` makes creation the test-and-set, so even two racing
        workers cannot both fire the same fault. The marker must exist
        *before* the fault acts — a SIGKILL cannot be followed by
        bookkeeping.
        """
        os.makedirs(self.state_dir, exist_ok=True)
        try:
            fd = os.open(
                self.marker_path(action, algorithm, mpl),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def on_point_start(self, algorithm, mpl):
        """Fire any planned fault for this grid point (first time only)."""
        key = (algorithm, mpl)
        if self.kill_point == key and self._arm("kill", algorithm, mpl):
            # SIGKILL, not sys.exit: no cleanup, no flushing, no
            # executor goodbye — the hardest death available.
            os.kill(os.getpid(), signal.SIGKILL)
        if self.hang_point == key and self._arm("hang", algorithm, mpl):
            time.sleep(self.hang_seconds)

    def describe(self):
        """Stable one-line signature (diagnostics, progress lines)."""
        parts = []
        if self.kill_point is not None:
            parts.append(f"kill={self.kill_point[0]}@{self.kill_point[1]}")
        if self.hang_point is not None:
            parts.append(
                f"hang={self.hang_point[0]}@{self.hang_point[1]}"
                f"x{self.hang_seconds:g}s"
            )
        return "chaos(" + ", ".join(parts or ["null"]) + ")"
