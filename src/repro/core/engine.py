"""The queuing model of a single-site DBMS (paper Figure 1).

Transactions originate from the configured workload model (see
:mod:`repro.workloads`) — the paper's closed terminal pool by default.
At most ``mpl`` transactions are *active* (receiving or waiting for
service inside the DBMS) at once; excess arrivals wait in the ready
queue. An active
transaction alternates concurrency-control requests with object accesses
(all reads first, then all writes), optionally thinks between its reads
and writes (interactive workloads), then reaches its commit point,
writes its deferred updates, and completes. A restarted transaction
re-runs with the *same* read and write sets, re-entering the back of the
ready queue after an optional restart delay.

Every operational signal leaves the engine through one instrumentation
bus (:mod:`repro.obs`): metrics, tracing, committed-history recording
and any extra subscribers all consume the same event stream. With only
the default metrics subscriber attached, optional high-volume kinds
(commit points, CC grants, resource busy/idle) are skipped before their
event fields are even built.
"""

from collections import deque
from itertools import count

from repro.cc import (
    DELAY_ADAPTIVE,
    DELAY_NONE,
    INSTALL_AT_PRE_COMMIT,
    ConcurrencyControl,
    RestartTransaction,
    create_algorithm,
    create_commit_protocol,
)
from repro.core.errors import RestartLivelockError
from repro.core.history import CommittedRecord
from repro.core.metrics import MetricsCollector
from repro.core.params import (
    DELAY_MODE_ADAPTIVE_ALL,
    DELAY_MODE_DEFAULT,
    DELAY_MODE_FIXED_ALL,
    DELAY_MODE_NONE_ALL,
)
from repro.core.store import ObjectStore
from repro.core.transaction import TxState
from repro.des import Environment, Interrupt, StreamFactory
from repro.faults import FaultInjector
from repro.obs import (
    HistorySubscriber,
    InstrumentationBus,
    MetricsSubscriber,
    TraceSubscriber,
)
from repro.obs.events import (
    CC_GRANT,
    TX_ADMIT,
    TX_BLOCK,
    TX_COMMIT_POINT,
    TX_COMPLETE,
    TX_RESTART,
    TX_RESUBMIT,
    TX_SUBMIT,
)
from repro.resources import create_resource_model
from repro.workloads import create_workload_model

__all__ = ["SystemModel", "CommittedRecord"]


class SystemModel:
    """One configured instance of the complete database model.

    Implements the :class:`repro.cc.EngineHooks` protocol (block counting
    and remote aborts) for the attached algorithm.

    ``subscribers`` attaches additional instrumentation-bus consumers
    (e.g. :class:`repro.obs.TimeSeriesSampler`,
    :class:`repro.obs.JsonlSink`); ``tracer`` and ``record_history``
    remain as conveniences that attach the corresponding built-in
    subscribers.
    """

    def __init__(self, params, algorithm="blocking", seed=42,
                 record_history=False, tracer=None, workload=None,
                 subscribers=()):
        self.params = params
        self.env = Environment()
        #: The unified instrumentation bus all events flow through.
        self.bus = InstrumentationBus(self.env)
        #: Optional repro.des.trace.TraceRecorder receiving transaction
        #: lifecycle (and every other) event via a TraceSubscriber.
        self.tracer = tracer
        self.streams = StreamFactory(seed)
        if isinstance(algorithm, ConcurrencyControl):
            self.cc = algorithm
        else:
            self.cc = create_algorithm(algorithm)
        self.cc.attach(self.env, hooks=self)
        #: The origination layer, constructed from the workload-model
        #: registry (repro.workloads) per params.workload_model.
        self.workload_model = create_workload_model(params)
        # Anything with a new_transaction(terminal_id) method works as a
        # workload source; the fastlane substitutes tape replays here.
        self.workload = workload or self.workload_model.build_generator(
            params, self.streams
        )
        #: The commit-protocol seam around the commit point (repro.cc):
        #: the paper's atomic ``single_site`` point by default, or 2PC
        #: for multi-site runs. A null protocol keeps the commit path
        #: bit-identical to pre-seam builds (one truth test per commit).
        self.commit_protocol = create_commit_protocol(
            params.commit_protocol
        ).attach(self)
        self._protocol_active = not self.commit_protocol.is_null
        #: The physical tier, constructed from the resource-model
        #: registry (repro.resources) per params.resource_model.
        self.physical = create_resource_model(
            params.resource_model, self.env, params, self.streams,
            bus=self.bus,
        )
        #: Fault injector driving params.faults, or None when the run
        #: is healthy. A null spec starts no injector at all, so the
        #: healthy path stays bit-identical to pre-fault builds.
        self.fault_injector = None
        if params.faults is not None and not params.faults.is_null:
            self.fault_injector = FaultInjector(
                self.env, params.faults, self.physical, self.streams,
                bus=self.bus,
            ).start()
        self.metrics = MetricsCollector(
            self.env, params, self.physical,
            open_system=self.workload_model.open_system,
        )
        # Subscriber attach order fixes dispatch order: metrics first
        # (the default fast path), then tracing/history, then caller
        # extras.
        self.bus.attach(MetricsSubscriber(self.metrics), model=self)
        if tracer is not None:
            self.bus.attach(TraceSubscriber(tracer), model=self)
        self._history = None
        if record_history:
            self._history = self.bus.attach(HistorySubscriber(), model=self)
        for subscriber in subscribers:
            self.bus.attach(subscriber, model=self)
        self.store = ObjectStore()
        self.ready_queue = deque()
        self.active_count = 0
        #: Admission limit; starts at params.mpl. Mutable at run time so
        #: adaptive controllers (repro.analysis.adaptive) can retune it.
        self.mpl_limit = params.mpl
        self._ts_seq = count()
        self._same_instant_restarts = {}
        self._int_think_rng = self.streams.stream("int_think")
        self._restart_delay_rng = self.streams.stream("restart_delay")
        self.workload_model.start(self)

    @property
    def committed_history(self):
        """CommittedRecords of this run (None without record_history)."""
        return None if self._history is None else self._history.records

    # -- EngineHooks protocol ------------------------------------------------

    def count_block(self, tx):
        self.bus.emit(TX_BLOCK, tx=tx)

    def abort_remote(self, tx, error):
        """Abort a transaction that is not waiting on a CC event.

        Used by wound-wait for victims that are running, queued at a
        resource, or thinking. Interrupting unwinds the victim's process;
        its resource context managers release cleanly.
        """
        process = tx.process
        if process is not None and process.is_alive:
            process.interrupt(error)

    # -- timestamps --------------------------------------------------------------

    def next_timestamp(self):
        """A unique, strictly increasing (time, sequence) timestamp."""
        return (self.env.now, next(self._ts_seq))

    # -- submission and admission control --------------------------------------------

    def submit(self, tx):
        """Submit a freshly originated transaction into the ready queue.

        The workload model's side of the origination contract: the
        engine stamps completion event, first-submit time and priority
        timestamp — in this exact order, which the golden parity suite
        pins — then applies mpl admission. For sources that never wait
        on completion (open models), ``done_event`` simply succeeds
        unobserved.
        """
        tx.done_event = self.env.event()
        tx.first_submit_time = self.env.now
        tx.priority_ts = self.next_timestamp()
        self._enqueue_ready(tx)

    def _enqueue_ready(self, tx):
        """Append to the back of the ready queue and admit if possible."""
        tx.state = TxState.READY
        self.ready_queue.append(tx)
        if tx.attempts == 0:
            self.bus.emit(TX_SUBMIT, tx=tx)
        else:
            self.bus.emit(TX_RESUBMIT, tx=tx)
        self._try_admit()

    def _try_admit(self):
        while self.ready_queue and self.active_count < self.mpl_limit:
            self._start_attempt(self.ready_queue.popleft())

    def _start_attempt(self, tx):
        self.active_count += 1
        tx.begin_attempt(self.env.now, self.next_timestamp())
        self._assign_cc_units(tx)
        self.cc.begin(tx)
        self.bus.emit(TX_ADMIT, tx=tx)
        tx.process = self.env.process(self._execute(tx))

    def _leave_active(self, tx):
        self.active_count -= 1
        self._try_admit()

    # -- transaction execution --------------------------------------------------

    def _assign_cc_units(self, tx):
        """Map the read/write sets onto concurrency-control units.

        Object-level CC (the paper's setting) is the identity; with
        ``lock_granules`` set, objects collapse onto granules and the
        algorithms see granule ids everywhere — the Ries-style
        granularity trade-off.
        """
        params = self.params
        if params.lock_granules is None:
            tx.cc_read_set = tx.read_set
            tx.cc_write_set = tx.write_set
            return
        seen = []
        for obj in tx.read_set:
            unit = params.cc_unit_of(obj)
            if unit not in seen:
                seen.append(unit)
        tx.cc_read_set = tuple(seen)
        tx.cc_write_set = frozenset(
            params.cc_unit_of(obj) for obj in tx.write_set
        )

    def _execute(self, tx):
        """One attempt: reads, (think,) writes, commit point, updates."""
        cc = self.cc
        store = self.store
        physical = self.physical
        params = self.params
        cc_unit = params.cc_unit_of
        reads_seen = tx.reads_seen
        bus = self.bus
        has_cc_work = physical.has_cc_work
        read_request = cc.read_request
        read_access = physical.read_access
        store_read = store.read
        try:
            for obj in tx.read_set:
                # Inline of _cc_request for the read leg: one request
                # per object on the hottest loop of the simulator, so
                # the grant fast path must not build a sub-generator.
                if has_cc_work:
                    yield from physical.cc_request_work(tx)
                unit = cc_unit(obj)
                while True:
                    event = read_request(tx, unit)
                    if event is None:
                        if bus.wants_cc:
                            bus.emit(CC_GRANT, tx=tx, obj=unit, op="read")
                        break
                    tx.state = TxState.BLOCKED
                    yield event
                    tx.state = TxState.RUNNING
                version = store_read(obj, cc.reader_version_key(tx))
                reads_seen[obj] = version.writer_id
                yield from read_access(tx, obj)

            if params.int_think_time > 0.0:
                tx.state = TxState.THINKING
                yield self.env.timeout(
                    self._int_think_rng.exponential(
                        params.int_think_time
                    )
                )
                tx.state = TxState.RUNNING

            for obj in self._write_order(tx):
                yield from self._cc_request(
                    tx, cc.write_request, cc_unit(obj), "write"
                )
                yield from physical.write_request_work(tx, obj)

            # The prepare window: the commit protocol collects votes
            # (2PC round trips) before the algorithm's own commit-point
            # processing; locks stay held until finalize_commit below.
            if self._protocol_active:
                yield from self.commit_protocol.prepare(tx)

            # The commit point: validation (a concurrency-control request).
            if physical.has_cc_work:
                yield from physical.cc_request_work(tx)
            event = cc.pre_commit(tx)
            if event is not None:
                tx.state = TxState.BLOCKED
                yield event
                tx.state = TxState.RUNNING
            tx.serial_key = cc.serial_key(tx) or self.next_timestamp()
            if tx.to_skipped_writes:
                # Thomas-rule skips are expressed in CC units; filter
                # the object-level writes they cover.
                tx.install_write_set = frozenset(
                    obj for obj in tx.write_set
                    if cc_unit(obj) not in tx.to_skipped_writes
                )
            if cc.install_at == INSTALL_AT_PRE_COMMIT:
                self._install_writes(tx)
            tx.state = TxState.COMMITTING
            # The decision stage: distribute the commit outcome to the
            # prepared participants before the deferred updates ship.
            if self._protocol_active:
                yield from self.commit_protocol.decide(tx)

            for obj in tx.install_write_set:
                yield from physical.deferred_update(tx, obj)
            if cc.install_at != INSTALL_AT_PRE_COMMIT:
                self._install_writes(tx)
            cc.finalize_commit(tx)
            self._complete_commit(tx)
        except RestartTransaction as error:
            self._handle_restart(tx, error)
        except Interrupt as interrupt:
            cause = interrupt.cause
            if not isinstance(cause, RestartTransaction):
                raise
            self._handle_restart(tx, cause)

    def _cc_request(self, tx, request_method, obj, op):
        """Issue one CC request, waiting (possibly repeatedly) as needed.

        Re-issues the request after each wait so algorithms with
        re-check semantics (basic TO readers waiting on prewrites) are
        driven correctly; lock-based algorithms return "granted" on the
        re-issue immediately.
        """
        if self.physical.has_cc_work:
            yield from self.physical.cc_request_work(tx)
        while True:
            event = request_method(tx, obj)
            if event is None:
                bus = self.bus
                if bus.wants_cc:
                    bus.emit(CC_GRANT, tx=tx, obj=obj, op=op)
                return
            tx.state = TxState.BLOCKED
            yield event
            tx.state = TxState.RUNNING

    def _write_order(self, tx):
        """Write objects in read-set order (deterministic replay order)."""
        return [obj for obj in tx.read_set if obj in tx.write_set]

    def _install_writes(self, tx):
        """Atomically install the transaction's writes at its commit point.

        Installing here — rather than at completion — keeps the
        committed history and the object store consistent under any run
        cutoff: once a transaction's writes are installed it can no
        longer abort, even though its deferred-update I/O may still be
        in flight when the simulation clock stops. The ``commit_point``
        event drives history recording and commit-point tracing; it is
        skipped entirely when nobody subscribed.
        """
        for obj in tx.install_write_set:
            self.store.install(obj, tx.serial_key, tx.id, self.env.now)
        if self.bus.wants_commit_point:
            self.bus.emit(TX_COMMIT_POINT, tx=tx)

    # -- completion and restarts ----------------------------------------------------

    def _complete_commit(self, tx):
        tx.state = TxState.COMMITTED
        tx.commit_time = self.env.now
        # A committed transaction's zero-delay restart streak is over;
        # without this the tracker grows without bound over a campaign.
        self._same_instant_restarts.pop(tx.id, None)
        self.bus.emit(TX_COMPLETE, tx=tx)
        self.physical.charge_attempt(tx, useful=True)
        self._leave_active(tx)
        tx.done_event.succeed()

    #: Consecutive zero-delay restarts of one transaction at one instant
    #: that we treat as a livelock (a misconfiguration: restart-oriented
    #: conflicts with no delay re-occur forever without advancing time —
    #: the exact pathology the paper's restart delay exists to prevent).
    ZERO_DELAY_RESTART_LIMIT = 1000

    def _handle_restart(self, tx, error):
        if self._protocol_active:
            self.commit_protocol.abort(tx)
        self.cc.abort(tx)
        self.physical.charge_attempt(tx, useful=False)
        self.bus.emit(TX_RESTART, tx=tx, reason=error.reason)
        self._leave_active(tx)
        delay = self._sample_restart_delay()
        if delay > 0.0:
            tx.state = TxState.RESTART_DELAY
            self.env.process(self._delayed_resubmit(tx, delay))
        else:
            self._check_restart_livelock(tx)
            self._enqueue_ready(tx)

    def _check_restart_livelock(self, tx):
        if tx.attempt_start_time == self.env.now:
            self._same_instant_restarts[tx.id] = (
                self._same_instant_restarts.get(tx.id, 0) + 1
            )
            if (self._same_instant_restarts[tx.id]
                    >= self.ZERO_DELAY_RESTART_LIMIT):
                raise RestartLivelockError(
                    tx.id,
                    self._same_instant_restarts[tx.id],
                    self.env.now,
                )
        else:
            self._same_instant_restarts.pop(tx.id, None)

    def _delayed_resubmit(self, tx, delay):
        # A real (positive) delay breaks any same-instant restart
        # streak, so the tracker entry must not outlive it.
        self._same_instant_restarts.pop(tx.id, None)
        yield self.env.timeout(delay)
        self._enqueue_ready(tx)

    def _sample_restart_delay(self):
        """Restart delay per the configured mode and algorithm policy.

        The adaptive policy is the paper's: exponential with mean equal
        to the running-average response time, "so that the conflicting
        transaction can complete before the restarted transaction is
        placed back into the ready queue".
        """
        mode = self.params.restart_delay_mode
        if mode == DELAY_MODE_DEFAULT:
            policy = self.cc.default_restart_delay
        elif mode == DELAY_MODE_ADAPTIVE_ALL:
            policy = DELAY_ADAPTIVE
        elif mode == DELAY_MODE_NONE_ALL:
            policy = DELAY_NONE
        else:
            assert mode == DELAY_MODE_FIXED_ALL, mode
            return self._restart_delay_rng.exponential(
                self.params.restart_delay
            )
        if policy == DELAY_NONE:
            return 0.0
        return self._restart_delay_rng.exponential(
            self.metrics.avg_response.value
        )

    # -- run control ------------------------------------------------------------

    def run_until(self, when):
        """Advance the simulation clock to ``when``."""
        self.env.run(until=when)

    def __repr__(self):
        return (
            f"<SystemModel cc={self.cc.name} mpl={self.params.mpl} "
            f"t={self.env.now:.3f}>"
        )
