"""The closed queuing model of a single-site DBMS (paper Figure 1).

Transactions originate from a fixed number of terminals. At most ``mpl``
transactions are *active* (receiving or waiting for service inside the
DBMS) at once; excess arrivals wait in the ready queue. An active
transaction alternates concurrency-control requests with object accesses
(all reads first, then all writes), optionally thinks between its reads
and writes (interactive workloads), then reaches its commit point,
writes its deferred updates, and completes. A restarted transaction
re-runs with the *same* read and write sets, re-entering the back of the
ready queue after an optional restart delay.
"""

from collections import deque
from itertools import count

from repro.cc import (
    DELAY_ADAPTIVE,
    DELAY_NONE,
    INSTALL_AT_PRE_COMMIT,
    ConcurrencyControl,
    RestartTransaction,
    create_algorithm,
)
from repro.core.errors import RestartLivelockError
from repro.core.metrics import MetricsCollector
from repro.core.params import (
    ARRIVAL_OPEN,
    DELAY_MODE_ADAPTIVE_ALL,
    DELAY_MODE_DEFAULT,
    DELAY_MODE_FIXED_ALL,
    DELAY_MODE_NONE_ALL,
)
from repro.core.physical import PhysicalModel
from repro.core.store import ObjectStore
from repro.core.transaction import TxState
from repro.core.workload import WorkloadGenerator
from repro.des import Environment, Interrupt, StreamFactory
from repro.faults import FaultInjector


class CommittedRecord:
    """Immutable record of one committed transaction, for verification."""

    __slots__ = (
        "tx_id",
        "read_set",
        "write_set",
        "installed_writes",
        "reads_seen",
        "serial_key",
        "commit_time",
        "attempts",
    )

    def __init__(self, tx, commit_point_time):
        self.tx_id = tx.id
        self.read_set = tuple(tx.read_set)
        self.write_set = frozenset(tx.write_set)
        self.installed_writes = frozenset(tx.install_write_set)
        self.reads_seen = dict(tx.reads_seen)
        self.serial_key = tx.serial_key
        #: Time the commit point was reached (deferred-update I/O may
        #: still follow; tx.commit_time records final completion).
        self.commit_time = commit_point_time
        self.attempts = tx.attempts


class SystemModel:
    """One configured instance of the complete database model.

    Implements the :class:`repro.cc.EngineHooks` protocol (block counting
    and remote aborts) for the attached algorithm.
    """

    def __init__(self, params, algorithm="blocking", seed=42,
                 record_history=False, tracer=None, workload=None):
        self.params = params
        #: Optional repro.des.trace.TraceRecorder receiving transaction
        #: lifecycle events (submit/admit/block/restart/commit).
        self.tracer = tracer
        self.env = Environment()
        self.streams = StreamFactory(seed)
        if isinstance(algorithm, ConcurrencyControl):
            self.cc = algorithm
        else:
            self.cc = create_algorithm(algorithm)
        self.cc.attach(self.env, hooks=self)
        # Anything with a new_transaction(terminal_id) method works as a
        # workload source; ReplayWorkload substitutes recorded traces.
        self.workload = workload or WorkloadGenerator(params, self.streams)
        self.physical = PhysicalModel(self.env, params, self.streams)
        #: Fault injector driving params.faults, or None when the run
        #: is healthy. A null spec starts no injector at all, so the
        #: healthy path stays bit-identical to pre-fault builds.
        self.fault_injector = None
        if params.faults is not None and not params.faults.is_null:
            self.fault_injector = FaultInjector(
                self.env, params.faults, self.physical, self.streams,
                trace=self._trace,
            ).start()
        self.metrics = MetricsCollector(self.env, params, self.physical)
        self.store = ObjectStore()
        self.ready_queue = deque()
        self.active_count = 0
        #: Admission limit; starts at params.mpl. Mutable at run time so
        #: adaptive controllers (repro.analysis.adaptive) can retune it.
        self.mpl_limit = params.mpl
        self.committed_history = [] if record_history else None
        self._ts_seq = count()
        self._same_instant_restarts = {}
        self._int_think_rng = self.streams.stream("int_think")
        self._restart_delay_rng = self.streams.stream("restart_delay")
        if params.arrival_mode == ARRIVAL_OPEN:
            self.env.process(self._open_source())
        else:
            for terminal_id in range(params.num_terms):
                self.env.process(self._terminal(terminal_id))

    # -- EngineHooks protocol ------------------------------------------------

    def count_block(self, tx):
        self.metrics.record_block(tx)
        self._trace("block", tx=tx.id, attempt=tx.attempts)

    def _trace(self, kind, **fields):
        if self.tracer is not None:
            self.tracer.record(self.env.now, kind, **fields)

    def abort_remote(self, tx, error):
        """Abort a transaction that is not waiting on a CC event.

        Used by wound-wait for victims that are running, queued at a
        resource, or thinking. Interrupting unwinds the victim's process;
        its resource context managers release cleanly.
        """
        process = tx.process
        if process is not None and process.is_alive:
            process.interrupt(error)

    # -- timestamps --------------------------------------------------------------

    def next_timestamp(self):
        """A unique, strictly increasing (time, sequence) timestamp."""
        return (self.env.now, next(self._ts_seq))

    # -- terminals and admission control --------------------------------------------

    def _terminal(self, terminal_id):
        """One terminal: think, submit, wait for completion, repeat."""
        rng = self.streams.stream(f"terminal.{terminal_id}")
        # Initial stagger so 200 terminals do not fire simultaneously at t=0.
        yield self.env.timeout(rng.exponential(self.params.ext_think_time))
        while True:
            tx = self.workload.new_transaction(terminal_id)
            tx.done_event = self.env.event()
            tx.first_submit_time = self.env.now
            tx.priority_ts = self.next_timestamp()
            self._enqueue_ready(tx)
            yield tx.done_event
            yield self.env.timeout(
                rng.exponential(self.params.ext_think_time)
            )

    def _open_source(self):
        """Open-system source: Poisson arrivals at ``arrival_rate``.

        Replaces the terminal population. Nobody waits on completion,
        so the ready queue grows without bound when the offered load
        exceeds the system's capacity — which is exactly the behavior
        an open model exposes and a closed model hides.
        """
        rng = self.streams.stream("open_arrivals")
        mean_interarrival = 1.0 / self.params.arrival_rate
        while True:
            yield self.env.timeout(rng.exponential(mean_interarrival))
            tx = self.workload.new_transaction(terminal_id=0)
            tx.done_event = self.env.event()  # succeeds unobserved
            tx.first_submit_time = self.env.now
            tx.priority_ts = self.next_timestamp()
            self._enqueue_ready(tx)

    def _enqueue_ready(self, tx):
        """Append to the back of the ready queue and admit if possible."""
        tx.state = TxState.READY
        self.ready_queue.append(tx)
        self.metrics.ready_queue_level.add(1)
        if tx.attempts == 0:
            self._trace("submit", tx=tx.id, terminal=tx.terminal_id,
                        reads=len(tx.read_set), writes=len(tx.write_set))
        self._try_admit()

    def _try_admit(self):
        while self.ready_queue and self.active_count < self.mpl_limit:
            tx = self.ready_queue.popleft()
            self.metrics.ready_queue_level.add(-1)
            self._start_attempt(tx)

    def _start_attempt(self, tx):
        self.active_count += 1
        self.metrics.active_level.add(1)
        tx.begin_attempt(self.env.now, self.next_timestamp())
        self._assign_cc_units(tx)
        self.cc.begin(tx)
        self._trace("admit", tx=tx.id, attempt=tx.attempts)
        tx.process = self.env.process(self._execute(tx))

    def _leave_active(self, tx):
        self.active_count -= 1
        self.metrics.active_level.add(-1)
        self._try_admit()

    # -- transaction execution --------------------------------------------------

    def _assign_cc_units(self, tx):
        """Map the read/write sets onto concurrency-control units.

        Object-level CC (the paper's setting) is the identity; with
        ``lock_granules`` set, objects collapse onto granules and the
        algorithms see granule ids everywhere — the Ries-style
        granularity trade-off.
        """
        params = self.params
        if params.lock_granules is None:
            tx.cc_read_set = tx.read_set
            tx.cc_write_set = tx.write_set
            return
        seen = []
        for obj in tx.read_set:
            unit = params.cc_unit_of(obj)
            if unit not in seen:
                seen.append(unit)
        tx.cc_read_set = tuple(seen)
        tx.cc_write_set = frozenset(
            params.cc_unit_of(obj) for obj in tx.write_set
        )

    def _execute(self, tx):
        """One attempt: reads, (think,) writes, commit point, updates."""
        cc_unit = self.params.cc_unit_of
        try:
            for obj in tx.read_set:
                yield from self._cc_request(
                    tx, self.cc.read_request, cc_unit(obj)
                )
                version = self.store.read(
                    obj, self.cc.reader_version_key(tx)
                )
                tx.reads_seen[obj] = version.writer_id
                yield from self.physical.read_access(tx)

            if self.params.int_think_time > 0.0:
                tx.state = TxState.THINKING
                yield self.env.timeout(
                    self._int_think_rng.exponential(
                        self.params.int_think_time
                    )
                )
                tx.state = TxState.RUNNING

            for obj in self._write_order(tx):
                yield from self._cc_request(
                    tx, self.cc.write_request, cc_unit(obj)
                )
                yield from self.physical.write_request_work(tx)

            # The commit point: validation (a concurrency-control request).
            yield from self.physical.cc_request_work(tx)
            event = self.cc.pre_commit(tx)
            if event is not None:
                tx.state = TxState.BLOCKED
                yield event
                tx.state = TxState.RUNNING
            tx.serial_key = self.cc.serial_key(tx) or self.next_timestamp()
            if tx.to_skipped_writes:
                # Thomas-rule skips are expressed in CC units; filter
                # the object-level writes they cover.
                tx.install_write_set = frozenset(
                    obj for obj in tx.write_set
                    if cc_unit(obj) not in tx.to_skipped_writes
                )
            if self.cc.install_at == INSTALL_AT_PRE_COMMIT:
                self._install_writes(tx)
            tx.state = TxState.COMMITTING

            for _ in tx.install_write_set:
                yield from self.physical.deferred_update(tx)
            if self.cc.install_at != INSTALL_AT_PRE_COMMIT:
                self._install_writes(tx)
            self.cc.finalize_commit(tx)
            self._complete_commit(tx)
        except RestartTransaction as error:
            self._handle_restart(tx, error)
        except Interrupt as interrupt:
            cause = interrupt.cause
            if not isinstance(cause, RestartTransaction):
                raise
            self._handle_restart(tx, cause)

    def _cc_request(self, tx, request_method, obj):
        """Issue one CC request, waiting (possibly repeatedly) as needed.

        Re-issues the request after each wait so algorithms with
        re-check semantics (basic TO readers waiting on prewrites) are
        driven correctly; lock-based algorithms return "granted" on the
        re-issue immediately.
        """
        yield from self.physical.cc_request_work(tx)
        while True:
            event = request_method(tx, obj)
            if event is None:
                return
            tx.state = TxState.BLOCKED
            yield event
            tx.state = TxState.RUNNING

    def _write_order(self, tx):
        """Write objects in read-set order (deterministic replay order)."""
        return [obj for obj in tx.read_set if obj in tx.write_set]

    def _install_writes(self, tx):
        """Atomically install the transaction's writes at its commit point,
        and record the commit in the verification history.

        Recording here — rather than at completion — keeps the history
        and the object store consistent under any run cutoff: once a
        transaction's writes are installed it can no longer abort, even
        though its deferred-update I/O may still be in flight when the
        simulation clock stops.
        """
        for obj in tx.install_write_set:
            self.store.install(obj, tx.serial_key, tx.id, self.env.now)
        if self.committed_history is not None:
            self.committed_history.append(
                CommittedRecord(tx, commit_point_time=self.env.now)
            )

    # -- completion and restarts ----------------------------------------------------

    def _complete_commit(self, tx):
        tx.state = TxState.COMMITTED
        tx.commit_time = self.env.now
        # A committed transaction's zero-delay restart streak is over;
        # without this the tracker grows without bound over a campaign.
        self._same_instant_restarts.pop(tx.id, None)
        self._trace("commit", tx=tx.id, attempt=tx.attempts,
                    response=tx.response_time())
        self.metrics.record_commit(tx)
        self.physical.charge_attempt(tx, useful=True)
        self._leave_active(tx)
        tx.done_event.succeed()

    #: Consecutive zero-delay restarts of one transaction at one instant
    #: that we treat as a livelock (a misconfiguration: restart-oriented
    #: conflicts with no delay re-occur forever without advancing time —
    #: the exact pathology the paper's restart delay exists to prevent).
    ZERO_DELAY_RESTART_LIMIT = 1000

    def _handle_restart(self, tx, error):
        self.cc.abort(tx)
        self.physical.charge_attempt(tx, useful=False)
        self._trace("restart", tx=tx.id, attempt=tx.attempts,
                    reason=error.reason)
        self.metrics.record_restart(tx, error.reason)
        self._leave_active(tx)
        delay = self._sample_restart_delay()
        if delay > 0.0:
            tx.state = TxState.RESTART_DELAY
            self.env.process(self._delayed_resubmit(tx, delay))
        else:
            self._check_restart_livelock(tx)
            self._enqueue_ready(tx)

    def _check_restart_livelock(self, tx):
        if tx.attempt_start_time == self.env.now:
            self._same_instant_restarts[tx.id] = (
                self._same_instant_restarts.get(tx.id, 0) + 1
            )
            if (self._same_instant_restarts[tx.id]
                    >= self.ZERO_DELAY_RESTART_LIMIT):
                raise RestartLivelockError(
                    tx.id,
                    self._same_instant_restarts[tx.id],
                    self.env.now,
                )
        else:
            self._same_instant_restarts.pop(tx.id, None)

    def _delayed_resubmit(self, tx, delay):
        # A real (positive) delay breaks any same-instant restart
        # streak, so the tracker entry must not outlive it.
        self._same_instant_restarts.pop(tx.id, None)
        yield self.env.timeout(delay)
        self._enqueue_ready(tx)

    def _sample_restart_delay(self):
        """Restart delay per the configured mode and algorithm policy.

        The adaptive policy is the paper's: exponential with mean equal
        to the running-average response time, "so that the conflicting
        transaction can complete before the restarted transaction is
        placed back into the ready queue".
        """
        mode = self.params.restart_delay_mode
        if mode == DELAY_MODE_DEFAULT:
            policy = self.cc.default_restart_delay
        elif mode == DELAY_MODE_ADAPTIVE_ALL:
            policy = DELAY_ADAPTIVE
        elif mode == DELAY_MODE_NONE_ALL:
            policy = DELAY_NONE
        else:  # DELAY_MODE_FIXED_ALL
            return self._restart_delay_rng.exponential(
                self.params.restart_delay
            )
        if policy == DELAY_NONE:
            return 0.0
        return self._restart_delay_rng.exponential(
            self.metrics.avg_response.value
        )

    # -- run control ------------------------------------------------------------

    def run_until(self, when):
        """Advance the simulation clock to ``when``."""
        self.env.run(until=when)

    def __repr__(self):
        return (
            f"<SystemModel cc={self.cc.name} mpl={self.params.mpl} "
            f"t={self.env.now:.3f}>"
        )
