"""Backward-compatibility shim for the physical queuing model.

The physical tier now lives in :mod:`repro.resources` as a pluggable,
registry-backed layer (see DESIGN.md §13). ``PhysicalModel`` — the
pooled-CPU + partitioned-disk model of paper Figure 2 — is the
``classic`` resource model; this module keeps the historical import
path and names working for existing callers and tests.
"""

from repro.resources.base import CC_PRIORITY, OBJECT_PRIORITY
from repro.resources.classic import ClassicResourceModel as PhysicalModel

__all__ = ["PhysicalModel", "CC_PRIORITY", "OBJECT_PRIORITY"]
