"""The physical queuing model (paper Figure 2).

A pool of identical CPU servers drains one global queue FCFS, except that
concurrency-control requests have priority over all other CPU requests.
The database is partitioned across the disks: each object access selects
a disk uniformly at random and waits in that disk's FCFS queue. With
``num_cpus``/``num_disks`` of None the corresponding resource is
infinite: service takes the nominal time with no queueing.

Service consumption is charged to the requesting transaction attempt
(``attempt_cpu_time`` / ``attempt_disk_time``); the engine classifies
those amounts as useful or wasted when the attempt commits or aborts,
which produces the paper's total vs. useful utilization curves. If an
attempt is aborted mid-service (wound-wait), only the time actually
consumed is charged.
"""

from repro.des import BusyTracker, InfiniteResource, Resource
from repro.obs.events import RESOURCE_BUSY, RESOURCE_IDLE

#: CPU queue priority classes: CC requests beat object processing.
CC_PRIORITY = 0
OBJECT_PRIORITY = 1


class PhysicalModel:
    """CPU pool + partitioned disks, with utilization accounting."""

    def __init__(self, env, params, streams, bus=None):
        self.env = env
        self.params = params
        #: Optional repro.obs.InstrumentationBus for resource busy/idle
        #: events; emission is guarded by its ``wants_resource`` flag so
        #: the unobserved case costs one attribute load per service.
        self.bus = bus
        self._disk_rng = streams.stream("physical.disk_choice")
        #: Optional repro.faults.FaultInjector; set by its start().
        #: None (the default) is the always-healthy physical model.
        self.faults = None

        if params.num_cpus is None:
            self.cpu = InfiniteResource(env)
            cpu_capacity = float("inf")
        else:
            self.cpu = Resource(env, capacity=params.num_cpus)
            cpu_capacity = params.num_cpus

        if params.num_disks is None:
            self.disks = [InfiniteResource(env)]
            disk_capacity = float("inf")
        else:
            self.disks = [
                Resource(env, capacity=1) for _ in range(params.num_disks)
            ]
            disk_capacity = params.num_disks

        self.cpu_tracker = BusyTracker(env, "cpu", cpu_capacity)
        self.disk_tracker = BusyTracker(env, "disk", disk_capacity)

    # -- service primitives -------------------------------------------------
    #
    # Each returns a generator to be driven with ``yield from`` inside a
    # transaction process. They are interrupt-safe: on abort mid-service
    # the partial service time is still charged and the server released.

    def cpu_service(self, tx, amount, priority=OBJECT_PRIORITY):
        """Hold one CPU server for ``amount`` seconds.

        Under an injected CPU degradation window the demand is
        multiplied by the factor in effect when service *starts* (a
        window boundary does not stretch service already in progress).
        """
        if amount <= 0.0:
            return
        if self.faults is not None:
            amount *= self.faults.cpu_factor
        bus = self.bus
        with self.cpu.request(priority=priority) as request:
            yield request
            self.cpu_tracker.acquire()
            if bus is not None and bus.wants_resource:
                bus.emit(RESOURCE_BUSY, resource="cpu", tx=tx)
            start = self.env.now
            try:
                yield self.env.timeout(amount)
            finally:
                self.cpu_tracker.release()
                tx.attempt_cpu_time += self.env.now - start
                if bus is not None and bus.wants_resource:
                    bus.emit(RESOURCE_IDLE, resource="cpu", tx=tx)

    def disk_service(self, tx, amount):
        """Hold a uniformly chosen disk for ``amount`` seconds."""
        if amount <= 0.0:
            return
        disk_index = self._disk_rng.uniform_int(0, len(self.disks) - 1)
        bus = self.bus
        with self.disks[disk_index].request() as request:
            yield request
            self.disk_tracker.acquire()
            if bus is not None and bus.wants_resource:
                bus.emit(RESOURCE_BUSY, resource="disk", disk=disk_index, tx=tx)
            start = self.env.now
            try:
                yield self.env.timeout(amount)
            finally:
                self.disk_tracker.release()
                tx.attempt_disk_time += self.env.now - start
                if bus is not None and bus.wants_resource:
                    bus.emit(RESOURCE_IDLE, resource="disk", disk=disk_index, tx=tx)

    # -- model-level composites -----------------------------------------------

    def read_access(self, tx):
        """Read one object: obj_io of disk, then obj_cpu of CPU.

        With fault injection, the access may fault first (raising
        RestartTransaction before any service is consumed).
        """
        if self.faults is not None:
            self.faults.check_access_fault(tx)
        yield from self.disk_service(tx, self.params.obj_io)
        yield from self.cpu_service(tx, self.params.obj_cpu)

    def write_request_work(self, tx):
        """CPU work at write-request time (updates are deferred).

        Subject to transient access faults like reads; deferred updates
        at commit time are not (past the commit point the transaction
        can no longer abort).
        """
        if self.faults is not None:
            self.faults.check_access_fault(tx)
        yield from self.cpu_service(tx, self.params.obj_cpu)

    def deferred_update(self, tx):
        """Write one deferred update to disk at commit time."""
        yield from self.disk_service(tx, self.params.obj_io)

    def cc_request_work(self, tx):
        """CPU work for one concurrency-control request (priority class).

        Zero in the paper's parameter tables, so this is a no-op unless
        ``cc_cpu`` is set.
        """
        yield from self.cpu_service(tx, self.params.cc_cpu, CC_PRIORITY)

    # -- attempt outcome accounting ----------------------------------------------

    def charge_attempt(self, tx, useful):
        """Classify the attempt's consumed service time by outcome."""
        self.cpu_tracker.record_outcome(tx.attempt_cpu_time, useful)
        self.disk_tracker.record_outcome(tx.attempt_disk_time, useful)
