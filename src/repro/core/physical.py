"""Deprecated alias: the physical tier lives in :mod:`repro.resources`."""

from repro.resources import CC_PRIORITY, OBJECT_PRIORITY, PhysicalModel

__all__ = ["PhysicalModel", "CC_PRIORITY", "OBJECT_PRIORITY"]
