"""The physical queuing model (paper Figure 2).

A pool of identical CPU servers drains one global queue FCFS, except that
concurrency-control requests have priority over all other CPU requests.
The database is partitioned across the disks: each object access selects
a disk uniformly at random and waits in that disk's FCFS queue. With
``num_cpus``/``num_disks`` of None the corresponding resource is
infinite: service takes the nominal time with no queueing.

Service consumption is charged to the requesting transaction attempt
(``attempt_cpu_time`` / ``attempt_disk_time``); the engine classifies
those amounts as useful or wasted when the attempt commits or aborts,
which produces the paper's total vs. useful utilization curves. If an
attempt is aborted mid-service (wound-wait), only the time actually
consumed is charged.

The service primitives are hot-path code: disk selections are drawn in
batches from the disk stream (same draws, same order as one-at-a-time),
timeouts are constructed directly, and the request/release pairing uses
explicit try/finally instead of the :class:`~repro.des.resources.Request`
context manager — identical semantics, fewer calls per service.
"""

from repro.des import BusyTracker, InfiniteResource, Resource
from repro.des.events import Timeout
from repro.obs.events import RESOURCE_BUSY, RESOURCE_IDLE

#: CPU queue priority classes: CC requests beat object processing.
CC_PRIORITY = 0
OBJECT_PRIORITY = 1

#: Disk selections drawn from the disk stream per refill. Batching only
#: amortizes call overhead; the value sequence is unchanged.
_DISK_PICK_BATCH = 256


class PhysicalModel:
    """CPU pool + partitioned disks, with utilization accounting."""

    def __init__(self, env, params, streams, bus=None):
        self.env = env
        self.params = params
        #: Optional repro.obs.InstrumentationBus for resource busy/idle
        #: events; emission is guarded by its ``wants_resource`` flag so
        #: the unobserved case costs one attribute load per service.
        self.bus = bus
        self._disk_rng = streams.stream("physical.disk_choice")
        self._disk_picks = []
        self._disk_pick_at = 0
        #: Optional repro.faults.FaultInjector; set by its start().
        #: None (the default) is the always-healthy physical model.
        self.faults = None
        #: False when ``cc_cpu`` is zero (the paper's tables): lets the
        #: engine skip the whole cc_request_work generator per request.
        self.has_cc_work = params.cc_cpu > 0.0

        if params.num_cpus is None:
            self.cpu = InfiniteResource(env)
            cpu_capacity = float("inf")
        else:
            self.cpu = Resource(env, capacity=params.num_cpus)
            cpu_capacity = params.num_cpus

        if params.num_disks is None:
            self.disks = [InfiniteResource(env)]
            disk_capacity = float("inf")
        else:
            self.disks = [
                Resource(env, capacity=1) for _ in range(params.num_disks)
            ]
            disk_capacity = params.num_disks

        self.cpu_tracker = BusyTracker(env, "cpu", cpu_capacity)
        self.disk_tracker = BusyTracker(env, "disk", disk_capacity)

    # -- service primitives -------------------------------------------------
    #
    # Each returns a generator to be driven with ``yield from`` inside a
    # transaction process. They are interrupt-safe: on abort mid-service
    # the partial service time is still charged and the server released.

    def cpu_service(self, tx, amount, priority=OBJECT_PRIORITY):
        """Hold one CPU server for ``amount`` seconds.

        Under an injected CPU degradation window the demand is
        multiplied by the factor in effect when service *starts* (a
        window boundary does not stretch service already in progress).
        """
        if amount <= 0.0:
            return
        if self.faults is not None:
            amount *= self.faults.cpu_factor
        env = self.env
        bus = self.bus
        tracker = self.cpu_tracker
        request = self.cpu.request(priority=priority)
        try:
            yield request
            tracker.acquire()
            if bus is not None and bus.wants_resource:
                bus.emit(RESOURCE_BUSY, resource="cpu", tx=tx)
            start = env._now
            try:
                yield Timeout(env, amount)
            finally:
                tracker.release()
                tx.attempt_cpu_time += env._now - start
                if bus is not None and bus.wants_resource:
                    bus.emit(RESOURCE_IDLE, resource="cpu", tx=tx)
        finally:
            self.cpu.release(request)

    def _pick_disk(self):
        """Index of a uniformly chosen disk (batched draws)."""
        at = self._disk_pick_at
        picks = self._disk_picks
        if at >= len(picks):
            self._disk_picks = picks = self._disk_rng.uniform_int_many(
                0, len(self.disks) - 1, _DISK_PICK_BATCH
            )
            at = 0
        self._disk_pick_at = at + 1
        return picks[at]

    def disk_service(self, tx, amount):
        """Hold a uniformly chosen disk for ``amount`` seconds."""
        if amount <= 0.0:
            return
        disk_index = self._pick_disk()
        env = self.env
        bus = self.bus
        tracker = self.disk_tracker
        disk = self.disks[disk_index]
        request = disk.request()
        try:
            yield request
            tracker.acquire()
            if bus is not None and bus.wants_resource:
                bus.emit(RESOURCE_BUSY, resource="disk", disk=disk_index, tx=tx)
            start = env._now
            try:
                yield Timeout(env, amount)
            finally:
                tracker.release()
                tx.attempt_disk_time += env._now - start
                if bus is not None and bus.wants_resource:
                    bus.emit(RESOURCE_IDLE, resource="disk", disk=disk_index, tx=tx)
        finally:
            disk.release(request)

    # -- model-level composites -----------------------------------------------
    #
    # The composites inline the disk/cpu service bodies instead of
    # delegating with ``yield from``: an object access is the single
    # most-executed code path of a simulation, and the flattened form
    # creates one generator per access instead of three. The yields,
    # their order, and the interrupt-time accounting are exactly those
    # of ``disk_service`` followed by ``cpu_service``.

    def read_access(self, tx):
        """Read one object: obj_io of disk, then obj_cpu of CPU.

        With fault injection, the access may fault first (raising
        RestartTransaction before any service is consumed).
        """
        faults = self.faults
        if faults is not None:
            faults.check_access_fault(tx)
        env = self.env
        bus = self.bus
        params = self.params

        amount = params.obj_io
        if amount > 0.0:
            disk_index = self._pick_disk()
            tracker = self.disk_tracker
            disk = self.disks[disk_index]
            request = disk.request()
            try:
                yield request
                tracker.acquire()
                if bus is not None and bus.wants_resource:
                    bus.emit(
                        RESOURCE_BUSY, resource="disk",
                        disk=disk_index, tx=tx,
                    )
                start = env._now
                try:
                    yield Timeout(env, amount)
                finally:
                    tracker.release()
                    tx.attempt_disk_time += env._now - start
                    if bus is not None and bus.wants_resource:
                        bus.emit(
                            RESOURCE_IDLE, resource="disk",
                            disk=disk_index, tx=tx,
                        )
            finally:
                disk.release(request)

        amount = params.obj_cpu
        if amount <= 0.0:
            return
        if faults is not None:
            amount *= faults.cpu_factor
        tracker = self.cpu_tracker
        request = self.cpu.request(priority=OBJECT_PRIORITY)
        try:
            yield request
            tracker.acquire()
            if bus is not None and bus.wants_resource:
                bus.emit(RESOURCE_BUSY, resource="cpu", tx=tx)
            start = env._now
            try:
                yield Timeout(env, amount)
            finally:
                tracker.release()
                tx.attempt_cpu_time += env._now - start
                if bus is not None and bus.wants_resource:
                    bus.emit(RESOURCE_IDLE, resource="cpu", tx=tx)
        finally:
            self.cpu.release(request)

    def write_request_work(self, tx):
        """CPU work at write-request time (updates are deferred).

        Subject to transient access faults like reads; deferred updates
        at commit time are not (past the commit point the transaction
        can no longer abort).
        """
        if self.faults is not None:
            self.faults.check_access_fault(tx)
        yield from self.cpu_service(tx, self.params.obj_cpu)

    def deferred_update(self, tx):
        """Write one deferred update to disk at commit time."""
        yield from self.disk_service(tx, self.params.obj_io)

    def cc_request_work(self, tx):
        """CPU work for one concurrency-control request (priority class).

        Zero in the paper's parameter tables, so this is a no-op unless
        ``cc_cpu`` is set (callers can check ``has_cc_work`` and skip
        the generator entirely).
        """
        yield from self.cpu_service(tx, self.params.cc_cpu, CC_PRIORITY)

    # -- attempt outcome accounting ----------------------------------------------

    def charge_attempt(self, tx, useful):
        """Classify the attempt's consumed service time by outcome."""
        self.cpu_tracker.record_outcome(tx.attempt_cpu_time, useful)
        self.disk_tracker.record_outcome(tx.attempt_disk_time, useful)
