"""The paper's complete database-system model.

``SimulationParameters`` (Table 1), the closed queuing model
(:class:`SystemModel`), the physical resource model, the workload
generator, and the batch-means simulation driver
(:func:`run_simulation`).
"""

from repro.core.engine import CommittedRecord, SystemModel
from repro.core.errors import RestartLivelockError
from repro.core.metrics import MetricsCollector, RunningAverage
from repro.core.params import (
    ARRIVAL_CLOSED,
    ARRIVAL_OPEN,
    DELAY_MODE_ADAPTIVE_ALL,
    DELAY_MODE_DEFAULT,
    DELAY_MODE_FIXED_ALL,
    DELAY_MODE_NONE_ALL,
    PAPER_MPLS,
    RunConfig,
    SimulationParameters,
    TransactionClass,
)
from repro.core.replay import (
    ReplayWorkload,
    TraceExhausted,
    load_trace,
    save_trace,
    trace_from_history,
)
from repro.core.simulation import (
    SimulationResult,
    run_simulation,
    run_until_precision,
)
from repro.core.store import ObjectStore, Version
from repro.core.transaction import ACTIVE_STATES, Transaction, TxState
from repro.core.workload import WorkloadGenerator
from repro.resources import PhysicalModel

__all__ = [
    "SimulationParameters",
    "TransactionClass",
    "RunConfig",
    "PAPER_MPLS",
    "DELAY_MODE_DEFAULT",
    "DELAY_MODE_ADAPTIVE_ALL",
    "DELAY_MODE_NONE_ALL",
    "DELAY_MODE_FIXED_ALL",
    "ARRIVAL_CLOSED",
    "ARRIVAL_OPEN",
    "SystemModel",
    "CommittedRecord",
    "RestartLivelockError",
    "run_simulation",
    "run_until_precision",
    "SimulationResult",
    "Transaction",
    "TxState",
    "ACTIVE_STATES",
    "WorkloadGenerator",
    "PhysicalModel",
    "MetricsCollector",
    "RunningAverage",
    "ObjectStore",
    "Version",
    "ReplayWorkload",
    "TraceExhausted",
    "load_trace",
    "save_trace",
    "trace_from_history",
]
