"""A logical versioned object store for correctness verification.

The paper's simulator models no data values (performance only). We add a
lightweight value model so the test suite can *prove* that each
algorithm's committed histories are serializable: every committed write
installs a version tagged with the writer and the algorithm's
equivalent-serial-order key; every read records which version it saw.
The checker then replays committed transactions serially in key order
and verifies each read. The store costs O(1) per operation and does not
affect timing, so performance results are unchanged.
"""

from bisect import bisect_right, insort


class Version:
    """One installed version of one object."""

    __slots__ = ("serial_key", "writer_id", "install_time")

    def __init__(self, serial_key, writer_id, install_time):
        self.serial_key = serial_key
        self.writer_id = writer_id
        self.install_time = install_time

    def __lt__(self, other):
        return self.serial_key < other.serial_key

    def __repr__(self):
        return f"<Version key={self.serial_key} writer={self.writer_id}>"


#: Sorts before every real serial key (floats or (time, seq) tuples).
_INITIAL_KEY = (float("-inf"), float("-inf"))


class ObjectStore:
    """Installed committed versions per object, ordered by serial key.

    Single-version algorithms read the latest installed version;
    multiversion algorithms read the latest version with key <= the
    reader's own key. Installation is atomic at the algorithm's commit
    point (the resource cost of deferred updates is modeled separately by
    the physical layer).
    """

    def __init__(self):
        self._versions = {}  # obj -> sorted list of Version
        self.installs = 0

    def read(self, obj, reader_key=None):
        """The version a read observes.

        ``reader_key`` of None (single-version algorithms) returns the
        version with the largest serial key installed so far; otherwise
        the largest key <= ``reader_key``.
        """
        chain = self._versions.get(obj)
        if not chain:
            return Version(_INITIAL_KEY, None, None)
        if reader_key is None:
            return chain[-1]
        index = bisect_right(chain, reader_key, key=lambda v: v.serial_key)
        if index == 0:
            return Version(_INITIAL_KEY, None, None)
        return chain[index - 1]

    def install(self, obj, serial_key, writer_id, now):
        """Install a committed write (atomic at the commit point)."""
        version = Version(serial_key, writer_id, now)
        chain = self._versions.setdefault(obj, [])
        if chain and chain[-1].serial_key <= serial_key:
            chain.append(version)  # common case: keys arrive in order
        else:
            insort(chain, version)
        self.installs += 1
        return version

    def latest_writer(self, obj):
        chain = self._versions.get(obj)
        return chain[-1].writer_id if chain else None

    def final_state(self):
        """obj -> writer id of the last version (by serial key)."""
        return {
            obj: chain[-1].writer_id
            for obj, chain in self._versions.items()
            if chain
        }
