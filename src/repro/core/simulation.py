"""Top-level simulation driver: batch-means runs producing results.

This is the library's main entry point::

    from repro import SimulationParameters, RunConfig, run_simulation

    params = SimulationParameters.table2(mpl=25)
    result = run_simulation(params, algorithm="blocking",
                            run=RunConfig(batches=20, batch_time=30.0))
    print(result.mean("throughput"), result.interval("throughput"))
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.engine import SystemModel
from repro.core.params import RunConfig, SimulationParameters
from repro.obs.invariants import InvariantChecker, resolve_invariant_mode
from repro.stats import BatchMeansAnalyzer, assess_stability

__all__ = ["SimulationResult", "run_simulation", "run_until_precision"]


def _collect_totals(model):
    """Cumulative whole-run totals (shared by both drivers)."""
    totals = {
        "commits": model.metrics.commits.total,
        "restarts": model.metrics.restarts.total,
        "blocks": model.metrics.blocks.total,
        "restart_reasons": dict(model.metrics.restart_reasons),
        "transactions_generated": model.workload.generated,
        "simulated_time": model.env.now,
        "response_time_overall_mean": model.metrics.response_times.mean,
        "response_time_overall_std": model.metrics.response_times.std,
        "response_time_p50": model.metrics.response_p50.value,
        "response_time_p95": model.metrics.response_p95.value,
        "per_class": model.metrics.per_class_summary(model.env.now),
    }
    if model.fault_injector is not None:
        totals["faults"] = model.fault_injector.summary()
    # Models without a buffer pool report None and add no key, which
    # keeps classic/infinite totals byte-identical to pre-registry runs.
    buffer = model.physical.buffer_summary()
    if buffer is not None:
        totals["buffer"] = buffer
    # Network accounting only exists once a message actually crossed
    # nodes — single-site runs (and one-node distributed runs) add no
    # key, which the N=1 golden-parity suite depends on.
    network = model.physical.network_summary()
    if network is not None:
        totals["network"] = network
    # Same conditional-key idiom for the workload tier: only
    # open-system models add arrival accounting and the stability
    # verdict, so closed_classic totals keep their exact byte layout.
    workload_model = model.workload_model
    if workload_model.open_system:
        stability = assess_stability(
            model.metrics.submissions.total,
            model.metrics.commits.total,
            model.env.now,
            model.mpl_limit,
        )
        open_totals = stability.as_dict()
        extra = workload_model.summary(model)
        if extra is not None:
            open_totals.update(extra)
        totals["open_system"] = open_totals
    return totals


def _buffer_diagnostics(model):
    """The diagnostics payload for buffer-pool models (else None)."""
    buffer = model.physical.buffer_summary()
    if buffer is None:
        return None
    return {"buffer": dict(buffer)}


def _resolve_checker(invariants, subscribers):
    """(checker or None, subscribers) for the requested invariant mode.

    ``invariants`` is ``"strict"``/``"warn"``/``"off"``/None (None
    defers to the ``REPRO_INVARIANTS`` environment variable, default
    off). The checker joins the subscriber list, so it rides the same
    attach path as every other observer; ``"off"`` attaches nothing at
    all, which keeps the bus's fast-path flags down and the hot loops
    allocation-free.
    """
    mode = resolve_invariant_mode(invariants)
    if mode == "off":
        return None, subscribers
    checker = InvariantChecker(mode=mode)
    return checker, (*tuple(subscribers), checker)


def _merge_invariant_diagnostics(diagnostics, checker):
    """Fold the checker's report into a diagnostics payload."""
    if checker is None:
        return diagnostics
    return {**(diagnostics or {}), "invariants": checker.report()}


@dataclass
class SimulationResult:
    """Everything measured by one simulation run."""

    algorithm: str
    params: SimulationParameters
    run: RunConfig
    analyzer: BatchMeansAnalyzer
    #: Cumulative totals over the whole run (including warmup).
    totals: Dict[str, Any] = field(default_factory=dict)
    #: The model, kept only when history recording was requested.
    model: Optional[SystemModel] = None
    #: Optional per-run observability payload (e.g. the time-series
    #: sampled by the sweep runner). Plain JSON-serializable data; None
    #: when no diagnostics were requested, so summaries are unchanged.
    diagnostics: Optional[Dict[str, Any]] = None

    def mean(self, name):
        """Grand mean of a per-batch output variable."""
        return self.analyzer.mean(name)

    def interval(self, name):
        """Confidence interval of a per-batch output variable."""
        return self.analyzer.interval(name)

    @property
    def throughput(self):
        return self.mean("throughput")

    @property
    def response_time(self):
        return self.mean("response_time")

    def summary(self):
        return self.analyzer.summary()

    @property
    def saturated(self):
        """True when the open-system stability detector fired (closed
        runs have no arrival process to saturate and report False)."""
        open_totals = self.totals.get("open_system")
        return bool(open_totals and open_totals.get("saturated"))

    def describe(self):
        """Short human-readable result line (used by examples/reports)."""
        tps = self.interval("throughput")
        line = (
            f"{self.algorithm:18s} mpl={self.params.mpl:<4d} "
            f"throughput={tps.mean:7.3f} ±{tps.half_width:.3f} tps  "
            f"resp={self.mean('response_time'):6.3f}s  "
            f"restarts/commit={self.mean('restart_ratio'):5.2f}  "
            f"blocks/commit={self.mean('block_ratio'):5.2f}"
        )
        open_totals = self.totals.get("open_system")
        if open_totals:
            if open_totals.get("saturated"):
                line += (
                    f"  [SATURATED lambda="
                    f"{open_totals['arrival_rate']:.2f}/s > capacity]"
                )
            else:
                line += (
                    f"  [open: lambda="
                    f"{open_totals['arrival_rate']:.2f}/s stable]"
                )
        return line


def run_simulation(params, algorithm="blocking", run=None, seed=None,
                   record_history=False, batch_callback=None,
                   tracer=None, subscribers=(), invariants=None,
                   workload=None):
    """Run one configuration to completion using modified batch means.

    ``run.warmup_batches`` initial batches are simulated but discarded;
    each retained batch contributes one sample per output variable.
    ``seed`` overrides ``run.seed`` when given. With ``record_history``
    the result keeps the model (and its committed history) for
    verification — costs memory, off by default.

    ``workload`` substitutes the model's transaction source (anything
    with a ``new_transaction(terminal_id)`` method and a ``generated``
    counter); None builds the default seeded
    :class:`~repro.core.workload.WorkloadGenerator`. The fast lane
    passes a :class:`~repro.fastlane.TapeWorkload` here, which replays
    the byte-identical transaction sequence from a shared precomputed
    tape.

    ``tracer`` (a :class:`~repro.des.TraceRecorder`) and ``subscribers``
    (extra :mod:`repro.obs` consumers, e.g. a
    :class:`~repro.obs.TimeSeriesSampler` or :class:`~repro.obs.JsonlSink`)
    are forwarded to the model's instrumentation bus. Subscribers only
    observe, so attaching them leaves the result bit-identical.

    ``batch_callback``, if given, is invoked with the model after every
    batch boundary (warmup included). It exists for run supervision —
    the sweep runner's stall watchdog and wall-clock deadline live
    there — and may raise to abort the run; the exception propagates
    to the caller unchanged.

    ``invariants`` attaches an :class:`~repro.obs.InvariantChecker`
    that continuously audits the run's event stream: ``"strict"``
    raises :class:`~repro.obs.InvariantViolationError` at the violating
    event, ``"warn"`` records violations into
    ``result.diagnostics["invariants"]``, ``"off"`` attaches nothing.
    ``None`` (the default) defers to the ``REPRO_INVARIANTS``
    environment variable, then ``"off"``.
    """
    if run is None:
        run = RunConfig()
    if seed is not None:
        run = run.with_changes(seed=seed)
    checker, subscribers = _resolve_checker(invariants, subscribers)
    model = SystemModel(
        params,
        algorithm=algorithm,
        seed=run.seed,
        record_history=record_history,
        tracer=tracer,
        workload=workload,
        subscribers=subscribers,
    )
    analyzer = BatchMeansAnalyzer(
        warmup_batches=run.warmup_batches, confidence=run.confidence
    )
    total_batches = run.batches + run.warmup_batches
    for batch_index in range(total_batches):
        snapshot = model.metrics.snapshot()
        model.run_until((batch_index + 1) * run.batch_time)
        analyzer.record(model.metrics.batch_values(snapshot))
        if batch_callback is not None:
            batch_callback(model)
    totals = _collect_totals(model)
    return SimulationResult(
        algorithm=model.cc.name,
        params=params,
        run=run,
        analyzer=analyzer,
        totals=totals,
        model=model if record_history else None,
        diagnostics=_merge_invariant_diagnostics(
            _buffer_diagnostics(model), checker
        ),
    )


def run_until_precision(params, algorithm="blocking", run=None,
                        metric="throughput", target_relative_hw=0.05,
                        max_batches=200, seed=None,
                        tracer=None, subscribers=(), invariants=None):
    """Run with a *sequential stopping rule* instead of a fixed length.

    The paper chose its batch times per experiment to get "sufficiently
    tight 90% confidence intervals" — typically a few percent of the
    mean. This driver automates that: after each post-warmup batch it
    checks the chosen metric's confidence interval and stops as soon as
    the relative half-width drops to ``target_relative_hw`` (or at
    ``max_batches``, whichever comes first). A minimum of three batches
    is always collected so the interval is meaningful.

    Returns a :class:`SimulationResult` whose ``run.batches`` reflects
    the number of batches actually retained.
    """
    if not 0.0 < target_relative_hw:
        raise ValueError(
            f"target_relative_hw must be > 0, got {target_relative_hw}"
        )
    if max_batches < 3:
        raise ValueError(f"max_batches must be >= 3, got {max_batches}")
    run = run or RunConfig()
    if seed is not None:
        run = run.with_changes(seed=seed)
    checker, subscribers = _resolve_checker(invariants, subscribers)
    model = SystemModel(
        params, algorithm=algorithm, seed=run.seed,
        tracer=tracer, subscribers=subscribers,
    )
    analyzer = BatchMeansAnalyzer(
        warmup_batches=run.warmup_batches, confidence=run.confidence
    )
    batch_index = 0
    while True:
        snapshot = model.metrics.snapshot()
        model.run_until((batch_index + 1) * run.batch_time)
        analyzer.record(model.metrics.batch_values(snapshot))
        batch_index += 1
        retained = analyzer.batches_recorded
        if retained >= 3:
            interval = analyzer.interval(metric)
            if interval.relative_half_width <= target_relative_hw:
                break
        if retained >= max_batches:
            break
    totals = _collect_totals(model)
    return SimulationResult(
        algorithm=model.cc.name,
        params=params,
        run=run.with_changes(batches=analyzer.batches_recorded),
        analyzer=analyzer,
        totals=totals,
        diagnostics=_merge_invariant_diagnostics(
            _buffer_diagnostics(model), checker
        ),
    )
