"""Engine-level error types.

These sit in :mod:`repro.core` (not :mod:`repro.experiments.errors`)
because the engine raises them without knowing whether a sweep runner,
a notebook, or a bare :func:`repro.core.run_simulation` call is
driving it.
"""

__all__ = ["RestartLivelockError"]


class RestartLivelockError(RuntimeError):
    """The engine's zero-delay restart-livelock detector tripped.

    Raised when one transaction is restarted
    :data:`~repro.core.engine.SystemModel.ZERO_DELAY_RESTART_LIMIT`
    times at a single simulated instant with no restart delay: the same
    conflict re-occurs forever without simulated time advancing — the
    exact pathology the paper's restart delay exists to prevent.  It
    subclasses :class:`RuntimeError` for backward compatibility, but
    carries its own type so supervisors (the resilient sweep runner)
    can degrade it to a failed point without also swallowing genuine
    programming errors.
    """

    def __init__(self, tx_id, restarts, simulated_time):
        super().__init__(
            f"transaction {tx_id} restarted {restarts} times at "
            f"t={simulated_time:.6f} with no restart delay: the same "
            "conflict re-occurs without simulated time advancing. Use "
            "an adaptive or fixed restart delay for restart-oriented "
            "algorithms (see the paper's discussion of the "
            "immediate-restart delay)."
        )
        self.tx_id = tx_id
        self.restarts = restarts
        self.simulated_time = simulated_time
