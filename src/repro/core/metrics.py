"""Metrics collection: the output variables the paper's figures plot.

Per-batch values are produced by snapshot/delta over cumulative
accumulators, feeding :class:`repro.stats.BatchMeansAnalyzer`:

* ``throughput`` — commits per second (Figures 3-5, 8, 11, 12, 14, 16,
  18, 20);
* ``response_time`` mean and standard deviation (Figures 7, 10);
* ``block_ratio`` / ``restart_ratio`` — blocks/restarts per commit
  (Figure 6);
* total and useful disk (and CPU) utilization (Figures 9, 13, 15, 17,
  19, 21);
* observed average multiprogramming level (the paper's discussion of the
  restart delay as a crude mpl limiter).
"""

from repro.des import Counter, LevelMonitor
from repro.stats import P2Quantile, Welford


class RunningAverage:
    """Cumulative running average (the adaptive restart-delay input).

    The paper sets the adaptive restart delay's mean to "the running
    average of the transaction response time"; before the first commit
    an analytic estimate seeds the average.
    """

    __slots__ = ("_sum", "_count", "initial_estimate")

    def __init__(self, initial_estimate):
        self._sum = 0.0
        self._count = 0
        self.initial_estimate = initial_estimate

    def observe(self, value):
        self._sum += value
        self._count += 1

    @property
    def value(self):
        if self._count == 0:
            return self.initial_estimate
        return self._sum / self._count


class MetricsCollector:
    """All cumulative instruments for one simulation run."""

    def __init__(self, env, params, physical, open_system=False):
        self.env = env
        self.physical = physical
        #: True under an open-system workload model: enables the
        #: arrival-side batch keys and totals. Closed runs keep their
        #: exact key set, so analyzer series and golden fingerprints
        #: are untouched by the open-system instrumentation.
        self.open_system = open_system
        self.commits = Counter("commits")
        self.restarts = Counter("restarts")
        self.blocks = Counter("blocks")
        #: First submissions (TX_SUBMIT only — resubmits of restarted
        #: transactions are not new arrivals).
        self.submissions = Counter("submissions")
        self.restart_reasons = {}
        #: class name -> {"commits", "restarts", response Welford}; only
        #: populated for multiclass workloads.
        self.per_class = {}
        self.response_times = Welford()
        # Streaming percentiles over the whole run (the paper stresses
        # immediate-restart's response-time variability; tails complete
        # the picture the std dev starts).
        self.response_p50 = P2Quantile(0.50)
        self.response_p95 = P2Quantile(0.95)
        self.active_level = LevelMonitor(env, "active_transactions")
        self.ready_queue_level = LevelMonitor(env, "ready_queue")
        self.avg_response = RunningAverage(params.expected_service_time())

    # -- recording hooks (called by the engine) --------------------------------

    def record_commit(self, tx):
        self.commits.increment()
        response = tx.response_time()
        self.response_times.add(response)
        self.response_p50.add(response)
        self.response_p95.add(response)
        self.avg_response.observe(response)
        if tx.tx_class is not None:
            stats = self._class_stats(tx.tx_class)
            stats["commits"] += 1
            stats["response"].add(response)

    def record_restart(self, tx, reason):
        self.restarts.increment()
        self.restart_reasons[reason] = self.restart_reasons.get(reason, 0) + 1
        if tx.tx_class is not None:
            self._class_stats(tx.tx_class)["restarts"] += 1

    def _class_stats(self, name):
        stats = self.per_class.get(name)
        if stats is None:
            stats = self.per_class[name] = {
                "commits": 0,
                "restarts": 0,
                "response": Welford(),
            }
        return stats

    def per_class_summary(self, elapsed):
        """Per-class throughput/response/restart summary over ``elapsed``."""
        return {
            name: {
                "throughput": stats["commits"] / elapsed if elapsed else 0.0,
                "commits": stats["commits"],
                "restarts": stats["restarts"],
                "restart_ratio": (
                    stats["restarts"] / stats["commits"]
                    if stats["commits"] else 0.0
                ),
                "response_mean": stats["response"].mean,
                "response_std": stats["response"].std,
            }
            for name, stats in self.per_class.items()
        }

    def record_block(self, tx):
        self.blocks.increment()

    def record_submit(self, tx):
        self.submissions.increment()

    # -- batch snapshot/delta ---------------------------------------------------

    def snapshot(self):
        """Opaque marker of cumulative state at a batch boundary."""
        return _Snapshot(self)

    def batch_values(self, snapshot):
        """Per-batch output variables over [snapshot, now]."""
        now = self.env.now
        elapsed = now - snapshot.time
        if elapsed <= 0.0:
            raise ValueError("empty batch window")
        commits = self.commits.total - snapshot.commits
        restarts = self.restarts.total - snapshot.restarts
        blocks = self.blocks.total - snapshot.blocks
        response_delta = self.response_times.delta_since(
            snapshot.response_times
        )
        cpu = self.physical.cpu_tracker
        disk = self.physical.disk_tracker
        values = {
            "throughput": commits / elapsed,
            "commits": float(commits),
            "response_time": response_delta.mean,
            "response_time_std": response_delta.std,
            "restart_ratio": restarts / commits if commits else 0.0,
            "block_ratio": blocks / commits if commits else 0.0,
            "cpu_util": cpu.utilization(snapshot.cpu_busy, snapshot.time),
            "cpu_util_useful": cpu.useful_utilization(
                snapshot.cpu_useful, snapshot.time
            ),
            "disk_util": disk.utilization(snapshot.disk_busy, snapshot.time),
            "disk_util_useful": disk.useful_utilization(
                snapshot.disk_useful, snapshot.time
            ),
            "avg_active": self.active_level.window_average(
                snapshot.active_area, snapshot.time
            ),
            "avg_ready_queue": self.ready_queue_level.window_average(
                snapshot.ready_area, snapshot.time
            ),
        }
        if self.open_system:
            # Arrival-side series, only under open workload models so
            # closed runs' analyzer series stay byte-identical.
            submitted = self.submissions.total - snapshot.submitted
            values["arrival_rate"] = submitted / elapsed
            values["in_system"] = float(
                self.submissions.total - self.commits.total
            )
        return values


class _Snapshot:
    """Cumulative counter values at a batch boundary."""

    __slots__ = (
        "time",
        "commits",
        "restarts",
        "blocks",
        "submitted",
        "response_times",
        "cpu_busy",
        "cpu_useful",
        "disk_busy",
        "disk_useful",
        "active_area",
        "ready_area",
    )

    def __init__(self, metrics):
        self.time = metrics.env.now
        self.commits = metrics.commits.total
        self.restarts = metrics.restarts.total
        self.blocks = metrics.blocks.total
        self.submitted = metrics.submissions.total
        self.response_times = metrics.response_times.snapshot()
        self.cpu_busy = metrics.physical.cpu_tracker.busy_area()
        self.cpu_useful = metrics.physical.cpu_tracker.useful_time
        self.disk_busy = metrics.physical.disk_tracker.busy_area()
        self.disk_useful = metrics.physical.disk_tracker.useful_time
        self.active_area = metrics.active_level.area()
        self.ready_area = metrics.ready_queue_level.area()
