"""The committed-transaction history record, for verification.

Lives in its own module (rather than in :mod:`repro.core.engine`) so
the observability subscribers (:mod:`repro.obs.subscribers`) can build
records without importing the engine.
"""

__all__ = ["CommittedRecord"]


class CommittedRecord:
    """Immutable record of one committed transaction, for verification."""

    __slots__ = (
        "tx_id",
        "read_set",
        "write_set",
        "installed_writes",
        "reads_seen",
        "serial_key",
        "commit_time",
        "attempts",
    )

    def __init__(self, tx, commit_point_time):
        self.tx_id = tx.id
        self.read_set = tuple(tx.read_set)
        self.write_set = frozenset(tx.write_set)
        self.installed_writes = frozenset(tx.install_write_set)
        self.reads_seen = dict(tx.reads_seen)
        self.serial_key = tx.serial_key
        #: Time the commit point was reached (deferred-update I/O may
        #: still follow; tx.commit_time records final completion).
        self.commit_time = commit_point_time
        self.attempts = tx.attempts
