"""Replaying recorded transaction traces through the model.

The paper's workload is synthetic; a downstream user often has a trace
of *actual* transactions (read/write sets mined from a query log) and
wants to know how the concurrency-control algorithms behave on it.
:class:`ReplayWorkload` is a drop-in replacement for the random
generator: it deals transactions from a fixed list, in order, cycling
by default so closed-model terminals never starve.

Traces serialize as JSON Lines, one transaction per line::

    {"reads": [4, 17, 203], "writes": [17]}

Use :func:`save_trace`/:func:`load_trace` for files, or construct a
:class:`ReplayWorkload` from in-memory ``(reads, writes)`` pairs.
"""

import json
from itertools import count

from repro.core.transaction import Transaction


class TraceExhausted(Exception):
    """A non-cycling replay ran out of transactions."""


class ReplayWorkload:
    """Deals transactions from a recorded trace.

    ``records`` is a sequence of ``(read_set, write_set)`` pairs.
    With ``cycle=True`` (default) the trace repeats forever — required
    for the closed model's terminals; ``cycle=False`` raises
    :class:`TraceExhausted` past the end, which suits open-system runs
    bounded by the trace length.
    """

    def __init__(self, records, cycle=True):
        self._records = [
            (tuple(reads), frozenset(writes))
            for reads, writes in records
        ]
        if not self._records:
            raise ValueError("trace must contain at least one transaction")
        for index, (reads, writes) in enumerate(self._records):
            if not writes <= set(reads):
                raise ValueError(
                    f"trace record {index}: write set must be a subset "
                    "of the read set"
                )
            if len(set(reads)) != len(reads):
                raise ValueError(
                    f"trace record {index}: duplicate objects in read set"
                )
        self.cycle = cycle
        self._position = 0
        self._ids = count(1)
        self.generated = 0

    def __len__(self):
        return len(self._records)

    @property
    def max_object(self):
        """Largest object id in the trace (for db_size validation)."""
        return max(
            max(reads) for reads, _ in self._records if reads
        )

    def new_transaction(self, terminal_id):
        """The next trace transaction (cycling if configured)."""
        if self._position >= len(self._records):
            if not self.cycle:
                raise TraceExhausted(
                    f"trace of {len(self._records)} transactions exhausted"
                )
            self._position = 0
        reads, writes = self._records[self._position]
        self._position += 1
        self.generated += 1
        return Transaction(
            tx_id=next(self._ids),
            terminal_id=terminal_id,
            read_set=reads,
            write_set=writes,
        )


def save_trace(records, path):
    """Write ``(reads, writes)`` pairs as JSON Lines."""
    with open(path, "w") as f:
        for reads, writes in records:
            f.write(json.dumps(
                {"reads": sorted(reads), "writes": sorted(writes)}
            ))
            f.write("\n")


def load_trace(path, cycle=True):
    """Load a JSON Lines trace file into a :class:`ReplayWorkload`."""
    records = []
    with open(path) as f:
        for line_number, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                records.append(
                    (payload["reads"], payload.get("writes", []))
                )
            except (json.JSONDecodeError, KeyError, TypeError) as error:
                raise ValueError(
                    f"{path}:{line_number}: bad trace record ({error})"
                ) from None
    return ReplayWorkload(records, cycle=cycle)


def trace_from_history(history):
    """Convert a committed history back into replayable records.

    Lets you re-run exactly the transactions one simulation committed
    (e.g. replay a blocking run's workload under MVTO).
    """
    return [
        (record.read_set, record.write_set) for record in history
    ]
