"""Simulation parameters (the paper's Table 1) and run configuration.

`SimulationParameters.table2()` reproduces the paper's Table 2 base
settings: a 1000-page database, 8-page mean read sets (uniform 4..12),
write probability 0.25, 200 terminals, 1 second external think time,
35 ms of disk and 15 ms of CPU per object access.
"""

import math
from dataclasses import dataclass, fields, replace
from typing import Optional, Tuple

from repro.faults.spec import FaultSpec

# Restart-delay modes (how restarted transactions are delayed before
# re-entering the ready queue).
DELAY_MODE_DEFAULT = "default"        # each algorithm's own policy
DELAY_MODE_ADAPTIVE_ALL = "adaptive_all"  # Figure 11: delay for everyone
DELAY_MODE_NONE_ALL = "none_all"      # never delay (sensitivity studies;
#   WARNING: combined with algorithms that restart the *requester*
#   (immediate_restart, wait_die) this livelocks by design — the same
#   conflict re-occurs with no simulated time passing, which is exactly
#   why the paper's immediate-restart carries a delay. The engine
#   detects the spin and raises instead of hanging.
DELAY_MODE_FIXED_ALL = "fixed_all"    # fixed mean for everyone

_DELAY_MODES = (
    DELAY_MODE_DEFAULT,
    DELAY_MODE_ADAPTIVE_ALL,
    DELAY_MODE_NONE_ALL,
    DELAY_MODE_FIXED_ALL,
)

# Transaction source models.
ARRIVAL_CLOSED = "closed"  # the paper's fixed terminal population
ARRIVAL_OPEN = "open"      # Poisson arrivals at a fixed rate

_ARRIVAL_MODES = (ARRIVAL_CLOSED, ARRIVAL_OPEN)

# Buffer-pool probe policies (the ``buffered`` resource model).
BUFFER_POLICY_LRU = "lru"      # exact LRU directory over object ids
BUFFER_POLICY_FIXED = "fixed"  # every probe hits with buffer_hit_ratio

_BUFFER_POLICIES = (BUFFER_POLICY_LRU, BUFFER_POLICY_FIXED)

# Object→disk placements (the ``skewed_disks`` resource model; the
# ``distributed`` model reuses the same machinery for object→node
# sharding).
DISK_PLACEMENT_CONTIGUOUS = "contiguous"  # id runs map to one disk each
DISK_PLACEMENT_STRIPED = "striped"        # round-robin (perfect striping)

_DISK_PLACEMENTS = (DISK_PLACEMENT_CONTIGUOUS, DISK_PLACEMENT_STRIPED)

# Commit protocols (the CC layer's commit-point seam). ``single_site``
# is the paper's atomic commit point; ``2pc`` wraps it in two-phase
# commit across the nodes a transaction touched.
COMMIT_SINGLE_SITE = "single_site"
COMMIT_TWO_PHASE = "2pc"


def normalize_workload_spec(spec):
    """Canonicalize a workload-spec mapping to a hashable tuple form.

    Accepts a dict (or an already-normalized tuple of pairs) and
    returns a sorted tuple of ``(key, value)`` pairs with list/tuple
    values recursively converted to tuples. The canonical form is
    hashable and order-independent, so it is safe inside the frozen
    parameter dataclass, fastlane workload signatures and checkpoint
    headers.
    """
    if isinstance(spec, dict):
        items = spec.items()
    else:
        items = list(spec)
    normalized = []
    for key, value in sorted(items):
        if not isinstance(key, str) or not key:
            raise ValueError(
                f"workload_spec keys must be non-empty strings, got {key!r}"
            )
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        elif value is not None and not isinstance(
            value, (str, int, float, bool)
        ):
            raise ValueError(
                f"workload_spec[{key!r}] must be a scalar or sequence, "
                f"got {type(value).__name__}"
            )
        normalized.append((key, value))
    keys = [key for key, _ in normalized]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate workload_spec keys: {keys}")
    return tuple(normalized)


@dataclass(frozen=True)
class TransactionClass:
    """One class in a multiclass workload mix.

    ``weight`` is the relative arrival frequency; size and write
    probability override the global parameters for transactions of
    this class.
    """

    name: str
    weight: float
    min_size: int
    max_size: int
    write_prob: float

    def __post_init__(self):
        if not self.name:
            raise ValueError("class name must be non-empty")
        if self.weight <= 0.0:
            raise ValueError(
                f"class {self.name!r}: weight must be > 0, "
                f"got {self.weight}"
            )
        if not 1 <= self.min_size <= self.max_size:
            raise ValueError(
                f"class {self.name!r}: need 1 <= min_size <= max_size"
            )
        if not 0.0 <= self.write_prob <= 1.0:
            raise ValueError(
                f"class {self.name!r}: write_prob must be in [0, 1]"
            )


@dataclass(frozen=True)
class SimulationParameters:
    """Workload, database and physical-resource parameters (Table 1).

    ``num_cpus``/``num_disks`` of None model the paper's *infinite
    resources* assumption: transactions never queue for CPU or I/O.

    All times are in seconds.
    """

    #: Number of objects (= pages) in the database.
    db_size: int = 1000
    #: Smallest transaction read-set size.
    min_size: int = 4
    #: Largest transaction read-set size.
    max_size: int = 12
    #: Pr[object is also written | object is read].
    write_prob: float = 0.25
    #: Number of terminals (the fixed user population of the closed model).
    num_terms: int = 200
    #: Multiprogramming level: max transactions active in the DBMS.
    mpl: int = 10
    #: Mean time between transactions, per terminal (exponential).
    ext_think_time: float = 1.0
    #: Mean intra-transaction think time between reads and writes
    #: (exponential); 0 disables the think path.
    int_think_time: float = 0.0
    #: I/O time to access one object.
    obj_io: float = 0.035
    #: CPU time to access one object.
    obj_cpu: float = 0.015
    #: CPU time per concurrency-control request (0 in the paper's tables;
    #: CC requests still get priority at the CPU when nonzero).
    cc_cpu: float = 0.0
    #: Number of CPU servers (None = infinite resources).
    num_cpus: Optional[int] = 1
    #: Number of disks (None = infinite resources).
    num_disks: Optional[int] = 2
    #: Restart-delay mode; see the DELAY_MODE_* constants.
    restart_delay_mode: str = DELAY_MODE_DEFAULT
    #: Mean restart delay when ``restart_delay_mode == "fixed_all"``.
    restart_delay: float = 1.0
    #: Hotspot skew (both None = the paper's uniform access pattern):
    #: ``hot_fraction`` of the database receives ``hot_access_prob`` of
    #: the accesses (the classic "x% of accesses to y% of the data"
    #: skew of later studies in this model family).
    hot_fraction: Optional[float] = None
    hot_access_prob: Optional[float] = None
    #: Transaction source model. The paper uses a closed system (a
    #: fixed terminal population resubmits after thinking); ``"open"``
    #: replaces the terminals with a Poisson arrival stream of
    #: ``arrival_rate`` transactions/second — a common alternative
    #: modeling assumption whose consequences the framework lets you
    #: study directly.
    arrival_mode: str = ARRIVAL_CLOSED
    arrival_rate: float = 10.0
    #: Workload model, by registry name (see :mod:`repro.workloads`):
    #: ``closed_classic`` (the paper's terminal pool, the default),
    #: ``open_poisson`` (Poisson or MMPP arrivals), ``heavy_tailed``
    #: (lognormal/Pareto think and service-size distributions),
    #: ``trace`` (deterministic JSONL playback with feedback routing).
    #: Validated lazily at model construction, like ``resource_model``,
    #: so plugin-registered models work without touching this module.
    #: ``arrival_mode="open"`` with the default model resolves to
    #: ``open_poisson`` (the legacy spelling of the same source).
    workload_model: str = "closed_classic"
    #: Model-specific options for ``workload_model``, as a mapping
    #: (normalized to a sorted tuple of (key, value) pairs so parameter
    #: sets stay hashable and signature-stable). Keys are defined by
    #: each model: e.g. ``open_poisson`` takes ``process="mmpp"``,
    #: ``rates``/``sojourns``; ``heavy_tailed`` takes ``preset``,
    #: ``think_dist``, ``think_cv``, ``pareto_alpha``, ``size_dist``,
    #: ``size_cv``; ``trace`` takes ``path``, ``feedback_prob``,
    #: ``feedback_delay``, ``cycle``.
    workload_spec: Optional[Tuple] = None
    #: Concurrency-control granularity: the database is divided into
    #: this many equal granules and CC requests (locks, timestamps,
    #: validation) operate on granules rather than objects — the
    #: classic granularity trade-off of the model's ancestors
    #: [Ries77, Ries79]. None = object-level CC (the paper's setting,
    #: objects == pages == granules).
    lock_granules: Optional[int] = None
    #: Multiclass workload mix (None = the paper's single class using
    #: min_size/max_size/write_prob). With a mix, each new transaction
    #: draws its class by weight and uses that class's size and write
    #: probability.
    workload_mix: Optional[Tuple[TransactionClass, ...]] = None
    #: Fault injection (None = the paper's always-healthy resources).
    #: See :mod:`repro.faults`: disk crash/repair, CPU degradation
    #: windows, transient access faults — all seeded from dedicated RNG
    #: streams, so a null spec reproduces the healthy run bit-for-bit.
    faults: Optional[FaultSpec] = None
    #: Which physical tier to simulate, by registry name (see
    #: :mod:`repro.resources`): ``classic`` (the paper's Figure 2,
    #: the default), ``infinite``, ``buffered``, ``skewed_disks``.
    #: Validated lazily at model construction so plugin-registered
    #: models are usable without touching this module.
    resource_model: str = "classic"
    #: Buffer-pool pages for ``resource_model="buffered"`` with the LRU
    #: policy (None = db_size // 10).
    buffer_capacity: Optional[int] = None
    #: Buffer probe policy for the buffered model: ``"lru"`` (exact LRU
    #: directory, deterministic) or ``"fixed"`` (every probe hits with
    #: ``buffer_hit_ratio``, drawn from a dedicated stream).
    buffer_policy: str = BUFFER_POLICY_LRU
    #: Hit probability for ``buffer_policy="fixed"`` (required then).
    buffer_hit_ratio: Optional[float] = None
    #: Object→disk placement for ``resource_model="skewed_disks"``:
    #: ``"contiguous"`` (hot data ⇒ hot spindles) or ``"striped"``.
    #: The ``distributed`` model reuses the same placement machinery
    #: for object→node sharding.
    disk_placement: str = DISK_PLACEMENT_CONTIGUOUS
    #: Number of sites for ``resource_model="distributed"``: each node
    #: gets its own CPU pool and disk set (``num_cpus``/``num_disks``
    #: are *per-node* counts there). 1 (the default) is the paper's
    #: single-site model; other resource models ignore this.
    nodes: int = 1
    #: Mean one-way delay of one cross-node message (exponential,
    #: seeded from the ``resources.network`` stream). 0 models an
    #: instantaneous interconnect; local messages are always free.
    network_delay: float = 0.0
    #: Copies of each object in the distributed model: replicas live on
    #: the ring successors of the primary node. Reads go to the nearest
    #: copy; commit-time writes update every copy. 1 = no replication.
    replication_factor: int = 1
    #: Commit protocol at the CC layer's commit point (see
    #: :mod:`repro.cc`): ``"single_site"`` (the paper's atomic commit
    #: point) or ``"2pc"`` (two-phase commit across the nodes the
    #: transaction touched). Validated lazily at model construction so
    #: plugin-registered protocols work without touching this module.
    commit_protocol: str = COMMIT_SINGLE_SITE

    def __post_init__(self):
        if self.workload_mix is not None and not isinstance(
            self.workload_mix, tuple
        ):
            object.__setattr__(
                self, "workload_mix", tuple(self.workload_mix)
            )
        if self.workload_spec is not None:
            object.__setattr__(
                self, "workload_spec",
                normalize_workload_spec(self.workload_spec),
            )
        if self.db_size < 1:
            raise ValueError(f"db_size must be >= 1, got {self.db_size}")
        if not 1 <= self.min_size <= self.max_size:
            raise ValueError(
                f"need 1 <= min_size <= max_size, got "
                f"[{self.min_size}, {self.max_size}]"
            )
        if self.max_size > self.db_size:
            raise ValueError(
                f"max_size ({self.max_size}) exceeds db_size ({self.db_size})"
            )
        if not 0.0 <= self.write_prob <= 1.0:
            raise ValueError(f"write_prob must be in [0,1]: {self.write_prob}")
        if self.num_terms < 1:
            raise ValueError(f"num_terms must be >= 1, got {self.num_terms}")
        if self.mpl < 1:
            raise ValueError(f"mpl must be >= 1, got {self.mpl}")
        for name in ("ext_think_time", "int_think_time", "obj_io",
                     "obj_cpu", "cc_cpu", "restart_delay"):
            value = getattr(self, name)
            if value < 0 or math.isnan(value):
                raise ValueError(f"{name} must be >= 0, got {value}")
        for name in ("num_cpus", "num_disks"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {value}")
        if self.restart_delay_mode not in _DELAY_MODES:
            raise ValueError(
                f"restart_delay_mode must be one of {_DELAY_MODES}, "
                f"got {self.restart_delay_mode!r}"
            )
        if (self.hot_fraction is None) != (self.hot_access_prob is None):
            raise ValueError(
                "hot_fraction and hot_access_prob must be set together"
            )
        if self.hot_fraction is not None:
            if not 0.0 < self.hot_fraction < 1.0:
                raise ValueError(
                    f"hot_fraction must be in (0, 1): {self.hot_fraction}"
                )
            if not 0.0 <= self.hot_access_prob <= 1.0:
                raise ValueError(
                    f"hot_access_prob must be in [0, 1]: "
                    f"{self.hot_access_prob}"
                )
            if self.hot_object_count() < 1:
                raise ValueError(
                    "hot region is empty; increase hot_fraction or db_size"
                )
            if self.db_size - self.hot_object_count() < self.max_size:
                raise ValueError(
                    "cold region smaller than max_size; transactions "
                    "could not be drawn when every access goes cold"
                )
        if self.arrival_mode not in _ARRIVAL_MODES:
            raise ValueError(
                f"arrival_mode must be one of {_ARRIVAL_MODES}, "
                f"got {self.arrival_mode!r}"
            )
        if self.arrival_mode == ARRIVAL_OPEN and self.arrival_rate <= 0:
            raise ValueError(
                f"arrival_rate must be > 0 for open arrivals, "
                f"got {self.arrival_rate}"
            )
        if not self.workload_model or not isinstance(
            self.workload_model, str
        ):
            raise ValueError(
                f"workload_model must be a non-empty registry name, "
                f"got {self.workload_model!r}"
            )
        if self.arrival_mode == ARRIVAL_OPEN and self.workload_model not in (
            "closed_classic", "open_poisson"
        ):
            raise ValueError(
                f"arrival_mode='open' is the legacy spelling of the "
                f"open_poisson workload model; it cannot combine with "
                f"workload_model={self.workload_model!r}"
            )
        if self.lock_granules is not None and not (
            1 <= self.lock_granules <= self.db_size
        ):
            raise ValueError(
                f"lock_granules must be in [1, db_size], "
                f"got {self.lock_granules}"
            )
        if self.faults is not None:
            if not isinstance(self.faults, FaultSpec):
                raise TypeError(
                    f"faults must be a FaultSpec, got {type(self.faults)!r}"
                )
            if self.faults.disk is not None and self.num_disks is None:
                raise ValueError(
                    "disk faults require finite disks; set num_disks or "
                    "drop FaultSpec.disk"
                )
        if not self.resource_model or not isinstance(
            self.resource_model, str
        ):
            raise ValueError(
                f"resource_model must be a non-empty registry name, "
                f"got {self.resource_model!r}"
            )
        if self.buffer_policy not in _BUFFER_POLICIES:
            raise ValueError(
                f"buffer_policy must be one of {_BUFFER_POLICIES}, "
                f"got {self.buffer_policy!r}"
            )
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ValueError(
                f"buffer_capacity must be >= 1 or None, "
                f"got {self.buffer_capacity}"
            )
        if self.buffer_hit_ratio is not None and not (
            0.0 <= self.buffer_hit_ratio <= 1.0
        ):
            raise ValueError(
                f"buffer_hit_ratio must be in [0, 1], "
                f"got {self.buffer_hit_ratio}"
            )
        if self.disk_placement not in _DISK_PLACEMENTS:
            raise ValueError(
                f"disk_placement must be one of {_DISK_PLACEMENTS}, "
                f"got {self.disk_placement!r}"
            )
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.network_delay < 0 or math.isnan(self.network_delay):
            raise ValueError(
                f"network_delay must be >= 0, got {self.network_delay}"
            )
        if not 1 <= self.replication_factor <= self.nodes:
            raise ValueError(
                f"replication_factor must be in [1, nodes], got "
                f"{self.replication_factor} with nodes={self.nodes}"
            )
        if not self.commit_protocol or not isinstance(
            self.commit_protocol, str
        ):
            raise ValueError(
                f"commit_protocol must be a non-empty registry name, "
                f"got {self.commit_protocol!r}"
            )
        if self.workload_mix is not None:
            if not self.workload_mix:
                raise ValueError("workload_mix must not be empty")
            names = [cls.name for cls in self.workload_mix]
            if len(set(names)) != len(names):
                raise ValueError(
                    f"duplicate class names in workload_mix: {names}"
                )
            for cls in self.workload_mix:
                if cls.max_size > self.db_size:
                    raise ValueError(
                        f"class {cls.name!r}: max_size exceeds db_size"
                    )

    # -- derived quantities ------------------------------------------------

    @property
    def tran_size(self):
        """Mean read-set size.

        Single class: the mean of the uniform [min_size, max_size];
        with a workload mix, the weight-averaged class mean.
        """
        return self.expected_reads()

    def expected_reads(self):
        """Mean objects read per transaction (across classes)."""
        if self.workload_mix is None:
            return (self.min_size + self.max_size) / 2.0
        total_weight = sum(cls.weight for cls in self.workload_mix)
        return sum(
            cls.weight * (cls.min_size + cls.max_size) / 2.0
            for cls in self.workload_mix
        ) / total_weight

    def expected_writes(self):
        """Mean objects written per transaction (across classes)."""
        if self.workload_mix is None:
            return self.tran_size * self.write_prob
        total_weight = sum(cls.weight for cls in self.workload_mix)
        return sum(
            cls.weight * (cls.min_size + cls.max_size) / 2.0
            * cls.write_prob
            for cls in self.workload_mix
        ) / total_weight

    def workload_options(self):
        """The normalized ``workload_spec`` as a plain dict ({} if unset)."""
        if self.workload_spec is None:
            return {}
        return dict(self.workload_spec)

    def cc_unit_of(self, obj):
        """The concurrency-control unit (granule) covering ``obj``.

        Objects map to contiguous equal-sized granules; with
        ``lock_granules`` unset this is the identity (object-level CC).
        """
        if self.lock_granules is None:
            return obj
        return obj * self.lock_granules // self.db_size

    def hot_object_count(self):
        """Number of objects in the hot region (0 for uniform access)."""
        if self.hot_fraction is None:
            return 0
        return int(self.db_size * self.hot_fraction)

    @property
    def has_hotspot(self):
        return self.hot_fraction is not None

    @property
    def infinite_resources(self):
        """True when the run uses the infinite-resources assumption."""
        return self.num_cpus is None and self.num_disks is None

    def expected_service_time(self):
        """No-contention, no-queueing time for an average transaction.

        Reads cost obj_io + obj_cpu each; each written object adds
        obj_cpu at the write request and obj_io at deferred-update time.
        Used to seed the adaptive restart-delay estimate before the first
        commit is observed.
        """
        reads = self.expected_reads() * (self.obj_io + self.obj_cpu)
        writes = self.expected_writes() * (self.obj_cpu + self.obj_io)
        return reads + writes + self.int_think_time

    def with_changes(self, **changes):
        """A copy with the given fields replaced (validated afresh)."""
        return replace(self, **changes)

    @classmethod
    def table2(cls, **overrides):
        """The paper's Table 2 settings (finite resources: 1 CPU, 2 disks).

        ``mpl`` defaults to 10 here; experiments sweep it over
        {5, 10, 25, 50, 75, 100, 200}.
        """
        base = dict(
            db_size=1000,
            min_size=4,
            max_size=12,
            write_prob=0.25,
            num_terms=200,
            ext_think_time=1.0,
            obj_io=0.035,
            obj_cpu=0.015,
            num_cpus=1,
            num_disks=2,
        )
        base.update(overrides)
        return cls(**base)

    def describe(self):
        """Multi-line human-readable parameter listing."""
        lines = []
        for f in fields(self):
            lines.append(f"  {f.name} = {getattr(self, f.name)!r}")
        return "SimulationParameters(\n" + "\n".join(lines) + "\n)"


#: The multiprogramming levels swept by the paper's experiments.
PAPER_MPLS = (5, 10, 25, 50, 75, 100, 200)


@dataclass(frozen=True)
class RunConfig:
    """Statistical run controls (the paper's batch-means discipline)."""

    #: Post-warmup batches (the paper uses 20).
    batches: int = 20
    #: Simulated seconds per batch.
    batch_time: float = 30.0
    #: Leading batches discarded as warmup.
    warmup_batches: int = 1
    #: Root seed for all random streams.
    seed: int = 42
    #: Confidence level for reported intervals (the paper uses 90%).
    confidence: float = 0.90

    def __post_init__(self):
        if self.batches < 1:
            raise ValueError(f"batches must be >= 1, got {self.batches}")
        if self.batch_time <= 0:
            raise ValueError(
                f"batch_time must be > 0, got {self.batch_time}"
            )
        if self.warmup_batches < 0:
            raise ValueError(
                f"warmup_batches must be >= 0, got {self.warmup_batches}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0,1), got {self.confidence}"
            )

    @property
    def total_time(self):
        """Total simulated time including warmup."""
        return (self.batches + self.warmup_batches) * self.batch_time

    def with_changes(self, **changes):
        return replace(self, **changes)
