"""Transaction generation per the paper's workload model.

A transaction reads ``N ~ Uniform[min_size, max_size]`` distinct objects
chosen uniformly without replacement from the ``db_size`` objects; each
read object is also written with probability ``write_prob``.
"""

from bisect import bisect_right
from itertools import count

from repro.core.transaction import Transaction


class WorkloadGenerator:
    """Draws new transactions from seeded random streams."""

    def __init__(self, params, streams):
        self.params = params
        self._size_rng = streams.stream("workload.size")
        self._objects_rng = streams.stream("workload.objects")
        self._write_rng = streams.stream("workload.writes")
        self._class_rng = streams.stream("workload.class")
        self._ids = count(1)
        self.generated = 0
        if params.workload_mix is not None:
            # Cumulative weights, summed once here in class order; the
            # same left-to-right additions the per-draw loop used to
            # repeat, so the boundaries (and every draw) are unchanged.
            self._class_cumulative = []
            cumulative = 0.0
            for cls in params.workload_mix:
                cumulative += cls.weight
                self._class_cumulative.append(cumulative)
            self._total_weight = cumulative
        else:
            self._class_cumulative = None

    def _draw_class(self):
        """Weighted class choice, or None for the single-class model."""
        if self._class_cumulative is None:
            return None
        pick = self._class_rng.random() * self._total_weight
        # bisect_right finds the first boundary strictly above pick —
        # exactly the old loop's ``pick < cumulative`` exit. The clamp
        # covers pick rounding up onto the final boundary.
        index = bisect_right(self._class_cumulative, pick)
        mix = self.params.workload_mix
        return mix[index] if index < len(mix) else mix[-1]

    def _draw_size(self, min_size, max_size):
        """Read-set size draw; the paper's Uniform[min_size, max_size].

        The single hook subclasses override (see
        ``repro.workloads.heavy_tailed.HeavyTailedGenerator``) to swap
        the size distribution without touching the object/write draws.
        """
        return self._size_rng.uniform_int(min_size, max_size)

    def new_transaction(self, terminal_id):
        """A fresh transaction for ``terminal_id``."""
        params = self.params
        tx_class = self._draw_class()
        if tx_class is None:
            min_size, max_size = params.min_size, params.max_size
            write_prob = params.write_prob
        else:
            min_size, max_size = tx_class.min_size, tx_class.max_size
            write_prob = tx_class.write_prob
        size = self._draw_size(min_size, max_size)
        if params.has_hotspot:
            read_set = self._skewed_read_set(size)
        else:
            read_set = self._objects_rng.sample_without_replacement(
                params.db_size, size
            )
        # One batched draw per transaction instead of one call per
        # object; the flags come out in read-set order, exactly as the
        # per-object loop drew them.
        write_flags = self._write_rng.bernoulli_many(write_prob, size)
        write_set = [
            obj for obj, write in zip(read_set, write_flags) if write
        ]
        self.generated += 1
        tx = Transaction(
            tx_id=next(self._ids),
            terminal_id=terminal_id,
            read_set=read_set,
            write_set=write_set,
        )
        tx.tx_class = tx_class.name if tx_class is not None else None
        return tx

    def _skewed_read_set(self, size):
        """Draw ``size`` distinct objects under the hotspot skew.

        Each access independently targets the hot region (the first
        ``hot_object_count`` objects) with probability
        ``hot_access_prob``; per region, objects are drawn uniformly
        without replacement. If one region cannot supply its share of
        distinct objects the overflow spills into the other.
        """
        params = self.params
        hot_size = params.hot_object_count()
        cold_size = params.db_size - hot_size
        hot_wanted = sum(
            self._objects_rng.bernoulli_many(params.hot_access_prob, size)
        )
        hot_wanted = min(hot_wanted, hot_size)
        cold_wanted = size - hot_wanted
        if cold_wanted > cold_size:  # spill back into the hot region
            hot_wanted += cold_wanted - cold_size
            cold_wanted = cold_size
        hot_objects = self._objects_rng.sample_without_replacement(
            hot_size, hot_wanted
        )
        cold_objects = [
            hot_size + obj
            for obj in self._objects_rng.sample_without_replacement(
                cold_size, cold_wanted
            )
        ]
        read_set = hot_objects + cold_objects
        self._objects_rng.shuffle(read_set)
        return read_set
