"""Transactions: identity, read/write sets, and per-attempt state.

A transaction is "a sequence of actions {a1 ... an}, where ai is either
read or write" (paper, section 2). The simulator keeps backup copies of
the read and write sets so a restarted transaction makes "all of the same
concurrency control requests and object accesses over again".
"""

from enum import Enum


class TxState(Enum):
    """Where a transaction currently is in the logical queuing model."""

    AT_TERMINAL = "at_terminal"      # external think, not yet submitted
    READY = "ready"                  # in the ready queue (not active)
    RUNNING = "running"              # active: executing reads/writes
    BLOCKED = "blocked"              # active: waiting in the blocked queue
    THINKING = "thinking"            # active: intra-transaction think
    COMMITTING = "committing"        # active: past commit point, updating
    RESTART_DELAY = "restart_delay"  # aborted, delayed before resubmission
    COMMITTED = "committed"          # done


#: States in which a transaction counts against the multiprogramming level.
ACTIVE_STATES = frozenset(
    (TxState.RUNNING, TxState.BLOCKED, TxState.THINKING, TxState.COMMITTING)
)


class Transaction:
    """One transaction: fixed read/write sets plus mutable attempt state."""

    __slots__ = (
        "id",
        "terminal_id",
        "read_set",
        "write_set",
        "state",
        "first_submit_time",
        "priority_ts",
        "cc_timestamp",
        "attempts",
        "attempt_start_time",
        "attempt_cpu_time",
        "attempt_disk_time",
        "commit_time",
        "lock_wait_event",
        "serial_key",
        "install_write_set",
        "reads_seen",
        "process",
        "done_event",
        "to_skipped_writes",
        "mv_reads_from",
        "static_lock_plan",
        "static_lock_index",
        "cc_read_set",
        "cc_write_set",
        "tx_class",
        "reentry_of",
    )

    def __init__(self, tx_id, terminal_id, read_set, write_set):
        write_set = frozenset(write_set)
        read_set = tuple(read_set)
        if not write_set <= set(read_set):
            raise ValueError("write set must be a subset of the read set")
        self.id = tx_id
        self.terminal_id = terminal_id
        self.read_set = read_set
        self.write_set = write_set
        self.state = TxState.AT_TERMINAL
        self.first_submit_time = None
        #: Priority timestamp for wound-wait/wait-die: assigned at first
        #: submission and kept across restarts, so transactions age.
        self.priority_ts = None
        #: Per-attempt timestamp for timestamp-ordering algorithms.
        self.cc_timestamp = None
        self.attempts = 0
        self.attempt_start_time = None
        self.attempt_cpu_time = 0.0
        self.attempt_disk_time = 0.0
        self.commit_time = None
        self.lock_wait_event = None
        self.serial_key = None
        self.install_write_set = write_set
        #: obj -> value observed by this attempt's reads (for the
        #: serializability checker; values come from the ObjectStore).
        self.reads_seen = {}
        self.process = None
        self.done_event = None
        self.to_skipped_writes = set()
        self.mv_reads_from = {}
        self.static_lock_plan = None
        self.static_lock_index = 0
        #: Concurrency-control units (granules) corresponding to the
        #: read/write sets; identical to them at object-level CC.
        #: Deduplicated, read order preserved. Set by the engine.
        self.cc_read_set = read_set
        self.cc_write_set = write_set
        #: Workload-mix class name (None in the single-class model).
        self.tx_class = None
        #: Id of the completed transaction whose feedback routing
        #: spawned this one (trace workload model), or None for
        #: first-entry work. Distinct from restarts: a re-entry is a
        #: *new* transaction, with its own id and response time.
        self.reentry_of = None

    # -- attempt lifecycle ---------------------------------------------------

    def begin_attempt(self, now, cc_timestamp):
        """Reset per-attempt state at the start of an (re)execution."""
        self.attempts += 1
        self.attempt_start_time = now
        self.cc_timestamp = cc_timestamp
        self.attempt_cpu_time = 0.0
        self.attempt_disk_time = 0.0
        self.lock_wait_event = None
        self.install_write_set = self.write_set
        self.reads_seen = {}
        self.to_skipped_writes = set()
        self.mv_reads_from = {}
        self.state = TxState.RUNNING

    @property
    def is_read_only(self):
        return not self.write_set

    @property
    def is_committing(self):
        """Past the commit point (used by wound-wait to spare finishers)."""
        return self.state is TxState.COMMITTING

    @property
    def is_active(self):
        return self.state in ACTIVE_STATES

    @property
    def size(self):
        """Number of objects read (the paper's transaction size)."""
        return len(self.read_set)

    def response_time(self):
        """First submission to commit, or None if not yet committed."""
        if self.commit_time is None or self.first_submit_time is None:
            return None
        return self.commit_time - self.first_submit_time

    def __repr__(self):
        return (
            f"<Transaction {self.id} {self.state.value} "
            f"reads={len(self.read_set)} writes={len(self.write_set)} "
            f"attempts={self.attempts}>"
        )
