"""The ``buffered`` resource model: a main-memory buffer pool.

Extends the classic CPU/disk tier with a database buffer cache in front
of the disks, after Thomasian's heterogeneous data access modeling
(arXiv:2404.02276): an object read probes the cache first and consumes
disk service only on a miss, so the effective I/O demand per
transaction drops with the hit ratio while CPU demand is unchanged.
Deferred updates are written through at commit time (the write-back is
charged as disk service at deferred-update time, never hidden), and the
written page becomes resident.

Two probe policies, selected by ``params.buffer_policy``:

* ``lru`` — an exact LRU directory over object ids with capacity
  ``params.buffer_capacity`` pages (default: one tenth of the
  database). Deterministic given the access sequence: no RNG draws, so
  the classic model's streams are untouched.
* ``fixed`` — every probe hits with probability
  ``params.buffer_hit_ratio`` (required), drawn from the dedicated
  ``resources.buffer`` stream — the analytic-model convention when the
  miss process, not the reference pattern, is what's being studied.

Cache activity is published on the instrumentation bus as
``buffer_hit``/``buffer_miss``/``buffer_writeback`` events; the model's
own counters ride a :class:`~repro.obs.BufferAccountingSubscriber` it
attaches (mirroring the fault injector's accounting), and surface via
:meth:`buffer_summary` in run totals, ``SimulationResult.diagnostics``,
and the sweep report's hit-ratio table.
"""

from collections import OrderedDict

from repro.obs.bus import InstrumentationBus
from repro.obs.events import BUFFER_HIT, BUFFER_MISS, BUFFER_WRITEBACK
from repro.obs.subscribers import BufferAccountingSubscriber
from repro.resources.base import ResourceModel

#: Default LRU capacity when ``buffer_capacity`` is unset: one tenth of
#: the database, the classic rule-of-thumb buffer-to-data ratio.
DEFAULT_CAPACITY_FRACTION = 10


class BufferedResourceModel(ResourceModel):
    """Classic tier + buffer pool: disk service only on a miss."""

    name = "buffered"

    def __init__(self, env, params, streams, bus=None):
        super().__init__(env, params, streams, bus=bus)
        self.policy = params.buffer_policy
        if self.policy == "fixed":
            if params.buffer_hit_ratio is None:
                raise ValueError(
                    "buffer_policy='fixed' requires buffer_hit_ratio"
                )
            self.capacity = None
            self._hit_rng = streams.stream("resources.buffer")
            self._lru = None
        else:
            self.capacity = (
                params.buffer_capacity
                if params.buffer_capacity is not None
                else max(1, params.db_size // DEFAULT_CAPACITY_FRACTION)
            )
            self._hit_rng = None
            #: LRU directory: object id -> None, oldest first.
            self._lru = OrderedDict()
        # Cache accounting rides the event stream like fault accounting
        # does; standalone use (tests) without a bus gets a private one.
        if self.bus is None:
            self.bus = InstrumentationBus(env)
        self.accounting = self.bus.attach(BufferAccountingSubscriber())

    # -- cache mechanics ----------------------------------------------------

    def _probe(self, obj):
        """True if reading ``obj`` hits the buffer pool.

        ``obj`` of None (object-blind callers, e.g. tests driving the
        service interface directly) never hits under LRU — there is no
        identity to find — and draws normally under the fixed policy.
        """
        if self._hit_rng is not None:
            return self._hit_rng.bernoulli(self.params.buffer_hit_ratio)
        if obj is None:
            return False
        lru = self._lru
        if obj in lru:
            lru.move_to_end(obj)
            return True
        return False

    def _fill(self, obj):
        """Make ``obj`` resident after a completed disk transfer."""
        lru = self._lru
        if lru is None or obj is None:
            return
        lru[obj] = None
        lru.move_to_end(obj)
        if len(lru) > self.capacity:
            lru.popitem(last=False)

    # -- service composites -------------------------------------------------

    def read_access(self, tx, obj=None):
        """Read one object: disk only on a buffer miss, then CPU."""
        faults = self.faults
        if faults is not None:
            faults.check_access_fault(tx)
        bus = self.bus
        if self._probe(obj):
            bus.emit(BUFFER_HIT, tx=tx, obj=obj)
        else:
            bus.emit(BUFFER_MISS, tx=tx, obj=obj)
            yield from self.disk_service_at(
                tx, self._pick_disk(), self.params.obj_io
            )
            # Resident only once the transfer completed: an abort
            # mid-service leaves the cache unchanged.
            self._fill(obj)
        yield from self.cpu_service(tx, self.params.obj_cpu)

    def deferred_update(self, tx, obj=None):
        """Write one deferred update through to disk at commit time.

        The write-back is charged here, in full, and the written page
        becomes resident for subsequent readers.
        """
        self.bus.emit(BUFFER_WRITEBACK, tx=tx, obj=obj)
        yield from self.disk_service(tx, self.params.obj_io)
        self._fill(obj)

    # -- reporting ----------------------------------------------------------

    def buffer_summary(self):
        accounting = self.accounting
        return {
            "policy": self.policy,
            "capacity": self.capacity,
            "hits": accounting.hits,
            "misses": accounting.misses,
            "hit_ratio": accounting.hit_ratio,
            "writebacks": accounting.writebacks,
        }

    def describe_resources(self):
        labels = super().describe_resources()
        labels["buffer"] = (
            f"fixed:{self.params.buffer_hit_ratio}"
            if self.policy == "fixed"
            else f"lru:{self.capacity}"
        )
        return labels
