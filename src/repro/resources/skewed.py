"""The ``skewed_disks`` resource model: placement-aware disks.

The classic model spreads every access uniformly over the disks, which
quietly assumes perfect striping: even a hot-spot workload (the
``hot_fraction``/``hot_access_prob`` skew of paper Section 6.2) loads
all spindles equally, so data skew never becomes *resource* skew. This
model makes object→disk placement explicit, after Di Sanzo's
data-access-pattern analysis (arXiv:2104.03187): each object lives on
one disk, so a skewed reference pattern piles its accesses onto the hot
object's spindle and disk queueing amplifies the contention the
workload skew creates.

Two placements, selected by ``params.disk_placement``:

* ``contiguous`` — object ids map to disks in db_size/num_disks runs
  (``obj * num_disks // db_size``). The workload's hot region is the
  *first* ``hot_fraction`` of the id space, so with hotspot skew the
  low-numbered disks become the hot spindles — the interesting case.
* ``striped`` — round-robin (``obj % num_disks``): explicit perfect
  striping. Hot objects spread over all disks; useful as the control
  arm that isolates queueing-skew effects from placement itself.

Placement is a pure function of the object id — no RNG draws, so the
disk-choice stream is untouched. Requires finite disks: placement on an
infinite server pool is meaningless.
"""

from repro.resources.base import ResourceModel

PLACEMENT_CONTIGUOUS = "contiguous"
PLACEMENT_STRIPED = "striped"


class SkewedDisksResourceModel(ResourceModel):
    """Deterministic object→disk placement (hot data ⇒ hot spindles)."""

    name = "skewed_disks"

    def __init__(self, env, params, streams, bus=None):
        if params.num_disks is None:
            raise ValueError(
                "resource_model='skewed_disks' requires finite disks "
                "(num_disks is None: placement on infinite servers is "
                "meaningless)"
            )
        super().__init__(env, params, streams, bus=bus)
        self._striped = params.disk_placement == PLACEMENT_STRIPED
        self._num_disks = params.num_disks
        self._db_size = params.db_size

    def disk_for(self, obj):
        """The disk holding ``obj`` (None → uniform fallback draw)."""
        if obj is None:
            return self._pick_disk()
        if self._striped:
            return obj % self._num_disks
        return obj * self._num_disks // self._db_size

    # -- service composites -------------------------------------------------

    def read_access(self, tx, obj=None):
        """Read one object from the disk that holds it, then CPU."""
        if self.faults is not None:
            self.faults.check_access_fault(tx)
        yield from self.disk_service_at(
            tx, self.disk_for(obj), self.params.obj_io
        )
        yield from self.cpu_service(tx, self.params.obj_cpu)

    def deferred_update(self, tx, obj=None):
        """Write one deferred update to the disk that holds it."""
        yield from self.disk_service_at(
            tx, self.disk_for(obj), self.params.obj_io
        )

    def describe_resources(self):
        labels = super().describe_resources()
        labels["placement"] = (
            PLACEMENT_STRIPED if self._striped else PLACEMENT_CONTIGUOUS
        )
        return labels
