"""repro.resources — the pluggable physical tier.

The resource model is the simulation's physical layer: CPU and disk
service, queueing, utilization accounting, and fault hooks behind one
generator-based service interface (:class:`ResourceModel`). Models
register by name (mirroring :mod:`repro.cc.registry`) and the engine
constructs whichever one ``SimulationParameters.resource_model`` names:

* ``classic`` — the paper's Figure 2 tier: pooled CPUs + uniformly
  partitioned disks (bit-identical to the original hard-coded model);
* ``infinite`` — unbounded servers, no queueing (paper Section 4);
* ``buffered`` — a buffer pool in front of the disks (LRU or fixed hit
  ratio): disk service only on a miss;
* ``skewed_disks`` — explicit object→disk placement, so hot-spot
  workloads contend on hot spindles;
* ``distributed`` — objects sharded across N nodes with per-node CPU
  and disk pools, network legs on cross-node accesses, and optional
  replicated reads (DESIGN.md §18).

See DESIGN.md §13 for the interface contract.
"""

from repro.resources.base import CC_PRIORITY, OBJECT_PRIORITY, ResourceModel
from repro.resources.buffered import BufferedResourceModel
from repro.resources.classic import ClassicResourceModel
from repro.resources.distributed import DistributedResourceModel
from repro.resources.infinite import InfiniteResourceModel
from repro.resources.registry import (
    create_resource_model,
    register_resource_model,
    resource_model_names,
)
from repro.resources.skewed import SkewedDisksResourceModel

#: Historical name for the classic tier, kept importable because the
#: original ``repro.core.physical`` module spelled it this way.
PhysicalModel = ClassicResourceModel

__all__ = [
    "ResourceModel",
    "ClassicResourceModel",
    "InfiniteResourceModel",
    "BufferedResourceModel",
    "SkewedDisksResourceModel",
    "DistributedResourceModel",
    "PhysicalModel",
    "create_resource_model",
    "register_resource_model",
    "resource_model_names",
    "CC_PRIORITY",
    "OBJECT_PRIORITY",
]
