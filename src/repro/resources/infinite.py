"""The ``infinite`` resource model: unbounded servers, no queueing.

The paper's Section 4 starting point: every CPU and I/O service takes
its nominal time with no queueing delay, so the only impediment to
performance is concurrency-control conflict. Previously this was the
in-band ``num_cpus=None``/``num_disks=None`` branch of the classic
model; this model is the explicit spelling — it forces infinite
servers *regardless* of the configured counts, so a Table 2 parameter
set can be swept against the infinite-resources assumption without
editing the resource counts.

Bit-identical to ``classic`` with ``num_cpus=None, num_disks=None``
for fixed seeds: the infinite tier is one server pool, so the disk
stream draws the same (all-zero) index sequence either way.
"""

from repro.resources.base import ResourceModel


class InfiniteResourceModel(ResourceModel):
    """Infinite CPUs and disks: pure concurrency-control limits."""

    name = "infinite"

    def _resource_counts(self):
        return None, None
