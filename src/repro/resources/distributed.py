"""The ``distributed`` resource model: a sharded multi-site tier.

The paper's physical model is a single site: one pooled CPU queue and
one set of disks. This model generalizes it to ``params.nodes`` sites,
each with its own CPU pool and disk set (``num_cpus``/``num_disks``
become *per-node* counts), with the database sharded across the nodes
by the same placement machinery the ``skewed_disks`` model uses for
spindles (``params.disk_placement``):

* ``contiguous`` — object ids map to nodes in db_size/nodes runs
  (``obj * nodes // db_size``), so a hotspot workload's hot region
  lands on the low-numbered nodes — data skew becomes *site* skew;
* ``striped`` — round-robin (``obj % nodes``): perfect sharding, the
  control arm.

Cross-node traffic is an explicit service stage (after the cloud-DB
channel-modeling direction in PAPERS.md): every message between two
distinct nodes waits an exponential ``params.network_delay`` drawn from
the dedicated ``resources.network`` stream and emits
``msg_send``/``msg_recv`` bus events. A remote read costs a request leg
to the serving node, the disk transfer there, and a data leg back; CPU
processing happens at the transaction's home node
(``tx.id % nodes`` — deterministic, no extra draws).

``params.replication_factor`` copies each object onto the ring
successors of its primary node. Reads go to the *nearest* copy by ring
distance from the home node (a local copy means no network legs at
all); commit-time deferred updates write every copy, shipping one
message per remote replica.

``params.buffer_capacity`` (explicitly set) composes a per-node LRU
buffer pool with the sharded tier, reusing the ``buffered`` model's
mechanics: each node caches the objects *it* served, probes emit the
same ``buffer_hit``/``buffer_miss``/``buffer_writeback`` events, and
the accounting rides the same
:class:`~repro.obs.BufferAccountingSubscriber`. Left None (the
default), no cache exists — which is one of the properties that make a
one-node topology with zero network delay *bit-identical* to the
``classic`` model, the anchor the golden-parity suite pins:

* one node means every message is local, so no network legs fire and
  the ``resources.network`` stream is never drawn;
* the within-node disk choice draws from the same
  ``physical.disk_choice`` stream with the same bounds
  (``num_disks - 1``) in the same order as the classic model;
* the per-node CPU pool at node 0 *is* the classic pooled CPU.

Fault support: ``self.disks`` is the flattened node-major disk list, so
``disk_fault_targets`` exposes every spindle of every node to the fault
injector — crashing node *n*'s disks is a disk-fault spec against
indices ``n*num_disks .. (n+1)*num_disks-1`` (labels in
``describe_resources``).
"""

from collections import OrderedDict

from repro.des import BusyTracker, Resource
from repro.des.events import Timeout
from repro.obs.bus import InstrumentationBus
from repro.obs.events import (
    BUFFER_HIT,
    BUFFER_MISS,
    BUFFER_WRITEBACK,
    RESOURCE_BUSY,
    RESOURCE_IDLE,
)
from repro.obs.subscribers import BufferAccountingSubscriber
from repro.resources.base import (
    _DISK_PICK_BATCH,
    OBJECT_PRIORITY,
    ResourceModel,
)

PLACEMENT_STRIPED = "striped"


class DistributedResourceModel(ResourceModel):
    """N sharded sites with per-message network legs and replica reads."""

    name = "distributed"

    def __init__(self, env, params, streams, bus=None):
        if params.num_cpus is None or params.num_disks is None:
            raise ValueError(
                "resource_model='distributed' requires finite per-node "
                "resources (num_cpus and num_disks must not be None: "
                "sharding an infinite server pool is meaningless)"
            )
        super().__init__(env, params, streams, bus=bus)
        if params.buffer_capacity is not None:
            if params.buffer_policy != "lru":
                raise ValueError(
                    "the distributed model's per-node buffer pools are "
                    "exact LRU; buffer_policy='fixed' is not composable "
                    "with sharding (use resource_model='buffered')"
                )
            #: One LRU directory per node, each caching the objects the
            #: node served, with ``buffer_capacity`` pages per node.
            self._node_lru = [OrderedDict() for _ in range(self.nodes)]
            if self.bus is None:
                self.bus = InstrumentationBus(env)
            self.accounting = self.bus.attach(BufferAccountingSubscriber())
        else:
            self._node_lru = None
            self.accounting = None

    # -- construction --------------------------------------------------------

    def _build_resources(self):
        env = self.env
        params = self.params
        self.nodes = params.nodes
        num_cpus, num_disks = self._resource_counts()
        self.disks_per_node = num_disks
        self._cpus_per_node = num_cpus
        self._striped = params.disk_placement == PLACEMENT_STRIPED
        self._replication = params.replication_factor
        #: One CPU pool per node; node 0's pool doubles as ``self.cpu``
        #: so placement-blind callers (and one-node parity) see the
        #: classic single pool.
        self.node_cpus = [
            Resource(env, capacity=num_cpus) for _ in range(self.nodes)
        ]
        self.cpu = self.node_cpus[0]
        #: Flattened node-major disk list: node n's disks occupy
        #: indices [n*disks_per_node, (n+1)*disks_per_node).
        self.disks = [
            Resource(env, capacity=1)
            for _ in range(self.nodes * num_disks)
        ]
        self.cpu_tracker = BusyTracker(
            env, "cpu", self.nodes * num_cpus
        )
        self.disk_tracker = BusyTracker(
            env, "disk", self.nodes * num_disks
        )

    # -- node addressing -----------------------------------------------------

    def node_of(self, obj):
        """The node whose shard holds the primary copy of ``obj``."""
        if obj is None:
            return 0
        if self._striped:
            return obj % self.nodes
        return obj * self.nodes // self.params.db_size

    def home_node(self, tx):
        """The node a transaction originates at (deterministic)."""
        if tx is None:
            return 0
        return tx.id % self.nodes

    def replica_nodes(self, obj):
        """Every node holding a copy of ``obj`` (primary first)."""
        primary = self.node_of(obj)
        nodes = self.nodes
        return [
            (primary + i) % nodes for i in range(self._replication)
        ]

    def read_node(self, obj, home):
        """The replica ``home`` reads ``obj`` from: the nearest copy.

        Ring distance from the home node breaks ties deterministically
        (all distances are distinct mod N); a local copy wins with
        distance 0, making the read free of network legs.
        """
        nodes = self.nodes
        return min(
            self.replica_nodes(obj),
            key=lambda node: (node - home) % nodes,
        )

    def participant_nodes(self, tx):
        """Remote nodes a transaction touched (sorted, home excluded).

        The commit-protocol seam's participant set: the serving node of
        every read plus every replica of every write. Deterministic —
        placement and home are pure functions, no draws.
        """
        home = self.home_node(tx)
        touched = set()
        for obj in tx.read_set:
            touched.add(self.read_node(obj, home))
        for obj in tx.write_set:
            touched.update(self.replica_nodes(obj))
        touched.discard(home)
        return sorted(touched)

    def global_disk_index(self, node, disk_index):
        return node * self.disks_per_node + disk_index

    def cpu_capacity_at(self, node):
        return self._cpus_per_node

    def disk_label(self, index):
        """Human-readable node-qualified label of one global disk."""
        per_node = self.disks_per_node
        return f"n{index // per_node}.d{index % per_node}"

    # -- service primitives --------------------------------------------------

    def _pick_disk(self):
        """A uniformly chosen *local* disk index (batched draws).

        Same stream, same batching as the classic model, but bounded by
        the per-node disk count — identical bounds (and therefore
        identical draws) at one node, where disks_per_node is the whole
        disk list.
        """
        at = self._disk_pick_at
        picks = self._disk_picks
        if at >= len(picks):
            self._disk_picks = picks = self._disk_rng.uniform_int_many(
                0, self.disks_per_node - 1, _DISK_PICK_BATCH
            )
            at = 0
        self._disk_pick_at = at + 1
        return picks[at]

    def cpu_service(self, tx, amount, priority=OBJECT_PRIORITY, node=None):
        """Hold one CPU server of ``node`` (default: tx's home node)."""
        if amount <= 0.0:
            return
        if self.faults is not None:
            amount *= self.faults.cpu_factor
        if node is None:
            node = self.home_node(tx)
        env = self.env
        bus = self.bus
        tracker = self.cpu_tracker
        pool = self.node_cpus[node]
        request = pool.request(priority=priority)
        try:
            yield request
            tracker.acquire()
            if bus is not None and bus.wants_resource:
                bus.emit(RESOURCE_BUSY, resource="cpu", node=node, tx=tx)
            start = env._now
            try:
                yield Timeout(env, amount)
            finally:
                tracker.release()
                tx.attempt_cpu_time += env._now - start
                if bus is not None and bus.wants_resource:
                    bus.emit(
                        RESOURCE_IDLE, resource="cpu", node=node, tx=tx
                    )
        finally:
            pool.release(request)

    # -- buffer mechanics (per-node LRU, optional) ---------------------------

    def _probe(self, node, obj):
        """True if ``node``'s cache holds ``obj`` (False without caches)."""
        lru_pools = self._node_lru
        if lru_pools is None or obj is None:
            return False
        lru = lru_pools[node]
        if obj in lru:
            lru.move_to_end(obj)
            return True
        return False

    def _fill(self, node, obj):
        """Make ``obj`` resident at ``node`` after a completed transfer."""
        lru_pools = self._node_lru
        if lru_pools is None or obj is None:
            return
        lru = lru_pools[node]
        lru[obj] = None
        lru.move_to_end(obj)
        if len(lru) > self.params.buffer_capacity:
            lru.popitem(last=False)

    # -- service composites --------------------------------------------------

    def read_access(self, tx, obj=None):
        """Read one object off its nearest replica, process at home.

        Request leg out, disk (unless a per-node buffer hit) at the
        serving node, data leg back, CPU at the home node. Local reads
        (one node, or a co-resident replica) skip both legs entirely.
        """
        if self.faults is not None:
            self.faults.check_access_fault(tx)
        params = self.params
        home = self.home_node(tx)
        node = home if obj is None else self.read_node(obj, home)
        yield from self.network_leg(tx, home, node)
        if self._node_lru is not None:
            if self._probe(node, obj):
                self.bus.emit(BUFFER_HIT, tx=tx, obj=obj, node=node)
            else:
                self.bus.emit(BUFFER_MISS, tx=tx, obj=obj, node=node)
                if params.obj_io > 0.0:
                    yield from self.disk_service_at(
                        tx, self._pick_disk(), params.obj_io, node=node
                    )
                self._fill(node, obj)
        elif params.obj_io > 0.0:
            yield from self.disk_service_at(
                tx, self._pick_disk(), params.obj_io, node=node
            )
        yield from self.network_leg(tx, node, home)
        yield from self.cpu_service(tx, params.obj_cpu, node=home)

    def deferred_update(self, tx, obj=None):
        """Write one deferred update to every replica at commit time.

        Each remote replica costs one message leg (shipping the write)
        before its disk transfer; acknowledgements are not charged —
        past the commit point the outcome is decided, so the writer
        need not wait on them (the commit *decision* legs are the
        commit protocol's job).
        """
        params = self.params
        home = self.home_node(tx)
        nodes = (
            [home] if obj is None else self.replica_nodes(obj)
        )
        for node in nodes:
            yield from self.network_leg(tx, home, node)
            if self._node_lru is not None:
                self.bus.emit(BUFFER_WRITEBACK, tx=tx, obj=obj, node=node)
            if params.obj_io > 0.0:
                yield from self.disk_service_at(
                    tx, self._pick_disk(), params.obj_io, node=node
                )
            self._fill(node, obj)

    # -- fault, cache and labelling hooks ------------------------------------

    def buffer_summary(self):
        accounting = self.accounting
        if accounting is None:
            return None
        return {
            "policy": "lru",
            "capacity": self.params.buffer_capacity,
            "per_node_capacity": self.params.buffer_capacity,
            "hits": accounting.hits,
            "misses": accounting.misses,
            "hit_ratio": accounting.hit_ratio,
            "writebacks": accounting.writebacks,
        }

    def describe_resources(self):
        params = self.params
        return {
            "model": self.name,
            "nodes": self.nodes,
            "cpus": f"{self.nodes}x{self._cpus_per_node}",
            "disks": f"{self.nodes}x{self.disks_per_node}",
            "placement": params.disk_placement,
            "replication": self._replication,
            "network_delay": params.network_delay,
            "disk_labels": [
                self.disk_label(i) for i in range(len(self.disks))
            ],
        }
